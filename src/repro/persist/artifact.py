"""Versioned model artifacts: save a trained model once, serve it anywhere.

An artifact exists in one of two on-disk layouts:

* ``layout="npz"`` (format v1, the default) — a single ``.npz`` archive
  holding ``__header__`` (a JSON document stored as raw UTF-8 bytes),
  ``state/<key>`` arrays, and optionally ``index/<key>`` arrays of an
  embedded :class:`~repro.serving.retrieval.RetrievalIndex`;
* ``layout="dir"`` (format v2) — a *directory* (conventionally suffixed
  ``.npyd``) containing ``header.json`` plus one raw ``.npy`` file per
  array (``state/<key>.npy``, ``index/<key>.npy``).  Raw ``.npy`` members
  can be opened with ``np.load(..., mmap_mode="r")``, so N serving worker
  processes share one page-cache copy of the weights instead of N private
  heaps — the point of the layout.  :func:`migrate_artifact` converts
  between the two layouts losslessly in either direction.

The header carries the format name and version, the registry model name,
the :class:`~repro.models.registry.ModelSettings` (and, for GBGCN
variants, the :class:`~repro.core.gbgcn.GBGCNConfig`) needed to rebuild
the model, and the dataset-schema fingerprint of the training dataset.
Old readers ignore unknown header fields (they are filtered on read), so
embedding an index never breaks format compatibility — and the ``npz``
layout keeps being written at format v1, so artifacts saved by this
library version still load under pre-v2 readers.

:func:`save_model` writes atomically (unique temp name in the destination
directory + ``os.replace``/``os.rename`` after an fsync), so a crash
mid-write can never clobber the previous artifact.  :func:`load_model`
rebuilds the model from the header via the registry and restores the
exact saved weights; schema mismatches and unknown format versions fail
loudly with a typed :class:`~repro.persist.errors.ArtifactError` instead
of producing garbage recommendations.
"""

from __future__ import annotations

import dataclasses
import json
import os
import re
import shutil
import time
import zipfile
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union, TYPE_CHECKING

import numpy as np

from .errors import (
    ArtifactError,
    ArtifactFormatError,
    ArtifactLayoutError,
    ArtifactVersionError,
    ModelMismatchError,
    SchemaMismatchError,
)
from .fingerprint import dataset_fingerprint, fingerprint_mismatch

if TYPE_CHECKING:
    from ..data.dataset import GroupBuyingDataset
    from ..models.base import RecommenderModel

__all__ = [
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "NPZ_FORMAT_VERSION",
    "DIR_FORMAT_VERSION",
    "LAYOUT_NPZ",
    "LAYOUT_DIR",
    "DIR_HEADER_FILENAME",
    "DIR_SUFFIX",
    "TMP_SWEEP_MAX_AGE_SECONDS",
    "ArtifactHeader",
    "artifact_layout",
    "save_model",
    "migrate_artifact",
    "copy_artifact",
    "read_header",
    "read_state_dict",
    "read_retrieval_state",
    "load_model",
    "load_state_into",
]

#: Identifies the file as one of ours (guards against loading arbitrary npz).
FORMAT_NAME = "repro-model-artifact"
#: The single-file compressed-archive layout (format v1, the default).
LAYOUT_NPZ = "npz"
#: The mmap-able directory-of-``.npy``-files layout (format v2).
LAYOUT_DIR = "dir"
#: Format version written by the ``npz`` layout.  Deliberately left at 1:
#: the archive's byte layout did not change when v2 was introduced, so new
#: ``npz`` artifacts stay readable by pre-v2 library versions.
NPZ_FORMAT_VERSION = 1
#: Format version written by the ``dir`` layout (introduced the layout).
DIR_FORMAT_VERSION = 2
#: Highest format version this library can read.  Bumped whenever the
#: on-disk layout changes incompatibly; readers accept versions
#: ``<= FORMAT_VERSION`` and refuse anything newer with an
#: :class:`ArtifactVersionError`.
FORMAT_VERSION = 2
#: Name of the JSON header file inside a ``dir``-layout artifact.
DIR_HEADER_FILENAME = "header.json"
#: Conventional path suffix for ``dir``-layout artifacts.  Not enforced on
#: save, but directory scans (``scan_artifact_directory`` /
#: ``ModelCatalog``) discover directory artifacts by this suffix.
DIR_SUFFIX = ".npyd"

#: Temp files/directories left next to an artifact are reaped before a
#: save only when their recorded writer PID is no longer alive *and* they
#: are older than this window (seconds).  Configurable for tests and for
#: deployments with unusually long artifact-write times; see
#: :func:`_sweep_stale_tmp` for the exact rules.
TMP_SWEEP_MAX_AGE_SECONDS = 3600.0

_HEADER_KEY = "__header__"
_STATE_PREFIX = "state/"
_INDEX_PREFIX = "index/"


@dataclass
class ArtifactHeader:
    """The JSON header of a model artifact."""

    format_version: int
    model_name: str
    settings: Optional[Dict[str, Any]] = None
    gbgcn_config: Optional[Dict[str, Any]] = None
    schema: Optional[Dict[str, Any]] = None
    state_keys: List[str] = dataclasses.field(default_factory=list)
    library_version: str = ""
    #: Parameters of an embedded retrieval index (``index/`` arrays), or
    #: ``None`` when the artifact carries model state only.
    retrieval: Optional[Dict[str, Any]] = None

    def to_json(self) -> str:
        payload = dataclasses.asdict(self)
        payload["format"] = FORMAT_NAME
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ArtifactHeader":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ArtifactFormatError(
                f"artifact header is not valid JSON (truncated or corrupted write?): {error}"
            ) from error
        if not isinstance(payload, dict):
            raise ArtifactFormatError(
                f"artifact header must be a JSON object, got {type(payload).__name__}"
            )
        if payload.get("format") != FORMAT_NAME:
            raise ArtifactFormatError(
                f"file is not a {FORMAT_NAME!r} artifact (header format field: "
                f"{payload.get('format')!r})"
            )
        version = payload.get("format_version")
        if not isinstance(version, int):
            raise ArtifactFormatError(f"artifact header has no integer format_version: {version!r}")
        if version > FORMAT_VERSION:
            raise ArtifactVersionError(
                f"artifact has format version {version}, but this library reads at most "
                f"{FORMAT_VERSION}; upgrade the library (or re-save the model) to load it"
            )
        if "model_name" not in payload or not isinstance(payload["model_name"], str):
            raise ArtifactFormatError("artifact header is missing its model_name")
        state_keys = payload.get("state_keys", [])
        if not isinstance(state_keys, list) or not all(isinstance(key, str) for key in state_keys):
            raise ArtifactFormatError(
                f"artifact header state_keys must be a list of strings, got {state_keys!r}"
            )
        for field_name in ("settings", "gbgcn_config", "schema", "retrieval"):
            value = payload.get(field_name)
            if value is not None and not isinstance(value, dict):
                raise ArtifactFormatError(
                    f"artifact header {field_name} must be a JSON object or null, got {value!r}"
                )
        known = {field.name for field in dataclasses.fields(cls)}
        return cls(**{key: value for key, value in payload.items() if key in known})


_TMP_OWNER_PATTERN = re.compile(r"\.tmp-(\d+)-\d+$")


def _owner_pid_alive(name: str) -> Optional[bool]:
    """Whether the temp entry's recorded writer PID is a live process.

    Temp names embed their writer as ``.{artifact}.tmp-{pid}-{attempt}``.
    Returns ``None`` when no PID can be parsed from ``name`` (a foreign
    temp entry) or when liveness cannot be determined.
    """
    match = _TMP_OWNER_PATTERN.search(name)
    if match is None:
        return None
    pid = int(match.group(1))
    if pid <= 0:
        return None
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        # The process exists but belongs to another user.
        return True
    except OSError:
        return None
    return True


def _sweep_stale_tmp(path: Path, max_age_seconds: Optional[float] = None) -> None:
    """Best-effort removal of temp orphans left by hard crashes (SIGKILL).

    A temp entry is removed only when **both** hold:

    1. its recorded writer PID — parsed from the ``tmp-{pid}-{attempt}``
       name — is no longer a live process.  An ``st_mtime`` age check
       alone is not safe with multiple writers: wall-clock skew (a
       temp file stamped by one host's clock, judged by another's) or a
       long-paused writer process can make a *live* writer's temp file
       look hours old, and reaping it makes that writer's in-flight save
       fail.  A live owner PID vetoes removal outright — as does a name
       this protocol cannot attribute (no parseable PID).
    2. it is older than ``max_age_seconds`` (module default
       :data:`TMP_SWEEP_MAX_AGE_SECONDS`) — so even when a crashed
       writer's PID has been recycled by an unrelated process (which
       would veto under rule 1), the orphan is merely reaped later, and
       a freshly-crashed writer's debris is not reaped while a human
       might still want to inspect it.

    Both single temp *files* (``npz`` layout) and temp *directories*
    (``dir`` layout) are swept.
    """
    if max_age_seconds is None:
        max_age_seconds = TMP_SWEEP_MAX_AGE_SECONDS
    for orphan in path.parent.glob(f".{path.name}.tmp-*"):
        # Reap only entries whose owner is *confirmed* dead.  A live owner
        # vetoes; so does an unparseable name (not this protocol's entry —
        # never delete what we cannot attribute) or an indeterminate PID.
        if _owner_pid_alive(orphan.name) is not False:
            continue
        try:
            # repro: allow(CLOCK-001) -- age compares against st_mtime, which is wall-clock by definition; a monotonic read has no meaningful difference with an mtime
            if time.time() - orphan.stat().st_mtime <= max_age_seconds:
                continue
            if orphan.is_dir():
                shutil.rmtree(orphan, ignore_errors=True)
            else:
                orphan.unlink()
        except OSError:
            pass


def _atomic_replace_write(path: Path, write) -> None:
    """Write via a unique temp file + ``os.replace``; ``write(handle)`` fills it.

    The temp name is unique per call (O_EXCL), so concurrent writes to the
    same path are last-writer-wins instead of interleaving bytes.  Mode
    0o666 is filtered by the caller's umask, exactly like plain ``open()``.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    _sweep_stale_tmp(path)
    tmp = None
    for attempt in range(1000):
        candidate = path.with_name(f".{path.name}.tmp-{os.getpid()}-{attempt}")
        try:
            descriptor = os.open(candidate, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o666)
            tmp = candidate
            break
        except FileExistsError:
            continue
    if tmp is None:
        raise ArtifactError(f"could not create a unique temp file next to {path}")
    replaced = False
    try:
        with os.fdopen(descriptor, "wb") as handle:
            write(handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        replaced = True
    finally:
        # Clean up only our own failed write: after a successful replace the
        # name may already belong to a concurrent writer's fresh temp file.
        if not replaced:
            try:
                tmp.unlink()
            except FileNotFoundError:
                pass


def _atomic_write_npz(path: Path, arrays: Dict[str, np.ndarray]) -> None:
    _atomic_replace_write(path, lambda handle: np.savez(handle, **arrays))


def _remove_entry(path: Path) -> None:
    """Delete a file or a directory tree, best-effort."""
    try:
        if path.is_dir():
            shutil.rmtree(path, ignore_errors=True)
        else:
            path.unlink()
    except OSError:
        pass


def _atomic_replace_dir(path: Path, build: Callable[[Path], None]) -> None:
    """Build a directory under a unique temp name, then swap it into place.

    ``build(tmp)`` fills the freshly-created temp directory.  Publishing is
    a single ``os.rename`` when ``path`` does not exist yet.  When it does
    (hot-swap republish), POSIX ``rename`` cannot atomically replace a
    non-empty directory, so the old artifact is first renamed aside and
    then deleted — readers resolving member paths in that sub-millisecond
    window see ``FileNotFoundError``, which every reader in this package
    maps to a typed :class:`ArtifactError` and the serving catalog retries.
    Concurrent writers to the same path converge last-writer-wins, the
    same contract as the ``npz`` layout.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    _sweep_stale_tmp(path)
    tmp = None
    for attempt in range(1000):
        candidate = path.with_name(f".{path.name}.tmp-{os.getpid()}-{attempt}")
        try:
            os.mkdir(candidate)  # exclusive creation, like O_EXCL for files
            tmp = candidate
            break
        except FileExistsError:
            continue
    if tmp is None:
        raise ArtifactError(f"could not create a unique temp directory next to {path}")
    published = False
    try:
        build(tmp)
        try:
            os.rename(tmp, path)
            published = True
        except OSError:
            if not path.exists():
                raise
            retired = None
            for attempt in range(1000):
                candidate = path.with_name(f".{path.name}.old-{os.getpid()}-{attempt}")
                if not candidate.exists():
                    retired = candidate
                    break
            if retired is None:
                raise ArtifactError(f"could not retire the previous artifact at {path}")
            os.rename(path, retired)
            try:
                os.rename(tmp, path)
                published = True
            except OSError:
                if not path.exists():
                    os.rename(retired, path)  # roll the old artifact back
                    raise
                # A concurrent writer claimed the name between our retire
                # and publish; their artifact is complete — surface the
                # lost race instead of silently dropping this save.
                _remove_entry(retired)
                raise ArtifactError(
                    f"a concurrent writer republished {path} mid-swap; this save was dropped"
                )
            _remove_entry(retired)
    finally:
        if not published:
            _remove_entry(tmp)


def _crc32_of_file(path: Path) -> int:
    crc = 0
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(1 << 20)
            if not chunk:
                break
            crc = zlib.crc32(chunk, crc)
    return crc & 0xFFFFFFFF


def _write_dir_artifact(path: Path, header: ArtifactHeader, arrays: Dict[str, np.ndarray]) -> None:
    """Write a ``dir``-layout artifact: raw ``.npy`` members + ``header.json``.

    ``arrays`` maps member keys (already carrying their ``state/`` /
    ``index/`` group prefix) to arrays.  The header file additionally
    records a ``members`` manifest — ``{relpath: {"crc32", "size"}}`` over
    every array file — which plays the role the npz central directory
    plays for content tokens (see :func:`repro.persist.index.artifact_content_token`).
    The header file is written last and rewritten on every save, so its
    ``(st_size, st_mtime_ns)`` stat identity changes on every publish.
    """

    def build(tmp: Path) -> None:
        members: Dict[str, Dict[str, int]] = {}
        for key in sorted(arrays):
            member = f"{key}.npy"
            target = tmp / member
            target.parent.mkdir(parents=True, exist_ok=True)
            with open(target, "wb") as handle:
                np.save(handle, arrays[key], allow_pickle=False)
                handle.flush()
                os.fsync(handle.fileno())
            members[member] = {
                "crc32": _crc32_of_file(target),
                "size": target.stat().st_size,
            }
        payload = json.loads(header.to_json())
        payload["layout"] = LAYOUT_DIR
        payload["members"] = members
        text = json.dumps(payload, sort_keys=True)
        header_path = tmp / DIR_HEADER_FILENAME
        with open(header_path, "wb") as handle:
            handle.write(text.encode("utf-8"))
            handle.flush()
            os.fsync(handle.fileno())

    _atomic_replace_dir(path, build)


def artifact_layout(path: Union[str, Path]) -> str:
    """The on-disk layout of the artifact at ``path``: ``"npz"`` or ``"dir"``.

    Dispatches on the filesystem entry type (directory → ``dir`` layout),
    not the name suffix, so unconventionally-named artifacts still
    resolve.  Raises :class:`ArtifactFormatError` when nothing exists at
    ``path``.
    """
    path = Path(path)
    if path.is_dir():
        return LAYOUT_DIR
    if path.exists():
        return LAYOUT_NPZ
    raise ArtifactFormatError(f"artifact does not exist: {path}")


def _resolve_identity(
    model: "RecommenderModel",
    dataset: Optional["GroupBuyingDataset"],
    settings,
    model_name: Optional[str],
) -> Tuple[str, Optional[Dict[str, Any]], Optional[Dict[str, Any]], Optional[Dict[str, Any]]]:
    """Work out (name, settings dict, gbgcn config dict, schema fingerprint)."""
    name = model_name or getattr(model, "_registry_name", None) or model.name
    settings = settings if settings is not None else getattr(model, "_registry_settings", None)
    settings_dict = settings.to_dict() if settings is not None else None
    config = getattr(model, "config", None)
    config_dict = dataclasses.asdict(config) if dataclasses.is_dataclass(config) else None
    if dataset is None:
        dataset = getattr(model, "_artifact_dataset", None)
    schema = dataset_fingerprint(dataset) if dataset is not None else None
    return name, settings_dict, config_dict, schema


def _layout_version(layout: str) -> int:
    if layout == LAYOUT_NPZ:
        return NPZ_FORMAT_VERSION
    if layout == LAYOUT_DIR:
        return DIR_FORMAT_VERSION
    raise ArtifactLayoutError(
        f"unknown artifact layout {layout!r}; supported layouts are "
        f"{LAYOUT_NPZ!r} (single-file archive) and {LAYOUT_DIR!r} (mmap-able directory)"
    )


def _write_artifact(
    path: Path,
    header: ArtifactHeader,
    state: Dict[str, np.ndarray],
    index_arrays: Dict[str, np.ndarray],
    layout: str,
) -> None:
    """Write header + grouped arrays at ``path`` in the requested layout.

    ``index_arrays`` keys already carry the ``index/`` prefix; ``state``
    keys are bare and get the ``state/`` prefix here.
    """
    grouped: Dict[str, np.ndarray] = {}
    for key, value in state.items():
        grouped[_STATE_PREFIX + key] = np.ascontiguousarray(value)
    for key, value in index_arrays.items():
        grouped[key] = np.ascontiguousarray(value)
    if layout == LAYOUT_DIR:
        _write_dir_artifact(path, header, grouped)
    else:
        arrays: Dict[str, np.ndarray] = {
            _HEADER_KEY: np.frombuffer(header.to_json().encode("utf-8"), dtype=np.uint8)
        }
        arrays.update(grouped)
        _atomic_write_npz(path, arrays)


def save_model(
    model: "RecommenderModel",
    path: Union[str, Path],
    *,
    dataset: Optional["GroupBuyingDataset"] = None,
    settings=None,
    model_name: Optional[str] = None,
    retrieval_index=None,
    layout: str = LAYOUT_NPZ,
) -> ArtifactHeader:
    """Persist ``model`` as a versioned artifact at ``path``.

    Registry-built models (:func:`repro.models.registry.build_model`)
    already carry their registry name, settings and dataset fingerprint, so
    ``save_model(model, path)`` needs nothing else.  Models constructed by
    hand can pass ``dataset`` (for the schema fingerprint) and
    ``settings``/``model_name`` explicitly; GBGCN variants additionally
    record their :class:`~repro.core.gbgcn.GBGCNConfig` so they round-trip
    even without registry settings.  Returns the written header.

    ``retrieval_index`` embeds a prebuilt
    :class:`~repro.serving.retrieval.RetrievalIndex` (its arrays under
    ``index/``, its parameters in the header's ``retrieval`` field) so a
    serving catalog can cold-start ANN retrieval without re-clustering —
    recover it with :func:`read_retrieval_state`.

    ``layout`` selects the on-disk representation: ``"npz"`` (default) is
    the single-file v1 archive; ``"dir"`` writes the mmap-able v2
    directory of raw ``.npy`` files (conventionally suffixed ``.npyd`` so
    catalog scans discover it) that :func:`load_model` opens with
    ``np.load(mmap_mode="r")`` — the layout to publish when many worker
    processes serve the same weights.

    Usage — save a registry model, inspect the header, load it back:

    >>> import tempfile
    >>> from pathlib import Path
    >>> from repro.data import BeibeiLikeConfig, generate_dataset, leave_one_out_split
    >>> from repro.models import build_model
    >>> from repro.persist import load_model, save_model
    >>> split = leave_one_out_split(generate_dataset(
    ...     BeibeiLikeConfig(num_users=40, num_items=20, num_behaviors=160, seed=0)))
    >>> path = Path(tempfile.mkdtemp()) / "mf.npz"
    >>> header = save_model(build_model("MF", split.train), path)
    >>> (header.model_name, header.format_version)
    ('MF', 1)
    >>> load_model(path, split.train).name      # exact weights, fresh process
    'MF'

    The same model in the mmap-able directory layout:

    >>> dir_path = path.with_suffix(".npyd")
    >>> save_model(build_model("MF", split.train), dir_path, layout="dir").format_version
    2
    >>> sorted(p.name for p in dir_path.iterdir())[:1]
    ['header.json']
    """
    path = Path(path)
    version = _layout_version(layout)  # validates the layout up front
    name, settings_dict, config_dict, schema = _resolve_identity(model, dataset, settings, model_name)
    # Zero-copy views: the arrays are only read while the writer streams
    # them out, so snapshotting the whole model first would double memory.
    state = model.state_arrays()
    retrieval_params: Optional[Dict[str, Any]] = None
    index_arrays: Dict[str, np.ndarray] = {}
    if retrieval_index is not None:
        if int(retrieval_index.num_items) != int(model.num_items):
            raise ArtifactError(
                f"retrieval index covers {retrieval_index.num_items} items but the model "
                f"serves {model.num_items}; build the index from this model's item factors"
            )
        retrieval_params = dict(retrieval_index.params())
        index_arrays = {
            _INDEX_PREFIX + key: np.ascontiguousarray(value)
            for key, value in retrieval_index.state_arrays().items()
        }
    header = ArtifactHeader(
        format_version=version,
        model_name=name,
        settings=settings_dict,
        gbgcn_config=config_dict,
        schema=schema,
        state_keys=sorted(state),
        library_version=_library_version(),
        retrieval=retrieval_params,
    )
    _write_artifact(path, header, state, index_arrays, layout)
    return header


def migrate_artifact(
    path: Union[str, Path],
    to_layout: str,
    destination: Optional[Union[str, Path]] = None,
) -> Path:
    """Convert an artifact between the v1 ``npz`` and v2 ``dir`` layouts.

    The cross-version migration shim: every header field (model identity,
    settings, schema fingerprint, retrieval parameters) and every array —
    model state *and* embedded retrieval index — carries over exactly;
    only ``format_version`` changes to the target layout's version.  The
    source artifact is left untouched.  ``destination`` defaults to the
    source path with the conventional suffix swapped
    (``model.npz`` ↔ ``model.npyd``); migrating to the layout the artifact
    already has simply rewrites it at the destination.  Returns the
    destination path.

    >>> import tempfile
    >>> from pathlib import Path
    >>> import numpy as np
    >>> from repro.data import BeibeiLikeConfig, generate_dataset, leave_one_out_split
    >>> from repro.models import build_model
    >>> from repro.persist import migrate_artifact, read_state_dict, save_model
    >>> split = leave_one_out_split(generate_dataset(
    ...     BeibeiLikeConfig(num_users=40, num_items=20, num_behaviors=160, seed=0)))
    >>> path = Path(tempfile.mkdtemp()) / "mf.npz"
    >>> _ = save_model(build_model("MF", split.train), path)
    >>> migrated = migrate_artifact(path, to_layout="dir")
    >>> migrated.name
    'mf.npyd'
    >>> old, new = read_state_dict(path)[1], read_state_dict(migrated)[1]
    >>> all(np.array_equal(old[k], new[k]) for k in old)
    True
    """
    path = Path(path)
    version = _layout_version(to_layout)
    header, state = read_state_dict(path)
    retrieval = read_retrieval_state(path)
    index_arrays: Dict[str, np.ndarray] = {}
    retrieval_params: Optional[Dict[str, Any]] = None
    if retrieval is not None:
        retrieval_params, raw = retrieval
        index_arrays = {_INDEX_PREFIX + key: value for key, value in raw.items()}
    if destination is None:
        suffix = DIR_SUFFIX if to_layout == LAYOUT_DIR else ".npz"
        destination = path.with_suffix(suffix)
    destination = Path(destination)
    if destination.exists() and destination.resolve() == path.resolve():
        raise ArtifactLayoutError(
            f"cannot migrate {path} onto itself; pass a different destination"
        )
    migrated = dataclasses.replace(
        header,
        format_version=version,
        library_version=_library_version(),
    )
    _write_artifact(destination, migrated, state, index_arrays, to_layout)
    return destination


def copy_artifact(source: Union[str, Path], destination: Union[str, Path]) -> None:
    """Replicate an existing artifact byte for byte, atomically.

    The cheap way to *publish* an artifact that is already on disk (e.g. a
    checkpoint into a catalog directory): no model snapshot, no
    re-compression — just a copy with the same temp-name + rename
    guarantee as :func:`save_model`, so a reader (a serving
    :class:`~repro.serving.catalog.ModelCatalog` hot-swap check) never sees
    a half-written artifact.  Works for both layouts — a ``dir``-layout
    source is copied member by member into a temp directory and swapped
    into place.  Copying a path onto itself is a no-op.
    """
    source, destination = Path(source), Path(destination)
    if not source.exists():
        raise ArtifactFormatError(f"artifact to copy does not exist: {source}")
    if source.resolve() == destination.resolve():
        return

    if source.is_dir():
        _atomic_replace_dir(destination, lambda tmp: shutil.copytree(source, tmp, dirs_exist_ok=True))
        return

    def write(handle):
        with open(source, "rb") as reader:
            shutil.copyfileobj(reader, handle)

    _atomic_replace_write(destination, write)


def _library_version() -> str:
    from .. import __version__

    return __version__


def _open_archive(path: Path):
    if not path.exists():
        raise ArtifactFormatError(f"artifact file does not exist: {path}")
    try:
        archive = np.load(path, allow_pickle=False)
    except (zipfile.BadZipFile, OSError, ValueError) as error:
        raise ArtifactFormatError(f"{path} is not a readable npz artifact: {error}") from error
    if not hasattr(archive, "files"):
        # np.load returns a bare ndarray for .npy content.
        raise ArtifactFormatError(f"{path} is a single-array .npy file, not an npz artifact")
    return archive


def _read_dir_payload(path: Path) -> Dict[str, Any]:
    """The raw JSON payload of a ``dir``-layout artifact's header file."""
    header_path = path / DIR_HEADER_FILENAME
    try:
        text = header_path.read_text("utf-8")
    except FileNotFoundError as error:
        raise ArtifactFormatError(
            f"{path} is a directory without a {DIR_HEADER_FILENAME}; it is not a "
            f"dir-layout artifact (or its writer crashed before publishing)"
        ) from error
    except (OSError, UnicodeDecodeError) as error:
        # UnicodeDecodeError: corrupted header bytes (e.g. bit rot) must
        # surface as a typed artifact fault, not a raw codec error.
        raise ArtifactFormatError(f"artifact header of {path} is unreadable: {error}") from error
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise ArtifactFormatError(
            f"artifact header {header_path} is not valid JSON (truncated or corrupted "
            f"write?): {error}"
        ) from error
    if not isinstance(payload, dict):
        raise ArtifactFormatError(
            f"artifact header {header_path} must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def _read_dir_header(path: Path) -> ArtifactHeader:
    header_path = path / DIR_HEADER_FILENAME
    try:
        text = header_path.read_text("utf-8")
    except FileNotFoundError as error:
        raise ArtifactFormatError(
            f"{path} is a directory without a {DIR_HEADER_FILENAME}; it is not a "
            f"dir-layout artifact (or its writer crashed before publishing)"
        ) from error
    except (OSError, UnicodeDecodeError) as error:
        # UnicodeDecodeError: corrupted header bytes (e.g. bit rot) must
        # surface as a typed artifact fault, not a raw codec error.
        raise ArtifactFormatError(f"artifact header of {path} is unreadable: {error}") from error
    return ArtifactHeader.from_json(text)


def _dir_arrays(path: Path, group: str, mmap_mode: Optional[str]) -> Dict[str, np.ndarray]:
    """All arrays of a member group (``"state"`` / ``"index"``) of a dir artifact.

    Keys containing ``/`` (e.g. extra-state keys) map to nested
    subdirectories on disk, so the walk is recursive.
    """
    root = path / group
    arrays: Dict[str, np.ndarray] = {}
    if not root.is_dir():
        return arrays
    for member in sorted(root.rglob("*.npy")):
        if not member.is_file():
            continue
        key = member.relative_to(root).as_posix()[: -len(".npy")]
        try:
            arrays[key] = np.load(member, mmap_mode=mmap_mode, allow_pickle=False)
        except (OSError, ValueError) as error:
            raise ArtifactFormatError(
                f"artifact {path} has an unreadable {group} array {member.name}: {error}"
            ) from error
    return arrays


def _dir_state(path: Path, header: ArtifactHeader, mmap_mode: Optional[str]) -> Dict[str, np.ndarray]:
    state = _dir_arrays(path, "state", mmap_mode)
    missing = set(header.state_keys) - set(state)
    if missing:
        raise ArtifactFormatError(
            f"artifact {path} is missing state arrays recorded in its header: {sorted(missing)}"
        )
    return state


def read_header(path: Union[str, Path]) -> ArtifactHeader:
    """Read and validate only the JSON header of an artifact (either layout)."""
    path = Path(path)
    if path.is_dir():
        return _read_dir_header(path)
    with _open_archive(path) as archive:
        return _header_from_archive(archive, path)


def _header_from_archive(archive, path: Path) -> ArtifactHeader:
    if _HEADER_KEY not in archive.files:
        raise ArtifactFormatError(
            f"{path} is an npz archive but carries no {_HEADER_KEY!r} entry; "
            f"it was not written by repro.persist.save_model"
        )
    try:
        raw = archive[_HEADER_KEY]
        header_bytes = bytes(np.asarray(raw, dtype=np.uint8))
    except (zipfile.BadZipFile, OSError, ValueError, TypeError) as error:
        raise ArtifactFormatError(f"artifact header of {path} is unreadable: {error}") from error
    return ArtifactHeader.from_json(header_bytes.decode("utf-8", errors="replace"))


def _state_from_archive(archive, header: ArtifactHeader, path: Path) -> Dict[str, np.ndarray]:
    state: Dict[str, np.ndarray] = {}
    try:
        for key in archive.files:
            if key.startswith(_STATE_PREFIX):
                state[key[len(_STATE_PREFIX):]] = archive[key]
    except (zipfile.BadZipFile, OSError, ValueError) as error:
        raise ArtifactFormatError(f"artifact {path} has unreadable state arrays: {error}") from error
    missing = set(header.state_keys) - set(state)
    if missing:
        raise ArtifactFormatError(
            f"artifact {path} is missing state arrays recorded in its header: {sorted(missing)}"
        )
    return state


def read_state_dict(path: Union[str, Path]) -> Tuple[ArtifactHeader, Dict[str, np.ndarray]]:
    """Read the header and the full parameter state of an artifact (either layout)."""
    path = Path(path)
    if path.is_dir():
        header = _read_dir_header(path)
        return header, _dir_state(path, header, mmap_mode=None)
    with _open_archive(path) as archive:
        header = _header_from_archive(archive, path)
        state = _state_from_archive(archive, header, path)
    return header, state


def read_retrieval_state(
    path: Union[str, Path],
) -> Optional[Tuple[Dict[str, Any], Dict[str, np.ndarray]]]:
    """The embedded retrieval index of an artifact, or ``None``.

    Returns ``(params, arrays)`` — the header's ``retrieval`` parameter
    dict and the raw ``index/`` arrays — ready for
    ``RetrievalIndex.from_state``.  ``None`` when the artifact was saved
    without ``retrieval_index=`` (the common case); an artifact whose
    header declares an index but whose ``index/`` arrays are missing is
    corrupt and raises :class:`ArtifactFormatError`.
    """
    path = Path(path)
    if path.is_dir():
        header = _read_dir_header(path)
        if header.retrieval is None:
            return None
        arrays = _dir_arrays(path, "index", mmap_mode=None)
    else:
        with _open_archive(path) as archive:
            header = _header_from_archive(archive, path)
            if header.retrieval is None:
                return None
            arrays = {}
            try:
                for key in archive.files:
                    if key.startswith(_INDEX_PREFIX):
                        arrays[key[len(_INDEX_PREFIX):]] = archive[key]
            except (zipfile.BadZipFile, OSError, ValueError) as error:
                raise ArtifactFormatError(
                    f"artifact {path} has unreadable retrieval-index arrays: {error}"
                ) from error
    if not arrays:
        raise ArtifactFormatError(
            f"artifact {path} declares a retrieval index in its header but carries no "
            f"{_INDEX_PREFIX!r} arrays (truncated or hand-edited write?)"
        )
    return dict(header.retrieval), arrays


def _check_schema(header: ArtifactHeader, dataset: "GroupBuyingDataset", path: Path) -> None:
    if header.schema is None:
        raise SchemaMismatchError(
            f"artifact {path} records no dataset-schema fingerprint, so it cannot be verified "
            f"against this dataset; re-save it with save_model(..., dataset=...), or — if you "
            f"trust its provenance — restore the weights into a pre-built model with "
            f"repro.persist.load_state_into(..., verify_schema=False)"
        )
    actual = dataset_fingerprint(dataset)
    differences = fingerprint_mismatch(header.schema, actual)
    if differences:
        raise SchemaMismatchError(
            f"artifact {path} was trained on a different dataset than the one supplied "
            f"({'; '.join(differences)}); load it with the original training dataset "
            f"(user/item ids are only meaningful relative to it)"
        )


def _rebuild_model(header: ArtifactHeader, dataset: "GroupBuyingDataset", path: Path) -> "RecommenderModel":
    from ..models.registry import SERVABLE_MODEL_NAMES, ModelSettings, build_model

    if header.model_name not in SERVABLE_MODEL_NAMES:
        # Diagnose the unknown name up front (rather than as a generic
        # build failure) so a catalog scan over a mixed directory says
        # exactly which file holds which unloadable model.
        raise ArtifactFormatError(
            f"artifact {path} records unknown model {header.model_name!r}; this library can "
            f"rebuild {SERVABLE_MODEL_NAMES}.  If the artifact came from a newer library "
            f"version, upgrade; otherwise build the model yourself and restore weights with "
            f"repro.persist.load_state_into"
        )

    settings = None
    if header.settings is not None:
        try:
            settings = ModelSettings.from_dict(header.settings)
        except (TypeError, ValueError) as error:
            raise ArtifactFormatError(f"artifact {path} has invalid settings: {error}") from error

    if header.gbgcn_config is not None and header.model_name.startswith("GBGCN"):
        # The recorded config is the source of truth for GBGCN variants: it
        # was captured from ``model.config`` at save time, whereas a config
        # re-derived from settings can disagree for hand-built models (e.g.
        # a custom alpha that no ModelSettings field produces).
        from ..core.gbgcn import GBGCN, GBGCNConfig
        from ..core.pretrain import GBGCNPretrainModel
        from ..graph.hetero import build_hetero_graph

        try:
            config = GBGCNConfig(**header.gbgcn_config)
        except (TypeError, ValueError) as error:
            raise ArtifactFormatError(f"artifact {path} has an invalid GBGCN config: {error}") from error
        model_class = GBGCNPretrainModel if header.model_name == "GBGCN-pretrain" else GBGCN
        model = model_class(dataset.num_users, dataset.num_items, build_hetero_graph(dataset), config=config)
        # Rebind identity so re-saving the loaded model stays self-describing
        # (schema fingerprint included).
        model.bind_artifact_metadata(header.model_name, settings, dataset)
        return model

    if settings is not None:
        try:
            return build_model(header.model_name, dataset, settings)
        except (TypeError, ValueError) as error:
            raise ArtifactFormatError(
                f"artifact {path} cannot be rebuilt as registry model "
                f"{header.model_name!r}: {error}"
            ) from error
    raise ArtifactFormatError(
        f"artifact {path} (model {header.model_name!r}) records neither registry settings nor a "
        f"GBGCN config, so the model cannot be rebuilt; valid registry names are "
        f"{SERVABLE_MODEL_NAMES}. "
        f"Build the model yourself and restore weights with repro.persist.load_state_into"
    )


def load_model(
    path: Union[str, Path],
    train_dataset: "GroupBuyingDataset",
    *,
    mmap: Optional[bool] = None,
) -> "RecommenderModel":
    """Reconstruct the model stored at ``path`` on top of ``train_dataset``.

    The dataset must be the training dataset the artifact was saved against
    (its schema fingerprint is verified); the rebuilt model has exactly the
    saved weights and an invalidated evaluation cache, ready for
    ``prepare_for_evaluation`` / serving.

    ``mmap`` controls how ``dir``-layout artifacts materialize their
    weights: ``None`` (default) memory-maps them read-only — the model's
    parameters alias the on-disk ``.npy`` files, so concurrent worker
    processes loading the same artifact share one page-cache copy.  A
    memory-mapped model is for *serving*: training an mmap-loaded model
    raises (its parameter buffers are read-only) — pass ``mmap=False`` to
    load private writable copies for fine-tuning.  The single-file
    ``npz`` layout cannot be memory-mapped (its members are compressed
    into one archive); requesting ``mmap=True`` on it raises and points at
    :func:`migrate_artifact`.
    """
    path = Path(path)
    if path.is_dir():
        use_mmap = mmap is None or bool(mmap)
        header = _read_dir_header(path)
        _check_schema(header, train_dataset, path)
        state = _dir_state(path, header, mmap_mode="r" if use_mmap else None)
        # Zero-copy bind: mmap arrays must stay shared pages, and a plain
        # (non-mmap) dir load already owns its freshly-read arrays.
        copy = False
    else:
        if mmap:
            raise ArtifactLayoutError(
                f"artifact {path} uses the single-file npz layout, whose members are "
                f"compressed and cannot be memory-mapped; convert it first with "
                f"repro.persist.migrate_artifact({str(path)!r}, to_layout='dir')"
            )
        with _open_archive(path) as archive:
            # Validate against the header before decompressing any state
            # arrays, so a rejected load costs O(header), not O(archive).
            header = _header_from_archive(archive, path)
            _check_schema(header, train_dataset, path)
            state = _state_from_archive(archive, header, path)
        copy = True
    model = _rebuild_model(header, train_dataset, path)
    try:
        model.load_state_dict(state, copy=copy)
    except (KeyError, ValueError) as error:
        raise ArtifactFormatError(
            f"artifact {path} state does not fit the rebuilt {header.model_name!r} model: {error}"
        ) from error
    # load_state_dict invalidates the model's evaluation cache itself.
    model.eval()
    return model


def load_state_into(
    model: "RecommenderModel",
    path: Union[str, Path],
    dataset: Optional["GroupBuyingDataset"] = None,
    verify_schema: bool = True,
) -> ArtifactHeader:
    """Restore an artifact's weights into an already-built ``model``.

    The escape hatch for models the header cannot rebuild (hand-constructed
    models saved without registry settings): the caller provides the model,
    the artifact provides the weights.  Schema verification runs whenever a
    dataset is known — passed explicitly, or carried by a registry-built
    model — and raises :class:`SchemaMismatchError` when the recorded
    fingerprint differs *or* when the artifact recorded none (a check that
    cannot run must not pass silently).  ``verify_schema=False`` is the
    deliberate opt-out for artifacts saved without a fingerprint whose
    provenance the caller trusts anyway.
    """
    path = Path(path)
    if verify_schema:
        if dataset is None:
            # Mirror save_model's identity resolution: registry-built models
            # carry their training dataset, so verification is on by default.
            dataset = getattr(model, "_artifact_dataset", None)
    else:
        dataset = None

    def check_identity(header: ArtifactHeader) -> None:
        target_name = getattr(model, "_registry_name", None) or model.name
        if header.model_name != target_name:
            # Different models can share parameter keys and shapes (MF vs
            # SocialMF), so key/shape validation alone cannot catch this.
            raise ModelMismatchError(
                f"artifact {path} holds a {header.model_name!r} model, but the supplied model is "
                f"{target_name!r}; pass the matching model (or rebuild via load_model)"
            )
        if dataset is not None:
            _check_schema(header, dataset, path)

    if path.is_dir():
        header = _read_dir_header(path)
        check_identity(header)
        state = _dir_state(path, header, mmap_mode=None)
    else:
        with _open_archive(path) as archive:
            header = _header_from_archive(archive, path)
            check_identity(header)
            state = _state_from_archive(archive, header, path)
    try:
        model.load_state_dict(state)
    except (KeyError, ValueError) as error:
        raise ArtifactFormatError(
            f"artifact {path} state does not fit the supplied {model.name!r} model: {error}"
        ) from error
    return header
