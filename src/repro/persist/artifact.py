"""Versioned model artifacts: save a trained model once, serve it anywhere.

An artifact is a single ``.npz`` archive holding

* ``__header__`` — a JSON document (stored as raw UTF-8 bytes) carrying the
  format name and version, the registry model name, the
  :class:`~repro.models.registry.ModelSettings` (and, for GBGCN variants,
  the :class:`~repro.core.gbgcn.GBGCNConfig`) needed to rebuild the model,
  and the dataset-schema fingerprint of the training dataset;
* ``state/<key>`` — every array of the model's ``state_dict`` (trainable
  parameters plus non-parameter state such as ItemKNN similarity matrices);
* ``index/<key>`` — optionally, the arrays of a prebuilt
  :class:`~repro.serving.retrieval.RetrievalIndex` over the model's item
  factors, with its parameters declared in the header's ``retrieval``
  field.  Old readers ignore both (unknown header fields are filtered,
  only ``state/`` arrays are collected), so embedding an index never
  breaks format compatibility.

:func:`save_model` writes atomically (temp file in the destination
directory + ``os.replace`` after an fsync), so a crash mid-write can never
clobber the previous artifact.  :func:`load_model` rebuilds the model from
the header via the registry and restores the exact saved weights; schema
mismatches and unknown format versions fail loudly with a typed
:class:`~repro.persist.errors.ArtifactError` instead of producing garbage
recommendations.
"""

from __future__ import annotations

import dataclasses
import json
import os
import shutil
import time
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union, TYPE_CHECKING

import numpy as np

from .errors import (
    ArtifactError,
    ArtifactFormatError,
    ArtifactVersionError,
    ModelMismatchError,
    SchemaMismatchError,
)
from .fingerprint import dataset_fingerprint, fingerprint_mismatch

if TYPE_CHECKING:
    from ..data.dataset import GroupBuyingDataset
    from ..models.base import RecommenderModel

__all__ = [
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "ArtifactHeader",
    "save_model",
    "copy_artifact",
    "read_header",
    "read_state_dict",
    "read_retrieval_state",
    "load_model",
    "load_state_into",
]

#: Identifies the file as one of ours (guards against loading arbitrary npz).
FORMAT_NAME = "repro-model-artifact"
#: Bumped whenever the on-disk layout changes incompatibly.  Readers accept
#: versions ``<= FORMAT_VERSION`` (there is only one so far) and refuse
#: anything newer with an :class:`ArtifactVersionError`.
FORMAT_VERSION = 1

_HEADER_KEY = "__header__"
_STATE_PREFIX = "state/"
_INDEX_PREFIX = "index/"


@dataclass
class ArtifactHeader:
    """The JSON header of a model artifact."""

    format_version: int
    model_name: str
    settings: Optional[Dict[str, Any]] = None
    gbgcn_config: Optional[Dict[str, Any]] = None
    schema: Optional[Dict[str, Any]] = None
    state_keys: List[str] = dataclasses.field(default_factory=list)
    library_version: str = ""
    #: Parameters of an embedded retrieval index (``index/`` arrays), or
    #: ``None`` when the artifact carries model state only.
    retrieval: Optional[Dict[str, Any]] = None

    def to_json(self) -> str:
        payload = dataclasses.asdict(self)
        payload["format"] = FORMAT_NAME
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ArtifactHeader":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ArtifactFormatError(
                f"artifact header is not valid JSON (truncated or corrupted write?): {error}"
            ) from error
        if not isinstance(payload, dict):
            raise ArtifactFormatError(
                f"artifact header must be a JSON object, got {type(payload).__name__}"
            )
        if payload.get("format") != FORMAT_NAME:
            raise ArtifactFormatError(
                f"file is not a {FORMAT_NAME!r} artifact (header format field: "
                f"{payload.get('format')!r})"
            )
        version = payload.get("format_version")
        if not isinstance(version, int):
            raise ArtifactFormatError(f"artifact header has no integer format_version: {version!r}")
        if version > FORMAT_VERSION:
            raise ArtifactVersionError(
                f"artifact has format version {version}, but this library reads at most "
                f"{FORMAT_VERSION}; upgrade the library (or re-save the model) to load it"
            )
        if "model_name" not in payload or not isinstance(payload["model_name"], str):
            raise ArtifactFormatError("artifact header is missing its model_name")
        state_keys = payload.get("state_keys", [])
        if not isinstance(state_keys, list) or not all(isinstance(key, str) for key in state_keys):
            raise ArtifactFormatError(
                f"artifact header state_keys must be a list of strings, got {state_keys!r}"
            )
        for field_name in ("settings", "gbgcn_config", "schema", "retrieval"):
            value = payload.get(field_name)
            if value is not None and not isinstance(value, dict):
                raise ArtifactFormatError(
                    f"artifact header {field_name} must be a JSON object or null, got {value!r}"
                )
        known = {field.name for field in dataclasses.fields(cls)}
        return cls(**{key: value for key, value in payload.items() if key in known})


def _sweep_stale_tmp(path: Path, max_age_seconds: float = 3600.0) -> None:
    """Best-effort removal of temp orphans left by hard crashes (SIGKILL).

    Only files old enough that no live writer can still own them are
    removed, so concurrent savers never delete each other's work.
    """
    for orphan in path.parent.glob(f".{path.name}.tmp-*"):
        try:
            if time.time() - orphan.stat().st_mtime > max_age_seconds:
                orphan.unlink()
        except OSError:
            pass


def _atomic_replace_write(path: Path, write) -> None:
    """Write via a unique temp file + ``os.replace``; ``write(handle)`` fills it.

    The temp name is unique per call (O_EXCL), so concurrent writes to the
    same path are last-writer-wins instead of interleaving bytes.  Mode
    0o666 is filtered by the caller's umask, exactly like plain ``open()``.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    _sweep_stale_tmp(path)
    tmp = None
    for attempt in range(1000):
        candidate = path.with_name(f".{path.name}.tmp-{os.getpid()}-{attempt}")
        try:
            descriptor = os.open(candidate, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o666)
            tmp = candidate
            break
        except FileExistsError:
            continue
    if tmp is None:
        raise ArtifactError(f"could not create a unique temp file next to {path}")
    replaced = False
    try:
        with os.fdopen(descriptor, "wb") as handle:
            write(handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        replaced = True
    finally:
        # Clean up only our own failed write: after a successful replace the
        # name may already belong to a concurrent writer's fresh temp file.
        if not replaced:
            try:
                tmp.unlink()
            except FileNotFoundError:
                pass


def _atomic_write_npz(path: Path, arrays: Dict[str, np.ndarray]) -> None:
    _atomic_replace_write(path, lambda handle: np.savez(handle, **arrays))


def _resolve_identity(
    model: "RecommenderModel",
    dataset: Optional["GroupBuyingDataset"],
    settings,
    model_name: Optional[str],
) -> Tuple[str, Optional[Dict[str, Any]], Optional[Dict[str, Any]], Optional[Dict[str, Any]]]:
    """Work out (name, settings dict, gbgcn config dict, schema fingerprint)."""
    name = model_name or getattr(model, "_registry_name", None) or model.name
    settings = settings if settings is not None else getattr(model, "_registry_settings", None)
    settings_dict = settings.to_dict() if settings is not None else None
    config = getattr(model, "config", None)
    config_dict = dataclasses.asdict(config) if dataclasses.is_dataclass(config) else None
    if dataset is None:
        dataset = getattr(model, "_artifact_dataset", None)
    schema = dataset_fingerprint(dataset) if dataset is not None else None
    return name, settings_dict, config_dict, schema


def save_model(
    model: "RecommenderModel",
    path: Union[str, Path],
    *,
    dataset: Optional["GroupBuyingDataset"] = None,
    settings=None,
    model_name: Optional[str] = None,
    retrieval_index=None,
) -> ArtifactHeader:
    """Persist ``model`` as a versioned artifact at ``path``.

    Registry-built models (:func:`repro.models.registry.build_model`)
    already carry their registry name, settings and dataset fingerprint, so
    ``save_model(model, path)`` needs nothing else.  Models constructed by
    hand can pass ``dataset`` (for the schema fingerprint) and
    ``settings``/``model_name`` explicitly; GBGCN variants additionally
    record their :class:`~repro.core.gbgcn.GBGCNConfig` so they round-trip
    even without registry settings.  Returns the written header.

    ``retrieval_index`` embeds a prebuilt
    :class:`~repro.serving.retrieval.RetrievalIndex` (its arrays under
    ``index/``, its parameters in the header's ``retrieval`` field) so a
    serving catalog can cold-start ANN retrieval without re-clustering —
    recover it with :func:`read_retrieval_state`.

    Usage — save a registry model, inspect the header, load it back:

    >>> import tempfile
    >>> from pathlib import Path
    >>> from repro.data import BeibeiLikeConfig, generate_dataset, leave_one_out_split
    >>> from repro.models import build_model
    >>> from repro.persist import load_model, save_model
    >>> split = leave_one_out_split(generate_dataset(
    ...     BeibeiLikeConfig(num_users=40, num_items=20, num_behaviors=160, seed=0)))
    >>> path = Path(tempfile.mkdtemp()) / "mf.npz"
    >>> header = save_model(build_model("MF", split.train), path)
    >>> (header.model_name, header.format_version)
    ('MF', 1)
    >>> load_model(path, split.train).name      # exact weights, fresh process
    'MF'
    """
    path = Path(path)
    name, settings_dict, config_dict, schema = _resolve_identity(model, dataset, settings, model_name)
    # Zero-copy views: the arrays are only read while np.savez streams them
    # out, so snapshotting the whole model first would just double memory.
    state = model.state_arrays()
    retrieval_params: Optional[Dict[str, Any]] = None
    index_arrays: Dict[str, np.ndarray] = {}
    if retrieval_index is not None:
        if int(retrieval_index.num_items) != int(model.num_items):
            raise ArtifactError(
                f"retrieval index covers {retrieval_index.num_items} items but the model "
                f"serves {model.num_items}; build the index from this model's item factors"
            )
        retrieval_params = dict(retrieval_index.params())
        index_arrays = {
            _INDEX_PREFIX + key: np.ascontiguousarray(value)
            for key, value in retrieval_index.state_arrays().items()
        }
    header = ArtifactHeader(
        format_version=FORMAT_VERSION,
        model_name=name,
        settings=settings_dict,
        gbgcn_config=config_dict,
        schema=schema,
        state_keys=sorted(state),
        library_version=_library_version(),
        retrieval=retrieval_params,
    )
    arrays: Dict[str, np.ndarray] = {
        _HEADER_KEY: np.frombuffer(header.to_json().encode("utf-8"), dtype=np.uint8)
    }
    for key, value in state.items():
        arrays[_STATE_PREFIX + key] = np.ascontiguousarray(value)
    arrays.update(index_arrays)
    _atomic_write_npz(path, arrays)
    return header


def copy_artifact(source: Union[str, Path], destination: Union[str, Path]) -> None:
    """Replicate an existing artifact byte for byte, atomically.

    The cheap way to *publish* an artifact that is already on disk (e.g. a
    checkpoint into a catalog directory): no model snapshot, no
    re-compression — just a copy with the same temp-file + ``os.replace``
    guarantee as :func:`save_model`, so a reader (a serving
    :class:`~repro.serving.catalog.ModelCatalog` hot-swap check) never sees
    a half-written file.  Copying a path onto itself is a no-op.
    """
    source, destination = Path(source), Path(destination)
    if not source.exists():
        raise ArtifactFormatError(f"artifact to copy does not exist: {source}")
    if source.resolve() == destination.resolve():
        return

    def write(handle):
        with open(source, "rb") as reader:
            shutil.copyfileobj(reader, handle)

    _atomic_replace_write(destination, write)


def _library_version() -> str:
    from .. import __version__

    return __version__


def _open_archive(path: Path):
    if not path.exists():
        raise ArtifactFormatError(f"artifact file does not exist: {path}")
    try:
        archive = np.load(path, allow_pickle=False)
    except (zipfile.BadZipFile, OSError, ValueError) as error:
        raise ArtifactFormatError(f"{path} is not a readable npz artifact: {error}") from error
    if not hasattr(archive, "files"):
        # np.load returns a bare ndarray for .npy content.
        raise ArtifactFormatError(f"{path} is a single-array .npy file, not an npz artifact")
    return archive


def read_header(path: Union[str, Path]) -> ArtifactHeader:
    """Read and validate only the JSON header of an artifact."""
    path = Path(path)
    with _open_archive(path) as archive:
        return _header_from_archive(archive, path)


def _header_from_archive(archive, path: Path) -> ArtifactHeader:
    if _HEADER_KEY not in archive.files:
        raise ArtifactFormatError(
            f"{path} is an npz archive but carries no {_HEADER_KEY!r} entry; "
            f"it was not written by repro.persist.save_model"
        )
    try:
        raw = archive[_HEADER_KEY]
        header_bytes = bytes(np.asarray(raw, dtype=np.uint8))
    except (zipfile.BadZipFile, OSError, ValueError, TypeError) as error:
        raise ArtifactFormatError(f"artifact header of {path} is unreadable: {error}") from error
    return ArtifactHeader.from_json(header_bytes.decode("utf-8", errors="replace"))


def _state_from_archive(archive, header: ArtifactHeader, path: Path) -> Dict[str, np.ndarray]:
    state: Dict[str, np.ndarray] = {}
    try:
        for key in archive.files:
            if key.startswith(_STATE_PREFIX):
                state[key[len(_STATE_PREFIX):]] = archive[key]
    except (zipfile.BadZipFile, OSError, ValueError) as error:
        raise ArtifactFormatError(f"artifact {path} has unreadable state arrays: {error}") from error
    missing = set(header.state_keys) - set(state)
    if missing:
        raise ArtifactFormatError(
            f"artifact {path} is missing state arrays recorded in its header: {sorted(missing)}"
        )
    return state


def read_state_dict(path: Union[str, Path]) -> Tuple[ArtifactHeader, Dict[str, np.ndarray]]:
    """Read the header and the full parameter state of an artifact."""
    path = Path(path)
    with _open_archive(path) as archive:
        header = _header_from_archive(archive, path)
        state = _state_from_archive(archive, header, path)
    return header, state


def read_retrieval_state(
    path: Union[str, Path],
) -> Optional[Tuple[Dict[str, Any], Dict[str, np.ndarray]]]:
    """The embedded retrieval index of an artifact, or ``None``.

    Returns ``(params, arrays)`` — the header's ``retrieval`` parameter
    dict and the raw ``index/`` arrays — ready for
    ``RetrievalIndex.from_state``.  ``None`` when the artifact was saved
    without ``retrieval_index=`` (the common case); an artifact whose
    header declares an index but whose ``index/`` arrays are missing is
    corrupt and raises :class:`ArtifactFormatError`.
    """
    path = Path(path)
    with _open_archive(path) as archive:
        header = _header_from_archive(archive, path)
        if header.retrieval is None:
            return None
        arrays: Dict[str, np.ndarray] = {}
        try:
            for key in archive.files:
                if key.startswith(_INDEX_PREFIX):
                    arrays[key[len(_INDEX_PREFIX):]] = archive[key]
        except (zipfile.BadZipFile, OSError, ValueError) as error:
            raise ArtifactFormatError(
                f"artifact {path} has unreadable retrieval-index arrays: {error}"
            ) from error
    if not arrays:
        raise ArtifactFormatError(
            f"artifact {path} declares a retrieval index in its header but carries no "
            f"{_INDEX_PREFIX!r} arrays (truncated or hand-edited write?)"
        )
    return dict(header.retrieval), arrays


def _check_schema(header: ArtifactHeader, dataset: "GroupBuyingDataset", path: Path) -> None:
    if header.schema is None:
        raise SchemaMismatchError(
            f"artifact {path} records no dataset-schema fingerprint, so it cannot be verified "
            f"against this dataset; re-save it with save_model(..., dataset=...), or — if you "
            f"trust its provenance — restore the weights into a pre-built model with "
            f"repro.persist.load_state_into(..., verify_schema=False)"
        )
    actual = dataset_fingerprint(dataset)
    differences = fingerprint_mismatch(header.schema, actual)
    if differences:
        raise SchemaMismatchError(
            f"artifact {path} was trained on a different dataset than the one supplied "
            f"({'; '.join(differences)}); load it with the original training dataset "
            f"(user/item ids are only meaningful relative to it)"
        )


def _rebuild_model(header: ArtifactHeader, dataset: "GroupBuyingDataset", path: Path) -> "RecommenderModel":
    from ..models.registry import SERVABLE_MODEL_NAMES, ModelSettings, build_model

    if header.model_name not in SERVABLE_MODEL_NAMES:
        # Diagnose the unknown name up front (rather than as a generic
        # build failure) so a catalog scan over a mixed directory says
        # exactly which file holds which unloadable model.
        raise ArtifactFormatError(
            f"artifact {path} records unknown model {header.model_name!r}; this library can "
            f"rebuild {SERVABLE_MODEL_NAMES}.  If the artifact came from a newer library "
            f"version, upgrade; otherwise build the model yourself and restore weights with "
            f"repro.persist.load_state_into"
        )

    settings = None
    if header.settings is not None:
        try:
            settings = ModelSettings.from_dict(header.settings)
        except (TypeError, ValueError) as error:
            raise ArtifactFormatError(f"artifact {path} has invalid settings: {error}") from error

    if header.gbgcn_config is not None and header.model_name.startswith("GBGCN"):
        # The recorded config is the source of truth for GBGCN variants: it
        # was captured from ``model.config`` at save time, whereas a config
        # re-derived from settings can disagree for hand-built models (e.g.
        # a custom alpha that no ModelSettings field produces).
        from ..core.gbgcn import GBGCN, GBGCNConfig
        from ..core.pretrain import GBGCNPretrainModel
        from ..graph.hetero import build_hetero_graph

        try:
            config = GBGCNConfig(**header.gbgcn_config)
        except (TypeError, ValueError) as error:
            raise ArtifactFormatError(f"artifact {path} has an invalid GBGCN config: {error}") from error
        model_class = GBGCNPretrainModel if header.model_name == "GBGCN-pretrain" else GBGCN
        model = model_class(dataset.num_users, dataset.num_items, build_hetero_graph(dataset), config=config)
        # Rebind identity so re-saving the loaded model stays self-describing
        # (schema fingerprint included).
        model.bind_artifact_metadata(header.model_name, settings, dataset)
        return model

    if settings is not None:
        try:
            return build_model(header.model_name, dataset, settings)
        except (TypeError, ValueError) as error:
            raise ArtifactFormatError(
                f"artifact {path} cannot be rebuilt as registry model "
                f"{header.model_name!r}: {error}"
            ) from error
    raise ArtifactFormatError(
        f"artifact {path} (model {header.model_name!r}) records neither registry settings nor a "
        f"GBGCN config, so the model cannot be rebuilt; valid registry names are "
        f"{SERVABLE_MODEL_NAMES}. "
        f"Build the model yourself and restore weights with repro.persist.load_state_into"
    )


def load_model(path: Union[str, Path], train_dataset: "GroupBuyingDataset") -> "RecommenderModel":
    """Reconstruct the model stored at ``path`` on top of ``train_dataset``.

    The dataset must be the training dataset the artifact was saved against
    (its schema fingerprint is verified); the rebuilt model has exactly the
    saved weights and an invalidated evaluation cache, ready for
    ``prepare_for_evaluation`` / serving.
    """
    path = Path(path)
    with _open_archive(path) as archive:
        # Validate against the header before decompressing any state arrays,
        # so a rejected load costs O(header), not O(archive).
        header = _header_from_archive(archive, path)
        _check_schema(header, train_dataset, path)
        state = _state_from_archive(archive, header, path)
    model = _rebuild_model(header, train_dataset, path)
    try:
        model.load_state_dict(state)
    except (KeyError, ValueError) as error:
        raise ArtifactFormatError(
            f"artifact {path} state does not fit the rebuilt {header.model_name!r} model: {error}"
        ) from error
    # load_state_dict invalidates the model's evaluation cache itself.
    model.eval()
    return model


def load_state_into(
    model: "RecommenderModel",
    path: Union[str, Path],
    dataset: Optional["GroupBuyingDataset"] = None,
    verify_schema: bool = True,
) -> ArtifactHeader:
    """Restore an artifact's weights into an already-built ``model``.

    The escape hatch for models the header cannot rebuild (hand-constructed
    models saved without registry settings): the caller provides the model,
    the artifact provides the weights.  Schema verification runs whenever a
    dataset is known — passed explicitly, or carried by a registry-built
    model — and raises :class:`SchemaMismatchError` when the recorded
    fingerprint differs *or* when the artifact recorded none (a check that
    cannot run must not pass silently).  ``verify_schema=False`` is the
    deliberate opt-out for artifacts saved without a fingerprint whose
    provenance the caller trusts anyway.
    """
    path = Path(path)
    if verify_schema:
        if dataset is None:
            # Mirror save_model's identity resolution: registry-built models
            # carry their training dataset, so verification is on by default.
            dataset = getattr(model, "_artifact_dataset", None)
    else:
        dataset = None
    with _open_archive(path) as archive:
        header = _header_from_archive(archive, path)
        target_name = getattr(model, "_registry_name", None) or model.name
        if header.model_name != target_name:
            # Different models can share parameter keys and shapes (MF vs
            # SocialMF), so key/shape validation alone cannot catch this.
            raise ModelMismatchError(
                f"artifact {path} holds a {header.model_name!r} model, but the supplied model is "
                f"{target_name!r}; pass the matching model (or rebuild via load_model)"
            )
        if dataset is not None:
            _check_schema(header, dataset, path)
        state = _state_from_archive(archive, header, path)
    try:
        model.load_state_dict(state)
    except (KeyError, ValueError) as error:
        raise ArtifactFormatError(
            f"artifact {path} state does not fit the supplied {model.name!r} model: {error}"
        ) from error
    return header
