"""Typed errors raised by the model-artifact persistence layer.

Every failure mode of :mod:`repro.persist` raises a subclass of
:class:`ArtifactError`, so callers can catch one exception type at the
serving boundary while tests (and operators reading logs) still see a
precise category: an unreadable/garbled file, a format produced by a
newer library version, or an artifact being loaded against the wrong
dataset.
"""

from __future__ import annotations

__all__ = [
    "ArtifactError",
    "ArtifactFormatError",
    "ArtifactLayoutError",
    "ArtifactVersionError",
    "ModelMismatchError",
    "SchemaMismatchError",
]


class ArtifactError(Exception):
    """Base class for every model-artifact persistence failure."""


class ArtifactFormatError(ArtifactError):
    """The file is not a readable model artifact.

    Raised for corrupted archives, truncated/garbled JSON headers, files
    that are valid ``.npz`` archives but were not written by
    :func:`repro.persist.save_model`, and headers missing required fields.
    """


class ArtifactVersionError(ArtifactError):
    """The artifact declares a format version this library cannot read."""


class ArtifactLayoutError(ArtifactError):
    """An unknown on-disk layout was requested or detected.

    Raised by ``save_model(..., layout=...)`` and
    ``migrate_artifact(..., to_layout=...)`` for layout names other than
    the supported ``"npz"`` (single compressed-archive file, format v1) and
    ``"dir"`` (mmap-able directory of raw ``.npy`` files, format v2).
    """


class ModelMismatchError(ArtifactError):
    """The artifact holds a different model than the one supplied.

    Raised by ``load_state_into`` when the header's recorded model name
    disagrees with the target model — different models can share parameter
    keys and shapes (MF vs SocialMF), so a key/shape check alone would let
    the wrong model's weights load silently.
    """


class SchemaMismatchError(ArtifactError):
    """The artifact was trained on a dataset with a different schema.

    Loading a model against a dataset whose user/item universe (or
    behavior/social structure) differs from the training dataset would
    produce silently wrong recommendations, so the fingerprint recorded at
    save time must match the dataset supplied at load time.
    """
