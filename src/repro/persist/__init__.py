"""Versioned model-artifact persistence: train once, serve anywhere.

The artifact layer closes the train/serve gap: a model trained in one
process is written to a single ``.npz`` file (JSON header + full parameter
state + dataset-schema fingerprint) and reconstructed in another process —
or machine — with :func:`load_model`, without retraining and with bitwise
identical scores.

Typical lifecycle::

    model = build_model("GBGCN", split.train)      # carries its identity
    train_model(model, split.train, evaluator)
    save_model(model, "gbgcn.npz")                 # atomic, versioned

    # ... later, in a fresh process ...
    store = EmbeddingStore.from_artifact("gbgcn.npz", split.train)
    TopKRecommender(store, k=10, dataset=split.full).recommend(users)

Every failure mode (corrupted file, truncated header, wrong dataset,
future format version) raises a typed :class:`ArtifactError` subclass.
"""

from .artifact import (
    FORMAT_NAME,
    FORMAT_VERSION,
    ArtifactHeader,
    copy_artifact,
    load_model,
    load_state_into,
    read_header,
    read_retrieval_state,
    read_state_dict,
    save_model,
)
from .errors import (
    ArtifactError,
    ArtifactFormatError,
    ArtifactVersionError,
    ModelMismatchError,
    SchemaMismatchError,
)
from .fingerprint import dataset_fingerprint, fingerprint_mismatch
from .index import (
    ArtifactInfo,
    ArtifactScan,
    artifact_content_token,
    read_artifact_header,
    scan_artifact_directory,
)

__all__ = [
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "ArtifactHeader",
    "ArtifactError",
    "ArtifactFormatError",
    "ArtifactVersionError",
    "ModelMismatchError",
    "SchemaMismatchError",
    "dataset_fingerprint",
    "fingerprint_mismatch",
    "save_model",
    "copy_artifact",
    "load_model",
    "load_state_into",
    "read_header",
    "read_state_dict",
    "read_retrieval_state",
    "ArtifactInfo",
    "ArtifactScan",
    "artifact_content_token",
    "read_artifact_header",
    "scan_artifact_directory",
]
