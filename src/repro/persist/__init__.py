"""Versioned model-artifact persistence: train once, serve anywhere.

The artifact layer closes the train/serve gap: a model trained in one
process is written to disk (JSON header + full parameter state +
dataset-schema fingerprint) and reconstructed in another process — or
machine — with :func:`load_model`, without retraining and with bitwise
identical scores.  Two layouts exist: the default single-``.npz`` archive
(format v1) and the mmap-able ``layout="dir"`` directory of raw ``.npy``
files (format v2), which lets N serving worker processes share one
page-cache copy of the weights; :func:`migrate_artifact` converts between
them.

Typical lifecycle::

    model = build_model("GBGCN", split.train)      # carries its identity
    train_model(model, split.train, evaluator)
    save_model(model, "gbgcn.npz")                 # atomic, versioned

    # ... later, in a fresh process ...
    store = EmbeddingStore.from_artifact("gbgcn.npz", split.train)
    TopKRecommender(store, k=10, dataset=split.full).recommend(users)

Every failure mode (corrupted file, truncated header, wrong dataset,
future format version, unknown layout) raises a typed
:class:`ArtifactError` subclass.
"""

from .artifact import (
    DIR_FORMAT_VERSION,
    DIR_HEADER_FILENAME,
    DIR_SUFFIX,
    FORMAT_NAME,
    FORMAT_VERSION,
    LAYOUT_DIR,
    LAYOUT_NPZ,
    NPZ_FORMAT_VERSION,
    TMP_SWEEP_MAX_AGE_SECONDS,
    ArtifactHeader,
    artifact_layout,
    copy_artifact,
    load_model,
    load_state_into,
    migrate_artifact,
    read_header,
    read_retrieval_state,
    read_state_dict,
    save_model,
)
from .errors import (
    ArtifactError,
    ArtifactFormatError,
    ArtifactLayoutError,
    ArtifactVersionError,
    ModelMismatchError,
    SchemaMismatchError,
)
from .fingerprint import dataset_fingerprint, fingerprint_mismatch
from .index import (
    ArtifactInfo,
    ArtifactScan,
    artifact_content_token,
    artifact_stat,
    read_artifact_header,
    scan_artifact_directory,
)

__all__ = [
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "NPZ_FORMAT_VERSION",
    "DIR_FORMAT_VERSION",
    "LAYOUT_NPZ",
    "LAYOUT_DIR",
    "DIR_HEADER_FILENAME",
    "DIR_SUFFIX",
    "TMP_SWEEP_MAX_AGE_SECONDS",
    "ArtifactHeader",
    "ArtifactError",
    "ArtifactFormatError",
    "ArtifactLayoutError",
    "ArtifactVersionError",
    "ModelMismatchError",
    "SchemaMismatchError",
    "dataset_fingerprint",
    "fingerprint_mismatch",
    "artifact_layout",
    "save_model",
    "migrate_artifact",
    "copy_artifact",
    "load_model",
    "load_state_into",
    "read_header",
    "read_state_dict",
    "read_retrieval_state",
    "ArtifactInfo",
    "ArtifactScan",
    "artifact_content_token",
    "artifact_stat",
    "read_artifact_header",
    "scan_artifact_directory",
]
