"""Header-only artifact inspection: cheap metadata reads and directory scans.

A model catalog that manages dozens of artifacts cannot afford to
decompress every parameter table just to learn *what* each file holds.
This module reads only the JSON header of an artifact (a few hundred
bytes; for the ``npz`` layout ``np.load`` is lazy, so the ``state/...``
arrays are never touched; for the ``dir`` layout only ``header.json`` is
read) and pairs it with two freshness identities:

* the **stat identity** — size and mtime of the artifact's *identity
  carrier* (the file itself for ``npz``; the ``header.json``, rewritten on
  every publish, for ``dir``) — the cheap first-line hot-swap check;
* a **content token** — a digest over member names, CRC-32 checksums and
  sizes (the npz central directory, or the ``dir`` header's ``members``
  manifest; no array decompression either way) — which catches same-size
  replacements inside one mtime tick, where the stat identity is blind
  (coarse-mtime filesystems, fast CI, ``os.utime``-pinned copies).

Example — write two artifacts, then index the directory without loading a
single weight array:

>>> import tempfile
>>> from pathlib import Path
>>> from repro.data import BeibeiLikeConfig, generate_dataset, leave_one_out_split
>>> from repro.models import build_model
>>> from repro.persist import save_model, scan_artifact_directory
>>> split = leave_one_out_split(generate_dataset(
...     BeibeiLikeConfig(num_users=40, num_items=20, num_behaviors=160, seed=0)))
>>> catalog_dir = Path(tempfile.mkdtemp())
>>> _ = save_model(build_model("MF", split.train), catalog_dir / "mf.npz")
>>> _ = save_model(build_model("ItemPop", split.train), catalog_dir / "pop.npz")
>>> scan = scan_artifact_directory(catalog_dir)
>>> sorted(scan.entries)
['mf', 'pop']
>>> scan.entries["mf"].header.model_name
'MF'
>>> scan.failures
{}
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import time
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Union

from .artifact import (
    DIR_HEADER_FILENAME,
    DIR_SUFFIX,
    ArtifactHeader,
    _header_from_archive,
    _open_archive,
    _read_dir_payload,
)
from .errors import ArtifactError, ArtifactFormatError

__all__ = [
    "ArtifactInfo",
    "ArtifactScan",
    "artifact_content_token",
    "artifact_stat",
    "read_artifact_header",
    "scan_artifact_directory",
]


def artifact_stat(path: Union[str, Path]) -> os.stat_result:
    """Stat the artifact's identity carrier — the freshness primitive.

    For the single-file ``npz`` layout that is the file itself; for the
    ``dir`` layout it is the ``header.json`` member, which the writer
    rewrites on every publish, so its ``(st_size, st_mtime_ns)`` change
    whenever the artifact does.  Statting the directory inode instead
    would miss republishes that keep the same member names.  Raises
    ``FileNotFoundError``/``OSError`` exactly like ``os.stat``.
    """
    path = Path(path)
    if path.is_dir():
        return os.stat(path / DIR_HEADER_FILENAME)
    return os.stat(path)


def artifact_content_token(path: Union[str, Path]) -> str:
    """Digest of an artifact's member checksums — content identity, cheap.

    Hashes every member's name, CRC-32 and uncompressed size: for the
    ``npz`` layout from the zip central directory (reading only the tail
    of the file), for the ``dir`` layout from the ``members`` manifest the
    writer recorded in ``header.json``.  The CRCs cover the actual array
    bytes, so two artifacts holding different weights always token
    differently even when their size and mtime collide; nothing is
    decompressed.  Raises
    :class:`~repro.persist.errors.ArtifactFormatError` for paths that are
    not readable artifacts (including files that vanished).
    """
    path = Path(path)
    if path.is_dir():
        return _token_from_manifest(_read_dir_payload(path), path)
    try:
        with zipfile.ZipFile(path) as archive:
            return _token_from_members(archive.infolist())
    except FileNotFoundError as error:
        raise ArtifactFormatError(
            f"artifact file vanished before its content could be read: {path}"
        ) from error
    except (zipfile.BadZipFile, OSError, ValueError) as error:
        raise ArtifactFormatError(f"{path} is not a readable npz artifact: {error}") from error


def _token_from_members(members) -> str:
    hasher = hashlib.sha256()
    for member in members:
        hasher.update(f"{member.filename}:{member.CRC}:{member.file_size};".encode("utf-8"))
    return hasher.hexdigest()


def _token_from_manifest(payload: Dict, path: Path) -> str:
    """Content token of a ``dir``-layout artifact from its header manifest."""
    members = payload.get("members")
    if not isinstance(members, dict) or not members:
        raise ArtifactFormatError(
            f"dir-layout artifact {path} has no members manifest in its "
            f"{DIR_HEADER_FILENAME}; it was not written by repro.persist.save_model"
        )
    hasher = hashlib.sha256()
    for name in sorted(members):
        entry = members[name]
        if not isinstance(entry, dict) or "crc32" not in entry or "size" not in entry:
            raise ArtifactFormatError(
                f"dir-layout artifact {path} has a malformed manifest entry for {name!r}"
            )
        hasher.update(f"{name}:{entry['crc32']}:{entry['size']};".encode("utf-8"))
    return hasher.hexdigest()


@dataclass(frozen=True)
class ArtifactInfo:
    """One artifact's identity: validated header plus file-stat metadata.

    ``size_bytes`` / ``mtime_ns`` identify the *bytes on disk* at read
    time; a writer replacing the file (atomically, as ``save_model`` does)
    usually changes at least one of them, which is how
    :class:`~repro.serving.catalog.ModelCatalog` detects hot-swaps cheaply.
    ``content_token`` (:func:`artifact_content_token`) is the backstop for
    the stat identity's blind spot: a same-size replacement landing within
    one mtime tick still changes the token, because the token covers the
    zip members' CRC-32 checksums.
    """

    path: Path
    header: ArtifactHeader
    size_bytes: int
    mtime_ns: int
    content_token: str = ""

    @property
    def name(self) -> str:
        """Catalog name of the artifact: the file stem (``gbgcn.npz`` → ``gbgcn``)."""
        return self.path.stem

    @property
    def model_name(self) -> str:
        """The registry model the artifact holds (``GBGCN``, ``MF``, ...)."""
        return self.header.model_name

    def stat_differs(self, other: "ArtifactInfo") -> bool:
        """Whether ``other``'s stat identity differs (fast check; see :meth:`differs`)."""
        return (self.size_bytes, self.mtime_ns) != (other.size_bytes, other.mtime_ns)

    def differs(self, other: "ArtifactInfo") -> bool:
        """Whether ``other`` describes different bytes for the same path.

        Compares the stat identity *and* the content token, so a
        pinned-mtime same-size replacement is still reported as different.
        """
        return self.stat_differs(other) or self.content_token != other.content_token


@dataclass
class ArtifactScan:
    """Result of :func:`scan_artifact_directory`.

    ``entries`` maps catalog name (file stem) to :class:`ArtifactInfo` for
    every readable artifact; ``failures`` maps file name to the error
    message for files matching the pattern that are *not* valid artifacts,
    so an operator can diagnose a broken catalog directory from the scan
    alone.
    """

    directory: Path
    entries: Dict[str, ArtifactInfo] = field(default_factory=dict)
    failures: Dict[str, str] = field(default_factory=dict)


def read_artifact_header(path: Union[str, Path]) -> ArtifactInfo:
    """Read an artifact's header and stat identity without loading weights.

    Only the header is read — the npz ``__header__`` entry, or a dir
    artifact's ``header.json`` — so cost is independent of model size,
    making this safe to call over a whole directory of multi-hundred-MiB
    artifacts.  Raises the usual typed
    :class:`~repro.persist.errors.ArtifactError` subclasses for paths that
    are not valid artifacts.
    """
    path = Path(path)
    # Injectable point for the chaos rig: a FaultPlan can make this read
    # raise a transient OSError or stall (repro.serving.faults hook map).
    from ..serving.faults import fault_point

    fault_point("persist.read_header", str(path))
    # Stat before reading: if the artifact is replaced between the stat and
    # the read we record the *older* identity, so the next freshness check
    # still notices the swap (never the reverse, which would miss it).
    try:
        stat = artifact_stat(path)
    except FileNotFoundError as error:
        # Distinguish a vanished file (a concurrent deletion/republish race
        # — routine for a background rescan thread) from other IO trouble,
        # so a directory scan can report it for what it is.
        raise ArtifactFormatError(
            f"artifact file vanished before it could be read: {path}"
        ) from error
    except OSError as error:
        raise ArtifactFormatError(f"artifact file is not readable: {path} ({error})") from error
    if path.is_dir():
        # One payload read serves both the header and the content token, so
        # they always describe the same publish even under concurrent swaps.
        payload = _read_dir_payload(path)
        header = ArtifactHeader.from_json(json.dumps(payload))
        token = _token_from_manifest(payload, path)
        return ArtifactInfo(
            path=path,
            header=header,
            size_bytes=stat.st_size,
            mtime_ns=stat.st_mtime_ns,
            content_token=token,
        )
    # One archive open serves both reads: the content token comes from the
    # zip central directory that np.load's NpzFile already parsed.
    with _open_archive(path) as archive:
        zip_backend = getattr(archive, "zip", None)
        token = _token_from_members(zip_backend.infolist()) if zip_backend is not None else None
        header = _header_from_archive(archive, path)
    if token is None:  # numpy stopped exposing the zip backend; re-open
        token = artifact_content_token(path)
    return ArtifactInfo(
        path=path,
        header=header,
        size_bytes=stat.st_size,
        mtime_ns=stat.st_mtime_ns,
        content_token=token,
    )


#: Default bounded-retry policy for transient header-read failures during a
#: directory scan: how many *re*-reads after the first failure, and the base
#: backoff (jittered, doubling per attempt).  A file caught mid-replace —
#: a transient ``OSError`` or a half-written archive — usually reads clean
#: milliseconds later; a permanently bad file still lands in
#: ``scan.failures`` after at most ``SCAN_RETRIES`` cheap re-reads, so
#: permanent failures surface promptly (the total added delay is bounded by
#: ``~3 * SCAN_RETRY_BACKOFF_SECONDS * 1.5`` per bad file).
SCAN_RETRIES = 2
SCAN_RETRY_BACKOFF_SECONDS = 0.01


def _read_header_with_retries(
    path: Path, retries: int, backoff_seconds: float
) -> ArtifactInfo:
    """``read_artifact_header`` with bounded, jittered retry on failure.

    Every failure class is retried — a mid-replace window can surface as
    ``OSError``, a vanished path, or a torn half-written archive
    (``ArtifactFormatError``), and distinguishing "transient" from
    "permanent" up front is guesswork.  Boundedness is the guarantee: a
    permanent failure propagates after ``retries`` extra reads, never an
    unbounded loop.  Backoff doubles per attempt with multiplicative
    jitter in [0.5x, 1.5x) so a fleet of scanners racing one publisher
    doesn't retry in lockstep.
    """
    attempt = 0
    while True:
        try:
            return read_artifact_header(path)
        except (ArtifactError, OSError):
            # A vanished artifact is permanent for this cycle (the
            # publisher deleted or renamed it) — surface it promptly
            # instead of burning retries on a file that cannot come back.
            if attempt >= retries or not path.exists():
                raise
            # repro: allow(RNG-001) -- retry-backoff jitter wants cross-process entropy, not reproducibility; seeding it would synchronize the very retries it decorrelates
            time.sleep(backoff_seconds * (2**attempt) * (0.5 + random.random()))
            attempt += 1


def scan_artifact_directory(
    directory: Union[str, Path],
    pattern: str = "*.npz",
    strict: bool = False,
    dir_pattern: str = f"*{DIR_SUFFIX}",
    retries: int = SCAN_RETRIES,
    retry_backoff_seconds: float = SCAN_RETRY_BACKOFF_SECONDS,
) -> ArtifactScan:
    """Index every artifact in ``directory`` via header-only reads.

    Regular files matching ``pattern`` are read as ``npz``-layout
    artifacts; subdirectories matching ``dir_pattern`` as ``dir``-layout
    artifacts.  Entries that fail header validation are recorded in
    :attr:`ArtifactScan.failures` (with ``strict=True`` the first failure
    raises instead — useful in tests and CI).  The scan is safe against a
    concurrent writer or deleter: a file that disappears between the
    directory listing and the header read degrades to a ``failures`` entry
    naming the race (never a propagated ``FileNotFoundError``), which is
    what a background rescan thread needs to coexist with publishers.  A
    failing header read is retried up to ``retries`` times with jittered
    backoff (``retry_backoff_seconds`` base) before being declared failed,
    so a file caught mid-replace does not flap in and out of ``failures``
    on every warmer cycle; pass ``retries=0`` to fail on the first error.
    Two entries whose stems collide (``gbgcn.npz`` vs a ``gbgcn.npyd``
    dir) are a hard error in both modes: a catalog name must identify
    exactly one artifact.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise ArtifactFormatError(f"artifact directory does not exist: {directory}")
    scan = ArtifactScan(directory=directory)
    candidates: Dict[str, Path] = {}
    for path in directory.glob(pattern):
        if path.is_file():
            candidates[path.name] = path
    for path in directory.glob(dir_pattern):
        if path.is_dir():
            candidates[path.name] = path
    for name in sorted(candidates):
        path = candidates[name]
        try:
            info = _read_header_with_retries(path, retries, retry_backoff_seconds)
        except ArtifactError as error:
            if strict:
                raise
            scan.failures[path.name] = str(error)
            continue
        except OSError as error:
            # A racing deletion can also surface from is_file()/glob stat
            # calls on some filesystems; degrade identically.
            if strict:
                raise ArtifactFormatError(f"artifact file is not readable: {path} ({error})") from error
            scan.failures[path.name] = f"artifact file is not readable: {path} ({error})"
            continue
        if info.name in scan.entries:
            raise ArtifactFormatError(
                f"catalog name {info.name!r} is ambiguous in {directory}: both "
                f"{scan.entries[info.name].path.name!r} and {path.name!r} match"
            )
        scan.entries[info.name] = info
    return scan
