"""Header-only artifact inspection: cheap metadata reads and directory scans.

A model catalog that manages dozens of artifacts cannot afford to
decompress every parameter table just to learn *what* each file holds.
This module reads only the JSON ``__header__`` entry of an artifact (a few
hundred bytes; ``np.load`` over an npz is lazy, so the ``state/...`` arrays
are never touched) and pairs it with the file's stat identity — size and
mtime — which is what hot-swap detection compares.

Example — write two artifacts, then index the directory without loading a
single weight array:

>>> import tempfile
>>> from pathlib import Path
>>> from repro.data import BeibeiLikeConfig, generate_dataset, leave_one_out_split
>>> from repro.models import build_model
>>> from repro.persist import save_model, scan_artifact_directory
>>> split = leave_one_out_split(generate_dataset(
...     BeibeiLikeConfig(num_users=40, num_items=20, num_behaviors=160, seed=0)))
>>> catalog_dir = Path(tempfile.mkdtemp())
>>> _ = save_model(build_model("MF", split.train), catalog_dir / "mf.npz")
>>> _ = save_model(build_model("ItemPop", split.train), catalog_dir / "pop.npz")
>>> scan = scan_artifact_directory(catalog_dir)
>>> sorted(scan.entries)
['mf', 'pop']
>>> scan.entries["mf"].header.model_name
'MF'
>>> scan.failures
{}
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Union

from .artifact import ArtifactHeader, read_header
from .errors import ArtifactError, ArtifactFormatError

__all__ = ["ArtifactInfo", "ArtifactScan", "read_artifact_header", "scan_artifact_directory"]


@dataclass(frozen=True)
class ArtifactInfo:
    """One artifact's identity: validated header plus file-stat metadata.

    ``size_bytes`` / ``mtime_ns`` identify the *bytes on disk* at read
    time; a writer replacing the file (atomically, as ``save_model`` does)
    changes at least one of them, which is how
    :class:`~repro.serving.catalog.ModelCatalog` detects hot-swaps.
    """

    path: Path
    header: ArtifactHeader
    size_bytes: int
    mtime_ns: int

    @property
    def name(self) -> str:
        """Catalog name of the artifact: the file stem (``gbgcn.npz`` → ``gbgcn``)."""
        return self.path.stem

    @property
    def model_name(self) -> str:
        """The registry model the artifact holds (``GBGCN``, ``MF``, ...)."""
        return self.header.model_name

    def stat_differs(self, other: "ArtifactInfo") -> bool:
        """Whether ``other`` describes different bytes for the same path."""
        return (self.size_bytes, self.mtime_ns) != (other.size_bytes, other.mtime_ns)


@dataclass
class ArtifactScan:
    """Result of :func:`scan_artifact_directory`.

    ``entries`` maps catalog name (file stem) to :class:`ArtifactInfo` for
    every readable artifact; ``failures`` maps file name to the error
    message for files matching the pattern that are *not* valid artifacts,
    so an operator can diagnose a broken catalog directory from the scan
    alone.
    """

    directory: Path
    entries: Dict[str, ArtifactInfo] = field(default_factory=dict)
    failures: Dict[str, str] = field(default_factory=dict)


def read_artifact_header(path: Union[str, Path]) -> ArtifactInfo:
    """Read an artifact's header and stat identity without loading weights.

    Only the ``__header__`` entry of the npz archive is decompressed —
    cost is independent of model size — making this safe to call over a
    whole directory of multi-hundred-MiB artifacts.  Raises the usual
    typed :class:`~repro.persist.errors.ArtifactError` subclasses for
    files that are not valid artifacts.
    """
    path = Path(path)
    # Stat before reading: if the file is replaced between the stat and the
    # read we record the *older* identity, so the next freshness check
    # still notices the swap (never the reverse, which would miss it).
    try:
        stat = os.stat(path)
    except OSError as error:
        raise ArtifactFormatError(f"artifact file is not readable: {path} ({error})") from error
    header = read_header(path)
    return ArtifactInfo(
        path=path, header=header, size_bytes=stat.st_size, mtime_ns=stat.st_mtime_ns
    )


def scan_artifact_directory(
    directory: Union[str, Path], pattern: str = "*.npz", strict: bool = False
) -> ArtifactScan:
    """Index every artifact in ``directory`` via header-only reads.

    Files matching ``pattern`` that fail header validation are recorded in
    :attr:`ArtifactScan.failures` (with ``strict=True`` the first failure
    raises instead — useful in tests and CI).  Two files whose stems
    collide (``gbgcn.npz`` vs a ``gbgcn.NPZ`` copy) are a hard error in
    both modes: a catalog name must identify exactly one artifact.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise ArtifactFormatError(f"artifact directory does not exist: {directory}")
    scan = ArtifactScan(directory=directory)
    for path in sorted(directory.glob(pattern)):
        if not path.is_file():
            continue
        try:
            info = read_artifact_header(path)
        except ArtifactError as error:
            if strict:
                raise
            scan.failures[path.name] = str(error)
            continue
        if info.name in scan.entries:
            raise ArtifactFormatError(
                f"catalog name {info.name!r} is ambiguous in {directory}: both "
                f"{scan.entries[info.name].path.name!r} and {path.name!r} match"
            )
        scan.entries[info.name] = info
    return scan
