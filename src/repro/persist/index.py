"""Header-only artifact inspection: cheap metadata reads and directory scans.

A model catalog that manages dozens of artifacts cannot afford to
decompress every parameter table just to learn *what* each file holds.
This module reads only the JSON ``__header__`` entry of an artifact (a few
hundred bytes; ``np.load`` over an npz is lazy, so the ``state/...`` arrays
are never touched) and pairs it with two freshness identities:

* the file's **stat identity** — size and mtime — the cheap first-line
  hot-swap check;
* a **content token** — a digest of the npz central directory (member
  names, CRC-32 checksums, sizes; still no decompression) — which catches
  same-size replacements inside one mtime tick, where the stat identity is
  blind (coarse-mtime filesystems, fast CI, ``os.utime``-pinned copies).

Example — write two artifacts, then index the directory without loading a
single weight array:

>>> import tempfile
>>> from pathlib import Path
>>> from repro.data import BeibeiLikeConfig, generate_dataset, leave_one_out_split
>>> from repro.models import build_model
>>> from repro.persist import save_model, scan_artifact_directory
>>> split = leave_one_out_split(generate_dataset(
...     BeibeiLikeConfig(num_users=40, num_items=20, num_behaviors=160, seed=0)))
>>> catalog_dir = Path(tempfile.mkdtemp())
>>> _ = save_model(build_model("MF", split.train), catalog_dir / "mf.npz")
>>> _ = save_model(build_model("ItemPop", split.train), catalog_dir / "pop.npz")
>>> scan = scan_artifact_directory(catalog_dir)
>>> sorted(scan.entries)
['mf', 'pop']
>>> scan.entries["mf"].header.model_name
'MF'
>>> scan.failures
{}
"""

from __future__ import annotations

import hashlib
import os
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Union

from .artifact import ArtifactHeader, _header_from_archive, _open_archive
from .errors import ArtifactError, ArtifactFormatError

__all__ = [
    "ArtifactInfo",
    "ArtifactScan",
    "artifact_content_token",
    "read_artifact_header",
    "scan_artifact_directory",
]


def artifact_content_token(path: Union[str, Path]) -> str:
    """Digest of an artifact's npz central directory — content identity, cheap.

    Hashes every zip member's name, CRC-32 and uncompressed size.  The CRCs
    cover the actual array bytes, so two artifacts holding different weights
    always token-differently even when their size and mtime collide; reading
    the central directory touches only the tail of the file and decompresses
    nothing.  Raises :class:`~repro.persist.errors.ArtifactFormatError` for
    files that are not readable zip archives (including files that vanished).
    """
    path = Path(path)
    try:
        with zipfile.ZipFile(path) as archive:
            return _token_from_members(archive.infolist())
    except FileNotFoundError as error:
        raise ArtifactFormatError(
            f"artifact file vanished before its content could be read: {path}"
        ) from error
    except (zipfile.BadZipFile, OSError, ValueError) as error:
        raise ArtifactFormatError(f"{path} is not a readable npz artifact: {error}") from error


def _token_from_members(members) -> str:
    hasher = hashlib.sha256()
    for member in members:
        hasher.update(f"{member.filename}:{member.CRC}:{member.file_size};".encode("utf-8"))
    return hasher.hexdigest()


@dataclass(frozen=True)
class ArtifactInfo:
    """One artifact's identity: validated header plus file-stat metadata.

    ``size_bytes`` / ``mtime_ns`` identify the *bytes on disk* at read
    time; a writer replacing the file (atomically, as ``save_model`` does)
    usually changes at least one of them, which is how
    :class:`~repro.serving.catalog.ModelCatalog` detects hot-swaps cheaply.
    ``content_token`` (:func:`artifact_content_token`) is the backstop for
    the stat identity's blind spot: a same-size replacement landing within
    one mtime tick still changes the token, because the token covers the
    zip members' CRC-32 checksums.
    """

    path: Path
    header: ArtifactHeader
    size_bytes: int
    mtime_ns: int
    content_token: str = ""

    @property
    def name(self) -> str:
        """Catalog name of the artifact: the file stem (``gbgcn.npz`` → ``gbgcn``)."""
        return self.path.stem

    @property
    def model_name(self) -> str:
        """The registry model the artifact holds (``GBGCN``, ``MF``, ...)."""
        return self.header.model_name

    def stat_differs(self, other: "ArtifactInfo") -> bool:
        """Whether ``other``'s stat identity differs (fast check; see :meth:`differs`)."""
        return (self.size_bytes, self.mtime_ns) != (other.size_bytes, other.mtime_ns)

    def differs(self, other: "ArtifactInfo") -> bool:
        """Whether ``other`` describes different bytes for the same path.

        Compares the stat identity *and* the content token, so a
        pinned-mtime same-size replacement is still reported as different.
        """
        return self.stat_differs(other) or self.content_token != other.content_token


@dataclass
class ArtifactScan:
    """Result of :func:`scan_artifact_directory`.

    ``entries`` maps catalog name (file stem) to :class:`ArtifactInfo` for
    every readable artifact; ``failures`` maps file name to the error
    message for files matching the pattern that are *not* valid artifacts,
    so an operator can diagnose a broken catalog directory from the scan
    alone.
    """

    directory: Path
    entries: Dict[str, ArtifactInfo] = field(default_factory=dict)
    failures: Dict[str, str] = field(default_factory=dict)


def read_artifact_header(path: Union[str, Path]) -> ArtifactInfo:
    """Read an artifact's header and stat identity without loading weights.

    Only the ``__header__`` entry of the npz archive is decompressed —
    cost is independent of model size — making this safe to call over a
    whole directory of multi-hundred-MiB artifacts.  Raises the usual
    typed :class:`~repro.persist.errors.ArtifactError` subclasses for
    files that are not valid artifacts.
    """
    path = Path(path)
    # Stat before reading: if the file is replaced between the stat and the
    # read we record the *older* identity, so the next freshness check
    # still notices the swap (never the reverse, which would miss it).
    try:
        stat = os.stat(path)
    except FileNotFoundError as error:
        # Distinguish a vanished file (a concurrent deletion/republish race
        # — routine for a background rescan thread) from other IO trouble,
        # so a directory scan can report it for what it is.
        raise ArtifactFormatError(
            f"artifact file vanished before it could be read: {path}"
        ) from error
    except OSError as error:
        raise ArtifactFormatError(f"artifact file is not readable: {path} ({error})") from error
    # One archive open serves both reads: the content token comes from the
    # zip central directory that np.load's NpzFile already parsed.
    with _open_archive(path) as archive:
        zip_backend = getattr(archive, "zip", None)
        token = _token_from_members(zip_backend.infolist()) if zip_backend is not None else None
        header = _header_from_archive(archive, path)
    if token is None:  # numpy stopped exposing the zip backend; re-open
        token = artifact_content_token(path)
    return ArtifactInfo(
        path=path,
        header=header,
        size_bytes=stat.st_size,
        mtime_ns=stat.st_mtime_ns,
        content_token=token,
    )


def scan_artifact_directory(
    directory: Union[str, Path], pattern: str = "*.npz", strict: bool = False
) -> ArtifactScan:
    """Index every artifact in ``directory`` via header-only reads.

    Files matching ``pattern`` that fail header validation are recorded in
    :attr:`ArtifactScan.failures` (with ``strict=True`` the first failure
    raises instead — useful in tests and CI).  The scan is safe against a
    concurrent writer or deleter: a file that disappears between the
    directory listing and the header read degrades to a ``failures`` entry
    naming the race (never a propagated ``FileNotFoundError``), which is
    what a background rescan thread needs to coexist with publishers.  Two
    files whose stems collide (``gbgcn.npz`` vs a ``gbgcn.NPZ`` copy) are a
    hard error in both modes: a catalog name must identify exactly one
    artifact.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise ArtifactFormatError(f"artifact directory does not exist: {directory}")
    scan = ArtifactScan(directory=directory)
    for path in sorted(directory.glob(pattern)):
        try:
            if not path.is_file():
                continue
            info = read_artifact_header(path)
        except ArtifactError as error:
            if strict:
                raise
            scan.failures[path.name] = str(error)
            continue
        except OSError as error:
            # A racing deletion can also surface from is_file()/glob stat
            # calls on some filesystems; degrade identically.
            if strict:
                raise ArtifactFormatError(f"artifact file is not readable: {path} ({error})") from error
            scan.failures[path.name] = f"artifact file is not readable: {path} ({error})"
            continue
        if info.name in scan.entries:
            raise ArtifactFormatError(
                f"catalog name {info.name!r} is ambiguous in {directory}: both "
                f"{scan.entries[info.name].path.name!r} and {path.name!r} match"
            )
        scan.entries[info.name] = info
    return scan
