"""Finite-difference gradient checking for the autograd engine.

The autograd engine replaces PyTorch in this reproduction, so its gradients
must be verifiably correct.  :func:`check_gradients` compares analytic
gradients against central finite differences and is used throughout
``tests/autograd`` and ``tests/nn``.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["numerical_gradient", "check_gradients", "GradientCheckError"]


class GradientCheckError(AssertionError):
    """Raised when analytic and numerical gradients disagree."""


def numerical_gradient(
    func: Callable[[], Tensor],
    tensor: Tensor,
    epsilon: float = 1e-6,
) -> np.ndarray:
    """Central finite-difference gradient of ``func()`` w.r.t. ``tensor``.

    ``func`` must be a zero-argument callable returning a scalar
    :class:`Tensor` and must read ``tensor.data`` afresh on every call.
    """
    gradient = np.zeros_like(tensor.data)
    flat = tensor.data.reshape(-1)
    flat_grad = gradient.reshape(-1)
    for position in range(flat.size):
        original = flat[position]
        flat[position] = original + epsilon
        upper = float(func().data)
        flat[position] = original - epsilon
        lower = float(func().data)
        flat[position] = original
        flat_grad[position] = (upper - lower) / (2.0 * epsilon)
    return gradient


def check_gradients(
    func: Callable[[], Tensor],
    tensors: Dict[str, Tensor] | Sequence[Tensor],
    epsilon: float = 1e-6,
    rtol: float = 1e-4,
    atol: float = 1e-6,
) -> None:
    """Assert that analytic gradients of ``func`` match finite differences.

    Parameters
    ----------
    func:
        Zero-argument callable that rebuilds the computation and returns a
        scalar :class:`Tensor`.
    tensors:
        The leaf tensors (with ``requires_grad=True``) whose gradients are
        verified; a dict gives better error messages.
    """
    if not isinstance(tensors, dict):
        tensors = {f"tensor_{i}": t for i, t in enumerate(tensors)}

    for tensor in tensors.values():
        tensor.zero_grad()
    output = func()
    output.backward()

    for name, tensor in tensors.items():
        analytic = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        numeric = numerical_gradient(func, tensor, epsilon=epsilon)
        if not np.allclose(analytic, numeric, rtol=rtol, atol=atol):
            worst = np.max(np.abs(analytic - numeric))
            raise GradientCheckError(
                f"gradient mismatch for '{name}': max abs difference {worst:.3e}"
            )
