"""Row-sparse gradients for embedding tables.

A mini-batch touches a few hundred embedding rows out of (potentially)
millions, yet the dense backward of ``embedding_lookup`` /
``Tensor.__getitem__`` used to allocate a full ``zeros_like(table)`` and
``np.add.at``-scatter into it on *every* lookup, and every optimizer step
then re-read the whole table.  :class:`RowSparseGrad` stores only the
unique touched row indices plus one value block per row, so the gradient
path costs ``O(batch)`` instead of ``O(table)`` per lookup.

Bitwise-compatibility contract
------------------------------
The dense path remains the oracle: with sparse gradients disabled
(:func:`use_dense_grads`) the engine behaves exactly as before, and with
them enabled every densified gradient is ``np.array_equal`` to the dense
one.  This works because the sparse path performs the *same* float
additions in the *same* left-to-right order as ``np.add.at`` /
``dense + scatter``:

* coalescing uses a stable argsort followed by ``np.add.reduceat``, which
  folds repeated-index contributions in occurrence order — exactly the
  fold order of ``np.add.at``;
* merging two sparse gradients concatenates chronologically before
  coalescing, matching ``full_a + full_b``;
* accumulating a sparse gradient into a dense one adds row blocks in
  place, matching ``dense + full_scatter`` elementwise.

(The only representable difference is the sign of zero contributions,
which ``np.array_equal`` — like ``==`` — treats as equal.)
"""

from __future__ import annotations

import contextlib
from typing import Tuple, Union

import numpy as np

try:  # scipy's C kernel for CSR x dense-block products (fallback below).
    from scipy.sparse import _sparsetools as _scipy_sparsetools
except ImportError:  # pragma: no cover - scipy always ships it today
    _scipy_sparsetools = None

__all__ = [
    "RowSparseGrad",
    "GradLike",
    "sparse_grads_enabled",
    "set_sparse_grads",
    "use_dense_grads",
    "use_sparse_grads",
    "coalesce_rows",
    "grad_to_dense",
]


_SPARSE_GRADS_ENABLED = True


def sparse_grads_enabled() -> bool:
    """Whether lookup backwards currently emit :class:`RowSparseGrad`."""
    return _SPARSE_GRADS_ENABLED


def set_sparse_grads(enabled: bool) -> bool:
    """Globally enable/disable sparse gradient emission; returns the old value."""
    global _SPARSE_GRADS_ENABLED
    previous = _SPARSE_GRADS_ENABLED
    _SPARSE_GRADS_ENABLED = bool(enabled)
    return previous


@contextlib.contextmanager
def use_dense_grads():
    """Context manager forcing the (oracle) dense gradient path."""
    previous = set_sparse_grads(False)
    try:
        yield
    finally:
        set_sparse_grads(previous)


@contextlib.contextmanager
def use_sparse_grads():
    """Context manager forcing the row-sparse gradient path."""
    previous = set_sparse_grads(True)
    try:
        yield
    finally:
        set_sparse_grads(previous)


def coalesce_rows(indices: np.ndarray, values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Sum ``values`` blocks that share a row index, in occurrence order.

    Returns ``(unique_sorted_indices, reduced_values)``.  Duplicate rows are
    reduced with a *selection-matrix* product: a CSR matrix with one
    ``1.0`` per contribution (row = compact output row, column = original
    position, columns stored ascending) multiplied against the raw value
    block.  The CSR kernel accumulates each output row sequentially in
    stored-column order — i.e. in original occurrence order — which is
    exactly the left-to-right fold ``np.add.at`` performs, so the sparse
    path stays bit-for-bit interchangeable with the dense scatter.
    (``np.add.reduceat`` would *not* do: its per-segment pairwise summation
    rounds differently.)
    """
    indices = np.asarray(indices, dtype=np.int64)
    values = np.asarray(values, dtype=np.float64)
    block_shape = values.shape[1:]
    count = indices.size
    if count == 0:
        return indices.copy(), values.reshape((0,) + block_shape).copy()
    order = np.argsort(indices, kind="stable")
    sorted_indices = indices[order]
    boundaries = np.flatnonzero(sorted_indices[1:] != sorted_indices[:-1]) + 1
    if boundaries.size + 1 == count:
        # All rows distinct: ``values[order]`` is already the reduction (and
        # materializes a fresh owned array callers can mutate freely).
        return sorted_indices, values[order]
    starts = np.concatenate(([0], boundaries))
    unique = sorted_indices[starts]
    num_unique = unique.size
    block_size = int(np.prod(block_shape)) if block_shape else 1
    if block_size == 0:
        return unique, np.zeros((num_unique,) + block_shape, dtype=np.float64)
    flat_values = np.ascontiguousarray(values).reshape(count, block_size)
    indptr = np.concatenate((starts, [count]))
    reduced = np.zeros((num_unique, block_size), dtype=np.float64)
    if _scipy_sparsetools is not None:
        _scipy_sparsetools.csr_matvecs(
            num_unique,
            count,
            block_size,
            indptr,
            order,
            np.ones(count, dtype=np.float64),
            flat_values.ravel(),
            reduced.ravel(),
        )
    else:  # pragma: no cover - exercised only without scipy's C kernel
        import scipy.sparse as sp

        selector = sp.csr_matrix(
            (np.ones(count, dtype=np.float64), order, indptr), shape=(num_unique, count)
        )
        reduced = selector @ flat_values
    return unique, reduced.reshape((num_unique,) + block_shape)


class RowSparseGrad:
    """Gradient of a 2-D (or N-D) table touched only at ``indices`` rows.

    ``indices`` is always sorted and unique (coalesced), ``values`` holds one
    block per index with shape ``(len(indices),) + shape[1:]``.  Both arrays
    are owned by the instance, so in-place scaling (gradient clipping) is
    safe.
    """

    __slots__ = ("shape", "indices", "values")

    def __init__(self, shape: Tuple[int, ...], indices: np.ndarray, values: np.ndarray) -> None:
        self.shape = tuple(shape)
        self.indices = indices
        self.values = values

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_scatter(cls, shape: Tuple[int, ...], indices: np.ndarray, values) -> "RowSparseGrad":
        """Build a coalesced sparse gradient from raw scatter contributions.

        ``indices`` may repeat and be in any order (negative indices are
        normalized); ``values`` may have extra leading dimensions, which are
        flattened so each row of the result pairs one index with one block.
        """
        num_rows = shape[0]
        indices = np.asarray(indices, dtype=np.int64).reshape(-1)
        values = np.asarray(values, dtype=np.float64)
        block_shape = shape[1:]
        values = values.reshape((indices.size,) + block_shape)
        if indices.size and indices.min() < 0:
            indices = np.where(indices < 0, indices + num_rows, indices)
        unique, reduced = coalesce_rows(indices, values)
        return cls(shape, unique, reduced)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def nnz_rows(self) -> int:
        """Number of distinct rows carrying gradient."""
        return int(self.indices.size)

    @property
    def density(self) -> float:
        """Fraction of table rows touched (the bench's rows-touched ratio)."""
        return self.nnz_rows / self.shape[0] if self.shape[0] else 0.0

    @property
    def dtype(self):
        return self.values.dtype

    @property
    def ndim(self) -> int:
        return len(self.shape)

    def __repr__(self) -> str:
        return f"RowSparseGrad(shape={self.shape}, nnz_rows={self.nnz_rows})"

    # ------------------------------------------------------------------
    # Conversion / arithmetic
    # ------------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        """Materialize the full dense gradient (a fresh, owned array)."""
        dense = np.zeros(self.shape, dtype=np.float64)
        if self.indices.size:
            dense[self.indices] = self.values
        return dense

    def __array__(self, dtype=None, copy=None) -> np.ndarray:
        # NumPy interop: np.asarray / np.allclose / np.array_equal on a
        # sparse gradient transparently see the dense equivalent.
        dense = self.to_dense()
        return dense.astype(dtype) if dtype is not None else dense

    def copy(self) -> "RowSparseGrad":
        return RowSparseGrad(self.shape, self.indices.copy(), self.values.copy())

    def add_(self, other: "RowSparseGrad") -> "RowSparseGrad":
        """Merge another sparse gradient into this one (chronological fold).

        ``self`` is the earlier contribution: shared rows fold as
        ``self_row + other_row``, matching ``full_self + full_other`` on the
        dense path.  Returns the merged gradient (a new instance).
        """
        if other.shape != self.shape:
            raise ValueError(f"shape mismatch: {self.shape} vs {other.shape}")
        if not other.indices.size:
            return self
        if not self.indices.size:
            return other
        indices = np.concatenate([self.indices, other.indices])
        values = np.concatenate([self.values, other.values], axis=0)
        unique, reduced = coalesce_rows(indices, values)
        return RowSparseGrad(self.shape, unique, reduced)

    def add_to_dense_(self, dense: np.ndarray) -> np.ndarray:
        """In-place ``dense[rows] += values``; returns ``dense``."""
        if dense.shape != self.shape:
            raise ValueError(f"shape mismatch: {self.shape} vs {dense.shape}")
        if self.indices.size:
            dense[self.indices] += self.values
        return dense

    def scale_(self, factor: float) -> "RowSparseGrad":
        """In-place multiply all stored values by ``factor`` (clipping)."""
        self.values *= factor
        return self

    def scaled(self, factor: float) -> "RowSparseGrad":
        return RowSparseGrad(self.shape, self.indices.copy(), self.values * factor)

    def __mul__(self, factor: float) -> "RowSparseGrad":
        return self.scaled(factor)

    __rmul__ = __mul__


GradLike = Union[np.ndarray, RowSparseGrad]


def grad_to_dense(grad: GradLike) -> np.ndarray:
    """Densify a gradient of either representation."""
    if isinstance(grad, RowSparseGrad):
        return grad.to_dense()
    return np.asarray(grad)
