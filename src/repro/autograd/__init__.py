"""NumPy-based reverse-mode automatic differentiation substrate.

This package stands in for PyTorch in the GBGCN reproduction.  It provides
the :class:`Tensor` type, differentiable functional operations, sparse
propagation kernels, and gradient-checking utilities.
"""

from .tensor import Tensor, as_tensor, no_grad, is_grad_enabled
from .functional import (
    ACTIVATIONS,
    concat,
    cosine_similarity,
    dropout,
    embedding_lookup,
    gathered_dot_difference,
    identity,
    l2_norm_squared,
    leaky_relu,
    log_sigmoid,
    relu,
    segment_mean,
    segment_sum,
    sigmoid,
    softmax,
    softplus,
    stack,
    tanh,
)
from .sparse import cache_transpose, row_normalize, sparse_matmul, to_csr
from .sparse_grad import (
    RowSparseGrad,
    grad_to_dense,
    set_sparse_grads,
    sparse_grads_enabled,
    use_dense_grads,
    use_sparse_grads,
)
from .gradcheck import GradientCheckError, check_gradients, numerical_gradient

__all__ = [
    "Tensor",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "ACTIVATIONS",
    "concat",
    "cosine_similarity",
    "dropout",
    "embedding_lookup",
    "gathered_dot_difference",
    "identity",
    "l2_norm_squared",
    "leaky_relu",
    "log_sigmoid",
    "relu",
    "segment_mean",
    "segment_sum",
    "sigmoid",
    "softmax",
    "softplus",
    "stack",
    "tanh",
    "row_normalize",
    "sparse_matmul",
    "to_csr",
    "cache_transpose",
    "RowSparseGrad",
    "grad_to_dense",
    "set_sparse_grads",
    "sparse_grads_enabled",
    "use_dense_grads",
    "use_sparse_grads",
    "GradientCheckError",
    "check_gradients",
    "numerical_gradient",
]
