"""Sparse-dense products for graph propagation.

Graph convolutions in the paper (Eq. 1-2 and 4-7) are mean-aggregations of
neighbor embeddings, which are exactly products of a row-normalized sparse
adjacency matrix with a dense embedding matrix.  The adjacency matrix is a
constant of the training data, so only the dense operand needs gradients.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .tensor import Tensor, as_tensor

__all__ = ["sparse_matmul", "row_normalize", "to_csr"]


def to_csr(matrix) -> sp.csr_matrix:
    """Coerce any scipy sparse / dense matrix into CSR format."""
    if sp.issparse(matrix):
        return matrix.tocsr()
    return sp.csr_matrix(np.asarray(matrix, dtype=np.float64))


def row_normalize(matrix) -> sp.csr_matrix:
    """Return the row-stochastic version of ``matrix`` (zero rows stay zero).

    This implements the ``1/|N(v)|`` mean-aggregation weighting used in the
    in-view and cross-view propagation rules.
    """
    csr = to_csr(matrix).astype(np.float64)
    row_sums = np.asarray(csr.sum(axis=1)).flatten()
    inverse = np.zeros_like(row_sums)
    nonzero = row_sums != 0
    inverse[nonzero] = 1.0 / row_sums[nonzero]
    scaling = sp.diags(inverse)
    return (scaling @ csr).tocsr()


def sparse_matmul(matrix: sp.spmatrix, dense: Tensor) -> Tensor:
    """Differentiable product ``matrix @ dense`` with a constant sparse matrix."""
    if not sp.issparse(matrix):
        raise TypeError("sparse_matmul expects a scipy sparse matrix as the left operand")
    dense = as_tensor(dense)
    csr = matrix.tocsr()
    out_data = csr @ dense.data

    def backward(grad: np.ndarray) -> None:
        if dense.requires_grad:
            dense._accumulate(csr.T @ grad)

    return Tensor._make(np.asarray(out_data), (dense,), backward)
