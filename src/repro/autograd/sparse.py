"""Sparse-dense products for graph propagation.

Graph convolutions in the paper (Eq. 1-2 and 4-7) are mean-aggregations of
neighbor embeddings, which are exactly products of a row-normalized sparse
adjacency matrix with a dense embedding matrix.  The adjacency matrix is a
constant of the training data, so only the dense operand needs gradients.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .tensor import Tensor, as_tensor

__all__ = ["sparse_matmul", "row_normalize", "to_csr", "cache_transpose"]

#: Attribute under which a propagation matrix memoizes its CSR transpose.
_TRANSPOSE_CACHE_ATTR = "_repro_transpose_csr"


def cache_transpose(matrix: sp.spmatrix) -> sp.csr_matrix:
    """Precompute (and memoize on ``matrix``) the CSR form of ``matrix.T``.

    ``csr.T`` is a free CSC view, but multiplying a CSC matrix with a dense
    block walks columns — re-converting to CSR once per *propagation matrix*
    instead of per backward call keeps the backward product on the fast
    row-major kernel.  The cached transpose accumulates per output row in
    ascending column order, exactly like the CSC product it replaces, so
    gradients are unchanged bit for bit.
    """
    cached = getattr(matrix, _TRANSPOSE_CACHE_ATTR, None)
    if cached is None:
        cached = matrix.T.tocsr()
        try:
            setattr(matrix, _TRANSPOSE_CACHE_ATTR, cached)
        except AttributeError:  # exotic sparse types without instance dicts
            pass
    return cached


def to_csr(matrix) -> sp.csr_matrix:
    """Coerce any scipy sparse / dense matrix into CSR format."""
    if sp.issparse(matrix):
        return matrix.tocsr()
    return sp.csr_matrix(np.asarray(matrix, dtype=np.float64))


def row_normalize(matrix) -> sp.csr_matrix:
    """Return the row-stochastic version of ``matrix`` (zero rows stay zero).

    This implements the ``1/|N(v)|`` mean-aggregation weighting used in the
    in-view and cross-view propagation rules.
    """
    csr = to_csr(matrix).astype(np.float64)
    row_sums = np.asarray(csr.sum(axis=1)).flatten()
    inverse = np.zeros_like(row_sums)
    nonzero = row_sums != 0
    inverse[nonzero] = 1.0 / row_sums[nonzero]
    scaling = sp.diags(inverse)
    return (scaling @ csr).tocsr()


def sparse_matmul(matrix: sp.spmatrix, dense: Tensor) -> Tensor:
    """Differentiable product ``matrix @ dense`` with a constant sparse matrix.

    The backward needs ``matrix.T @ grad``; the CSR transpose is resolved
    through :func:`cache_transpose`, so graph layers that reuse one
    propagation matrix across every batch (in-view / cross-view propagation,
    the social averaging matrix) pay the transpose conversion exactly once.
    """
    if not sp.issparse(matrix):
        raise TypeError("sparse_matmul expects a scipy sparse matrix as the left operand")
    dense = as_tensor(dense)
    csr = matrix.tocsr()
    out_data = csr @ dense.data

    def backward(grad: np.ndarray) -> None:
        if dense.requires_grad:
            dense._accumulate(cache_transpose(matrix) @ grad)

    return Tensor._make(np.asarray(out_data), (dense,), backward)
