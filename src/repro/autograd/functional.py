"""Differentiable functional operations built on :class:`~repro.autograd.Tensor`.

These are the building blocks that the neural-network layers in
:mod:`repro.nn` and the models in :mod:`repro.models` / :mod:`repro.core`
compose: activations, numerically stable log-sigmoid (the backbone of the
BPR and double-pairwise losses), concatenation, stacking, segment
aggregations for ragged neighborhoods, and dropout.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from .sparse_grad import RowSparseGrad, sparse_grads_enabled
from .tensor import Tensor, as_tensor, is_grad_enabled

__all__ = [
    "sigmoid",
    "log_sigmoid",
    "softplus",
    "relu",
    "leaky_relu",
    "tanh",
    "identity",
    "softmax",
    "concat",
    "stack",
    "dropout",
    "embedding_lookup",
    "gathered_dot_difference",
    "segment_sum",
    "segment_mean",
    "l2_norm_squared",
    "cosine_similarity",
    "ACTIVATIONS",
]


def _stable_sigmoid(values: np.ndarray) -> np.ndarray:
    """Overflow-safe sigmoid evaluated with a single ``exp`` pass.

    For ``c = clip(x, -60, 60)``: the positive branch ``1 / (1 + exp(-c))``
    and the negative branch ``exp(c) / (1 + exp(c))`` both only evaluate
    ``exp`` at ``-|c| = -min(|x|, 60)``, so one ``exp`` feeds both branches
    with bit-for-bit the same results as computing them separately.  The
    chain reuses one scratch array and writes the negative branch with a
    masked divide — this is the hottest elementwise kernel in cross-view
    propagation, called on full embedding tables every batch.
    """
    magnitude = np.abs(values)
    np.minimum(magnitude, 60.0, out=magnitude)
    np.negative(magnitude, out=magnitude)
    decay = np.exp(magnitude, out=magnitude)
    denominator = decay + 1.0
    return np.where(values >= 0, 1.0 / denominator, decay / denominator)


def sigmoid(x: Tensor) -> Tensor:
    """Numerically stable logistic sigmoid."""
    x = as_tensor(x)
    out_data = _stable_sigmoid(x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * out_data * (1.0 - out_data))

    return Tensor._make(out_data, (x,), backward)


def log_sigmoid(x: Tensor) -> Tensor:
    """``log(sigmoid(x))`` computed without overflow for large ``|x|``."""
    x = as_tensor(x)
    # log sigmoid(x) = -softplus(-x) = min(x, 0) - log(1 + exp(-|x|))
    out_data = np.minimum(x.data, 0.0) - np.log1p(np.exp(-np.abs(x.data)))

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            sig = _stable_sigmoid(x.data)
            x._accumulate(grad * (1.0 - sig))

    return Tensor._make(out_data, (x,), backward)


def softplus(x: Tensor) -> Tensor:
    """``log(1 + exp(x))`` with the usual overflow-safe formulation."""
    x = as_tensor(x)
    out_data = np.maximum(x.data, 0.0) + np.log1p(np.exp(-np.abs(x.data)))

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            sig = 1.0 / (1.0 + np.exp(-np.clip(x.data, -60, 60)))
            x._accumulate(grad * sig)

    return Tensor._make(out_data, (x,), backward)


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    x = as_tensor(x)
    out_data = np.maximum(x.data, 0.0)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * (x.data > 0))

    return Tensor._make(out_data, (x,), backward)


def leaky_relu(x: Tensor, negative_slope: float = 0.2) -> Tensor:
    """Leaky rectified linear unit (default slope matches NGCF/GBGCN usage)."""
    x = as_tensor(x)
    out_data = np.where(x.data > 0, x.data, negative_slope * x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * np.where(x.data > 0, 1.0, negative_slope))

    return Tensor._make(out_data, (x,), backward)


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    x = as_tensor(x)
    out_data = np.tanh(x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * (1.0 - out_data ** 2))

    return Tensor._make(out_data, (x,), backward)


def identity(x: Tensor) -> Tensor:
    """Identity activation (useful as a configurable default)."""
    return as_tensor(x)


ACTIVATIONS = {
    "sigmoid": sigmoid,
    "relu": relu,
    "leaky_relu": leaky_relu,
    "tanh": tanh,
    "identity": identity,
}


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis`` (used by the attention baselines)."""
    x = as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out_data = exp / exp.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            dot = (grad * out_data).sum(axis=axis, keepdims=True)
            x._accumulate(out_data * (grad - dot))

    return Tensor._make(out_data, (x,), backward)


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` (the ``·||·`` operator in the paper)."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(slicer)])

    return Tensor._make(out_data, tensors, backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        slices = np.split(grad, len(tensors), axis=axis)
        for tensor, piece in zip(tensors, slices):
            if tensor.requires_grad:
                tensor._accumulate(np.squeeze(piece, axis=axis))

    return Tensor._make(out_data, tensors, backward)


def dropout(x: Tensor, rate: float, rng: Optional[np.random.Generator] = None, training: bool = True) -> Tensor:
    """Inverted dropout; a no-op when ``training`` is False or ``rate`` is 0."""
    x = as_tensor(x)
    if not training or rate <= 0.0:
        return x
    if rate >= 1.0:
        raise ValueError("dropout rate must be < 1")
    rng = rng or np.random.default_rng()
    mask = (rng.random(x.shape) >= rate) / (1.0 - rate)
    out_data = x.data * mask

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * mask)

    return Tensor._make(out_data, (x,), backward)


def embedding_lookup(table: Tensor, indices: np.ndarray) -> Tensor:
    """Gather rows ``indices`` from ``table`` with scatter-add gradients.

    With the row-sparse engine enabled (the default) the backward emits a
    :class:`~repro.autograd.sparse_grad.RowSparseGrad` — unique touched rows
    plus per-row value blocks, reduced with a sorted segment sum — instead
    of allocating a dense ``zeros_like(table)`` and ``np.add.at``-scattering
    into it.  Both paths produce bitwise-identical dense gradients.
    """
    table = as_tensor(table)
    indices = np.asarray(indices, dtype=np.int64)
    out_data = table.data[indices]

    def backward(grad: np.ndarray) -> None:
        if not table.requires_grad:
            return
        if sparse_grads_enabled():
            table._accumulate(RowSparseGrad.from_scatter(table.data.shape, indices, grad))
        else:
            full = np.zeros_like(table.data)
            np.add.at(full, indices, grad)
            table._accumulate(full)

    return Tensor._make(out_data, (table,), backward)


def gathered_dot_difference(
    a: Tensor,
    b: Tensor,
    shared_rows: np.ndarray,
    positive_rows: np.ndarray,
    negative_rows: np.ndarray,
) -> Tensor:
    """``<a[shared], b[positive]> - <a[shared], b[negative]>`` per row, fused.

    This is the pairwise-ranking primitive: ``a`` rows are gathered *once*
    and shared by the positive and the negative dot, the per-row products
    are reduced with ``einsum`` without materializing them in the graph,
    and the backward emits exactly one scatter into ``a`` (with the
    ``b[positive] - b[negative]`` difference as values) and one combined
    ``±`` scatter into ``b``.  Compared with composing gather / multiply /
    sum / subtract tensors, each table sees one coalesce per batch instead
    of one per term, and none of the ``(rows, dim)`` intermediates enter
    the autograd graph.
    """
    a = as_tensor(a)
    b = as_tensor(b)
    shared_rows = np.asarray(shared_rows, dtype=np.int64)
    positive_rows = np.asarray(positive_rows, dtype=np.int64)
    negative_rows = np.asarray(negative_rows, dtype=np.int64)
    gathered_a = a.data[shared_rows]
    gathered_pos = b.data[positive_rows]
    gathered_neg = b.data[negative_rows]
    out_data = np.einsum("ij,ij->i", gathered_a, gathered_pos) - np.einsum(
        "ij,ij->i", gathered_a, gathered_neg
    )

    def _scatter(tensor: Tensor, rows: np.ndarray, contributions: np.ndarray) -> None:
        if sparse_grads_enabled():
            tensor._accumulate(RowSparseGrad.from_scatter(tensor.data.shape, rows, contributions))
        else:
            full = np.zeros_like(tensor.data)
            np.add.at(full, rows, contributions)
            tensor._accumulate(full)

    def backward(grad: np.ndarray) -> None:
        column_grad = grad[:, None]
        if a.requires_grad:
            _scatter(a, shared_rows, column_grad * (gathered_pos - gathered_neg))
        if b.requires_grad:
            positive_contribution = column_grad * gathered_a
            _scatter(
                b,
                np.concatenate((positive_rows, negative_rows)),
                np.concatenate((positive_contribution, -positive_contribution)),
            )

    return Tensor._make(out_data, (a, b), backward)


def segment_sum(values: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Sum rows of ``values`` into ``num_segments`` buckets given by ``segment_ids``.

    This is the ragged-aggregation primitive used to average a variable
    number of friends / participants per behavior without padding.
    """
    values = as_tensor(values)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    if segment_ids.shape[0] != values.shape[0]:
        raise ValueError("segment_ids must have one entry per row of values")
    out_shape = (num_segments,) + values.shape[1:]
    out_data = np.zeros(out_shape, dtype=np.float64)
    np.add.at(out_data, segment_ids, values.data)

    def backward(grad: np.ndarray) -> None:
        if values.requires_grad:
            values._accumulate(grad[segment_ids])

    return Tensor._make(out_data, (values,), backward)


def segment_mean(values: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Mean-aggregate rows per segment; empty segments yield zero vectors."""
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    sums = segment_sum(values, segment_ids, num_segments)
    counts = np.bincount(segment_ids, minlength=num_segments).astype(np.float64)
    counts = np.maximum(counts, 1.0).reshape((num_segments,) + (1,) * (sums.ndim - 1))
    return sums * (1.0 / counts)


def l2_norm_squared(tensors: Iterable[Tensor]) -> Tensor:
    """Sum of squared entries over a collection of tensors (L2 regularizer)."""
    total: Optional[Tensor] = None
    for tensor in tensors:
        term = (as_tensor(tensor) ** 2).sum()
        total = term if total is None else total + term
    if total is None:
        return Tensor(0.0)
    return total


def cosine_similarity(a: np.ndarray, b: np.ndarray, axis: int = -1, eps: float = 1e-12) -> np.ndarray:
    """Plain NumPy cosine similarity (used by the embedding analysis)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    num = (a * b).sum(axis=axis)
    den = np.linalg.norm(a, axis=axis) * np.linalg.norm(b, axis=axis)
    return num / np.maximum(den, eps)
