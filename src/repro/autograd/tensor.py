"""Reverse-mode automatic differentiation over NumPy arrays.

The :class:`Tensor` class is the foundation of the whole reproduction: the
paper's models were written in PyTorch, which is unavailable offline, so this
module provides the minimal-but-complete differentiation substrate required
to train embedding / MLP / graph-convolution recommenders.

Design notes
------------
* A ``Tensor`` wraps a ``numpy.ndarray`` and, when ``requires_grad`` is set,
  records the operation that produced it (a closure stored in
  ``_backward``) together with its parent tensors.
* ``Tensor.backward()`` performs a topological sort of the recorded graph and
  accumulates gradients into ``Tensor.grad``.  A gradient is usually a plain
  ``numpy.ndarray``; integer-array row gathers (``Tensor.__getitem__`` and
  :func:`~repro.autograd.functional.embedding_lookup`) emit a
  :class:`~repro.autograd.sparse_grad.RowSparseGrad` instead when the
  row-sparse engine is enabled, so a mini-batch never pays a full-table
  scatter.  Interior nodes densify their gradient right before their own
  backward runs; only *leaves* (parameters, inputs) can end up holding the
  sparse representation, which the optimizers consume directly.
* Broadcasting is supported for elementwise arithmetic; gradients are
  "unbroadcast" (summed over broadcast axes) before accumulation.
* Gradient tracking can be suspended with the :func:`no_grad` context
  manager, which the evaluation code uses to keep scoring cheap.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from .sparse_grad import RowSparseGrad, sparse_grads_enabled

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "as_tensor"]


_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph recording inside its block."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd graph."""
    return _GRAD_ENABLED


ArrayLike = Union["Tensor", np.ndarray, float, int, Sequence]


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it matches ``shape`` after broadcasting.

    NumPy broadcasting may have expanded a parent of shape ``shape`` up to
    the shape of ``grad``; summing over the broadcast axes recovers the
    gradient with respect to the original parent.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over axes that were size 1 in the original shape.
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy-backed tensor with reverse-mode automatic differentiation."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name", "_grad_owned")

    #: Leaves that outlive the backward pass (parameters) copy their first
    #: dense gradient so later in-place updates (clipping, accumulation)
    #: can never write through an aliased interior buffer.  Interior nodes
    #: skip that copy — their gradients are only read, once, by their own
    #: backward closure.
    _copy_first_grad = False

    #: Parameters keep accumulating sparse gradients in the sparse
    #: representation (the optimizers consume it row-sliced).  Interior
    #: nodes are densified by their own backward anyway, so on a second
    #: sparse contribution they densify immediately — in-place row adds
    #: into an owned dense buffer are much cheaper than repeated
    #: sparse-sparse coalescing.
    _keep_sparse_grad = False

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        name: Optional[str] = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: Optional[Union[np.ndarray, RowSparseGrad]] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self.name = name
        self._grad_owned = False

    # ------------------------------------------------------------------
    # Basic introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        """Return a detached copy of the tensor's data."""
        return Tensor(self.data.copy(), requires_grad=False)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None
        self._grad_owned = False

    def dense_grad(self) -> Optional[np.ndarray]:
        """The accumulated gradient as a dense array (``None`` if absent)."""
        if isinstance(self.grad, RowSparseGrad):
            return self.grad.to_dense()
        return self.grad

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Iterable["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create a result tensor, wiring it into the graph if needed."""
        parents = tuple(parents)
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(p for p in parents if p.requires_grad)
            out._backward = backward
        return out

    def _accumulate(self, grad: Union[np.ndarray, RowSparseGrad]) -> None:
        # Sparse incoming gradient (row gathers).  Freshly coalesced by the
        # emitting op, so it is always safe to own.
        if isinstance(grad, RowSparseGrad):
            if self.grad is None:
                self.grad = grad
            elif isinstance(self.grad, RowSparseGrad):
                if self._keep_sparse_grad:
                    self.grad = self.grad.add_(grad)
                else:
                    dense = self.grad.to_dense()
                    grad.add_to_dense_(dense)
                    self.grad = dense
            else:
                if not self._grad_owned:
                    self.grad = self.grad.copy()
                grad.add_to_dense_(self.grad)
            self._grad_owned = True
            return

        grad = np.asarray(grad, dtype=np.float64)
        if self.grad is None:
            # Interior nodes store the incoming buffer by reference (it is
            # only ever read); long-lived leaves copy, see _copy_first_grad.
            if self._copy_first_grad:
                self.grad = grad.copy()
                self._grad_owned = True
            else:
                self.grad = grad
                self._grad_owned = False
        elif isinstance(self.grad, RowSparseGrad):
            dense = self.grad.to_dense()
            dense += grad
            self.grad = dense
            self._grad_owned = True
        elif self._grad_owned:
            self.grad += grad
        else:
            self.grad = self.grad + grad
            self._grad_owned = True

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        ordering: List[Tensor] = []
        visited = set()

        def visit(node: "Tensor") -> None:
            stack = [(node, False)]
            while stack:
                current, processed = stack.pop()
                if processed:
                    ordering.append(current)
                    continue
                if id(current) in visited:
                    continue
                visited.add(id(current))
                stack.append((current, True))
                for parent in current._parents:
                    if id(parent) not in visited:
                        stack.append((parent, False))

        visit(self)
        self._accumulate(grad)
        for node in reversed(ordering):
            if node._backward is not None and node.grad is not None:
                node_grad = node.grad
                if isinstance(node_grad, RowSparseGrad):
                    # Interior consumers (matmul, concat, ...) need a dense
                    # array; a single densify here replaces one full-table
                    # zeros + add.at per contributing gather.
                    node_grad = node_grad.to_dense()
                    node.grad = node_grad
                    node._grad_owned = True
                node._backward(node_grad)

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data ** 2), other.shape)
                )

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Unary math
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * np.sign(self.data))

        return Tensor._make(out_data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        out_data = np.clip(self.data, low, high)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                mask = (self.data >= low) & (self.data <= high)
                self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            expanded = grad
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                axes = tuple(a % self.data.ndim for a in axes)
                for a in sorted(axes):
                    expanded = np.expand_dims(expanded, a)
            # The broadcast view is read-only and _accumulate never mutates
            # an unowned buffer, so no defensive copy is needed.
            self._accumulate(np.broadcast_to(expanded, self.shape))

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.data.shape[a % self.data.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            expanded = grad
            reference = out_data
            if axis is not None and not keepdims:
                expanded = np.expand_dims(expanded, axis)
                reference = np.expand_dims(reference, axis)
            mask = (self.data == reference).astype(np.float64)
            # Split gradient across ties to keep the sum of gradients correct.
            normalizer = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(expanded * mask / normalizer)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original_shape = self.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original_shape))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, axes: Optional[Tuple[int, ...]] = None) -> "Tensor":
        out_data = self.data.transpose(axes)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            if axes is None:
                self._accumulate(grad.transpose())
            else:
                inverse = np.argsort(axes)
                self._accumulate(grad.transpose(inverse))

        return Tensor._make(out_data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]
        original_shape = self.shape
        # Row gathers (integer-array / scalar indices along axis 0) can emit
        # a row-sparse gradient; any other indexing falls back to the dense
        # scatter, which stays the oracle path.
        row_gather = self.data.ndim >= 1 and (
            isinstance(index, (int, np.integer))
            or (isinstance(index, np.ndarray) and index.dtype.kind in "iu")
        )

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            if row_gather and sparse_grads_enabled():
                self._accumulate(RowSparseGrad.from_scatter(original_shape, index, grad))
            else:
                full = np.zeros(original_shape, dtype=np.float64)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Linear algebra
    # ------------------------------------------------------------------
    def matmul(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(np.outer(grad, other.data).reshape(self.shape))
                else:
                    self._accumulate(grad @ other.data.T)
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(np.outer(self.data, grad).reshape(other.shape))
                else:
                    other._accumulate(self.data.T @ grad)

        return Tensor._make(out_data, (self, other), backward)

    __matmul__ = matmul

    def dot(self, other: ArrayLike) -> "Tensor":
        """Row-wise dot product of two matrices of identical shape."""
        other = as_tensor(other)
        return (self * other).sum(axis=-1)

    # Comparison helpers (no gradients, plain arrays).
    def __gt__(self, other: ArrayLike) -> np.ndarray:
        return self.data > as_tensor(other).data

    def __lt__(self, other: ArrayLike) -> np.ndarray:
        return self.data < as_tensor(other).data


def as_tensor(value: ArrayLike) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` without copying when possible."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)
