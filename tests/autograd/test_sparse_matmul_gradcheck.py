"""Gradient checks for ``sparse_matmul`` (CSR transpose-backward) and
property tests for ``_unbroadcast``, on random shapes.

``sparse_matmul`` backpropagates through the dense operand with
``csr.T @ grad``; :func:`repro.autograd.gradcheck.check_gradients` verifies
that analytic rule against central finite differences for a spread of
random shapes, densities and sparse formats.  ``_unbroadcast`` is the
gradient-reduction helper every broadcasting op relies on; its defining
property is that it sums the upstream gradient over exactly the broadcast
axes.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.autograd import Tensor, check_gradients, sparse_matmul
from repro.autograd.gradcheck import GradientCheckError
from repro.autograd.tensor import _unbroadcast


class TestSparseMatmulGradcheck:
    @pytest.mark.parametrize(
        "rows,cols,features,density,seed",
        [
            (5, 4, 3, 0.5, 0),
            (8, 8, 1, 0.25, 1),
            (3, 11, 6, 0.7, 2),
            (12, 2, 4, 0.9, 3),
            (6, 7, 5, 0.1, 4),
        ],
    )
    def test_dense_gradient_matches_finite_differences(self, rows, cols, features, density, seed):
        rng = np.random.default_rng(seed)
        matrix = sp.random(rows, cols, density=density, random_state=seed, format="csr")
        dense = Tensor(rng.normal(size=(cols, features)), requires_grad=True)
        weights = rng.normal(size=(rows, features))

        def loss():
            return (sparse_matmul(matrix, dense) * weights).sum()

        check_gradients(loss, {"dense": dense})

    def test_transpose_backward_formula(self):
        # The analytic backward is grad_dense = csr.T @ grad_out; check it
        # explicitly against the dense computation.
        rng = np.random.default_rng(7)
        matrix = sp.random(6, 5, density=0.4, random_state=7, format="csr")
        dense = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        upstream = rng.normal(size=(6, 3))

        out = sparse_matmul(matrix, dense)
        out.backward(upstream)
        expected = matrix.toarray().T @ upstream
        np.testing.assert_allclose(dense.grad, expected, rtol=1e-12, atol=1e-12)

    def test_gradient_matches_dense_matmul_gradient(self):
        rng = np.random.default_rng(11)
        matrix = sp.random(9, 6, density=0.3, random_state=11, format="csr")
        data = rng.normal(size=(6, 4))
        upstream = rng.normal(size=(9, 4))

        sparse_operand = Tensor(data.copy(), requires_grad=True)
        sparse_matmul(matrix, sparse_operand).backward(upstream)

        dense_operand = Tensor(data.copy(), requires_grad=True)
        (Tensor(matrix.toarray()) @ dense_operand).backward(upstream)

        np.testing.assert_allclose(sparse_operand.grad, dense_operand.grad, rtol=1e-12, atol=1e-12)

    def test_accepts_non_csr_sparse_formats(self):
        rng = np.random.default_rng(5)
        matrix = sp.random(4, 3, density=0.6, random_state=5, format="coo")
        dense = Tensor(rng.normal(size=(3, 2)), requires_grad=True)

        def loss():
            return sparse_matmul(matrix, dense).sum()

        check_gradients(loss, {"dense": dense})

    def test_rejects_dense_left_operand(self):
        with pytest.raises(TypeError):
            sparse_matmul(np.eye(3), Tensor(np.ones((3, 2))))

    def test_gradcheck_catches_wrong_gradient(self):
        # Sanity check that the checker itself has teeth: a deliberately
        # broken backward must be flagged.
        rng = np.random.default_rng(9)
        matrix = sp.random(4, 4, density=0.5, random_state=9, format="csr")
        dense = Tensor(rng.normal(size=(4, 2)), requires_grad=True)

        def broken():
            out = sparse_matmul(matrix, dense)
            wrong = Tensor._make(
                out.data.copy(), (dense,), lambda grad: dense._accumulate(2.0 * (matrix.T @ grad))
            )
            return wrong.sum()

        with pytest.raises(GradientCheckError):
            check_gradients(broken, {"dense": dense})


class TestUnbroadcast:
    @pytest.mark.parametrize(
        "source_shape,broadcast_shape",
        [
            ((1,), (5,)),
            ((3,), (2, 3)),
            ((1, 4), (3, 4)),
            ((2, 1), (2, 6)),
            ((1, 1), (4, 5)),
            ((2, 3), (2, 3)),
            ((1, 3, 1), (2, 3, 4)),
            ((4, 1, 2), (3, 4, 5, 2)),
        ],
    )
    def test_sums_over_broadcast_axes(self, source_shape, broadcast_shape):
        rng = np.random.default_rng(int(np.prod(broadcast_shape)))
        grad = rng.normal(size=broadcast_shape)
        reduced = _unbroadcast(grad, source_shape)
        assert reduced.shape == source_shape

        # Reference: sum grad over the axes numpy broadcasting expanded.
        expected = grad
        extra = expected.ndim - len(source_shape)
        if extra:
            expected = expected.sum(axis=tuple(range(extra)))
        for axis, size in enumerate(source_shape):
            if size == 1 and expected.shape[axis] != 1:
                expected = expected.sum(axis=axis, keepdims=True)
        np.testing.assert_allclose(reduced, expected.reshape(source_shape))

    def test_identity_when_shapes_match(self):
        grad = np.arange(12.0).reshape(3, 4)
        assert _unbroadcast(grad, (3, 4)) is grad

    def test_total_mass_preserved(self):
        # Summing over broadcast axes must preserve the total gradient mass.
        rng = np.random.default_rng(0)
        grad = rng.normal(size=(4, 3, 5))
        reduced = _unbroadcast(grad, (3, 1))
        assert reduced.shape == (3, 1)
        assert np.isclose(reduced.sum(), grad.sum())

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_finite_differences_through_add(self, seed):
        # End-to-end: a broadcast add uses _unbroadcast in its backward;
        # gradcheck on random broadcastable shapes exercises it.
        rng = np.random.default_rng(seed)
        rows = int(rng.integers(2, 5))
        cols = int(rng.integers(2, 5))
        left = Tensor(rng.normal(size=(rows, cols)), requires_grad=True)
        right = Tensor(rng.normal(size=(1, cols)), requires_grad=True)
        weights = rng.normal(size=(rows, cols))

        def loss():
            return ((left + right) * weights).sum()

        check_gradients(loss, {"left": left, "right": right})
