"""RowSparseGrad: coalescing, merging, accumulation and bitwise parity.

The contract under test everywhere: with sparse gradients enabled, every
densified gradient is ``np.array_equal`` to what the dense oracle path
(``zeros`` + ``np.add.at`` + dense accumulation) produces.
"""

import numpy as np
import pytest

from repro.autograd import (
    RowSparseGrad,
    Tensor,
    embedding_lookup,
    grad_to_dense,
    sparse_grads_enabled,
    use_dense_grads,
    use_sparse_grads,
)
from repro.autograd.sparse_grad import coalesce_rows
from repro.nn.module import Parameter


def dense_scatter(shape, indices, values):
    full = np.zeros(shape)
    np.add.at(full, indices, values)
    return full


class TestCoalesceRows:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_add_at_bitwise(self, seed):
        rng = np.random.default_rng(seed)
        indices = rng.integers(0, 37, size=400)
        values = rng.normal(size=(400, 9))
        unique, reduced = coalesce_rows(indices, values)
        assert np.all(unique[1:] > unique[:-1])  # sorted, strictly unique
        full = dense_scatter((37, 9), indices, values)
        rebuilt = np.zeros((37, 9))
        rebuilt[unique] = reduced
        assert (full == rebuilt).all()

    def test_all_unique_fast_path(self):
        indices = np.array([5, 1, 9])
        values = np.arange(6.0).reshape(3, 2)
        unique, reduced = coalesce_rows(indices, values)
        assert unique.tolist() == [1, 5, 9]
        assert np.array_equal(reduced, values[[1, 0, 2]])
        # The result must be freshly owned, not a view of the input.
        reduced[0, 0] = 123.0
        assert values[1, 0] == 2.0

    def test_empty(self):
        unique, reduced = coalesce_rows(np.array([], dtype=np.int64), np.zeros((0, 4)))
        assert unique.size == 0 and reduced.shape == (0, 4)

    def test_one_dimensional_blocks(self):
        indices = np.array([2, 2, 0])
        values = np.array([1.0, 2.0, 5.0])
        unique, reduced = coalesce_rows(indices, values)
        assert unique.tolist() == [0, 2]
        assert reduced.tolist() == [5.0, 3.0]


class TestRowSparseGrad:
    def test_from_scatter_normalizes_negative_and_multidim_indices(self):
        values = np.ones((2, 2, 3))
        grad = RowSparseGrad.from_scatter((5, 3), np.array([[-1, 0], [0, -1]]), values)
        assert grad.indices.tolist() == [0, 4]
        assert np.array_equal(grad.to_dense(), dense_scatter((5, 3), [4, 0, 0, 4], np.ones((4, 3))))

    def test_merge_matches_dense_sum_bitwise(self):
        rng = np.random.default_rng(7)
        a_idx = rng.integers(0, 20, size=50)
        b_idx = rng.integers(0, 20, size=30)
        a_vals = rng.normal(size=(50, 4))
        b_vals = rng.normal(size=(30, 4))
        merged = RowSparseGrad.from_scatter((20, 4), a_idx, a_vals).add_(
            RowSparseGrad.from_scatter((20, 4), b_idx, b_vals)
        )
        oracle = dense_scatter((20, 4), a_idx, a_vals) + dense_scatter((20, 4), b_idx, b_vals)
        assert (merged.to_dense() == oracle).all()

    def test_add_to_dense_in_place(self):
        grad = RowSparseGrad.from_scatter((4, 2), np.array([1, 3]), np.ones((2, 2)))
        dense = np.full((4, 2), 2.0)
        out = grad.add_to_dense_(dense)
        assert out is dense
        assert dense[1].tolist() == [3.0, 3.0] and dense[0].tolist() == [2.0, 2.0]

    def test_scale_and_numpy_interop(self):
        grad = RowSparseGrad.from_scatter((3, 2), np.array([2]), np.array([[1.0, -2.0]]))
        grad.scale_(0.5)
        assert np.allclose(grad, [[0, 0], [0, 0], [0.5, -1.0]])  # __array__
        doubled = grad * 2.0
        assert doubled.values.tolist() == [[1.0, -2.0]]
        assert grad.nnz_rows == 1 and grad.density == pytest.approx(1 / 3)

    def test_empty_scatter(self):
        grad = RowSparseGrad.from_scatter((6, 2), np.array([], dtype=np.int64), np.zeros((0, 2)))
        assert grad.nnz_rows == 0
        assert np.array_equal(grad.to_dense(), np.zeros((6, 2)))


class TestEngineToggle:
    def test_context_managers_restore_state(self):
        assert sparse_grads_enabled()
        with use_dense_grads():
            assert not sparse_grads_enabled()
            with use_sparse_grads():
                assert sparse_grads_enabled()
            assert not sparse_grads_enabled()
        assert sparse_grads_enabled()


class TestAccumulationSemantics:
    def test_parameter_keeps_sparse_representation(self):
        table = Parameter(np.random.default_rng(0).normal(size=(10, 4)))
        out = embedding_lookup(table, np.array([1, 1, 3]))
        other = embedding_lookup(table, np.array([5]))
        (out.sum() + other.sum()).backward()
        assert isinstance(table.grad, RowSparseGrad)
        assert table.grad.indices.tolist() == [1, 3, 5]

    def test_interior_node_densifies_on_second_contribution(self):
        base = Tensor(np.random.default_rng(0).normal(size=(10, 4)), requires_grad=True)
        interior = base * 1.0
        first = embedding_lookup(interior, np.array([1, 2]))
        second = embedding_lookup(interior, np.array([2, 7]))
        (first.sum() + second.sum()).backward()
        # Interior node's grad was consumed dense; the leaf behind it too.
        assert isinstance(base.grad, np.ndarray)
        expected = np.zeros((10, 4))
        expected[[1, 2, 7]] = 1.0
        expected[2] = 2.0
        assert np.array_equal(base.grad, expected)

    def test_dense_plus_sparse_accumulation(self):
        table = Parameter(np.ones((6, 3)))
        dense_path = table * 2.0  # contributes a dense gradient
        sparse_path = embedding_lookup(table, np.array([0, 0, 4]))
        (dense_path.sum() + (sparse_path * 3.0).sum()).backward()
        expected = np.full((6, 3), 2.0)
        expected[0] += 6.0
        expected[4] += 3.0
        assert np.array_equal(grad_to_dense(table.grad), expected)

    def test_lookup_parity_with_dense_oracle(self):
        rng = np.random.default_rng(11)
        for _ in range(5):
            idx = rng.integers(0, 30, size=100)
            weights = rng.normal(size=(100, 5))
            sparse_table = Parameter(rng.normal(size=(30, 5)))
            dense_table = Parameter(sparse_table.data.copy())
            (embedding_lookup(sparse_table, idx) * weights).sum().backward()
            with use_dense_grads():
                (embedding_lookup(dense_table, idx) * weights).sum().backward()
            assert isinstance(sparse_table.grad, RowSparseGrad)
            assert np.array_equal(sparse_table.grad.to_dense(), dense_table.grad)

    def test_getitem_fallbacks_stay_dense(self):
        t = Tensor(np.arange(12.0).reshape(4, 3), requires_grad=True)
        t[1:3].sum().backward()  # slice index -> dense scatter
        assert isinstance(t.grad, np.ndarray)
        t2 = Tensor(np.arange(12.0).reshape(4, 3), requires_grad=True)
        t2[np.array([True, False, True, False])].sum().backward()  # bool mask
        assert isinstance(t2.grad, np.ndarray)

    def test_second_backward_accumulates(self):
        table = Parameter(np.ones((5, 2)))
        for _ in range(2):
            embedding_lookup(table, np.array([3])).sum().backward()
        assert grad_to_dense(table.grad)[3].tolist() == [2.0, 2.0]
