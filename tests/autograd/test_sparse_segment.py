"""Sparse propagation kernels, segment aggregation and embedding lookup."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.autograd import (
    Tensor,
    check_gradients,
    embedding_lookup,
    row_normalize,
    segment_mean,
    segment_sum,
    sparse_matmul,
    to_csr,
    cosine_similarity,
)


def make(shape, seed=0):
    return Tensor(np.random.default_rng(seed).normal(size=shape), requires_grad=True)


class TestRowNormalize:
    def test_rows_sum_to_one(self):
        matrix = sp.random(10, 8, density=0.4, random_state=0, format="csr")
        matrix.data[:] = 1.0
        normalized = row_normalize(matrix)
        sums = np.asarray(normalized.sum(axis=1)).flatten()
        nonzero = np.asarray(matrix.sum(axis=1)).flatten() > 0
        assert np.allclose(sums[nonzero], 1.0)

    def test_zero_rows_stay_zero(self):
        matrix = sp.csr_matrix(np.array([[1.0, 1.0], [0.0, 0.0]]))
        normalized = row_normalize(matrix)
        assert np.allclose(normalized.toarray()[1], 0.0)

    def test_accepts_dense_input(self):
        dense = np.array([[2.0, 2.0], [1.0, 0.0]])
        normalized = row_normalize(dense)
        assert np.allclose(normalized.toarray(), [[0.5, 0.5], [1.0, 0.0]])

    def test_to_csr_roundtrip(self):
        dense = np.eye(3)
        assert isinstance(to_csr(dense), sp.csr_matrix)
        assert isinstance(to_csr(sp.coo_matrix(dense)), sp.csr_matrix)


class TestSparseMatmul:
    def test_matches_dense_product(self):
        matrix = sp.random(6, 5, density=0.5, random_state=1, format="csr")
        x = make((5, 3), 2)
        out = sparse_matmul(matrix, x)
        assert np.allclose(out.data, matrix.toarray() @ x.data)

    def test_gradients(self):
        matrix = sp.random(7, 4, density=0.6, random_state=3, format="csr")
        x = make((4, 2), 4)
        check_gradients(lambda: (sparse_matmul(matrix, x) ** 2).sum(), {"x": x})

    def test_rejects_dense_left_operand(self):
        with pytest.raises(TypeError):
            sparse_matmul(np.eye(3), make((3, 2), 5))


class TestEmbeddingLookup:
    def test_values(self):
        table = make((6, 4), 10)
        indices = np.array([0, 5, 2])
        assert np.allclose(embedding_lookup(table, indices).data, table.data[indices])

    def test_gradients_with_repeats(self):
        table = make((5, 3), 11)
        indices = np.array([1, 1, 4, 0])
        check_gradients(lambda: (embedding_lookup(table, indices) ** 2).sum(), {"table": table})

    def test_repeated_rows_accumulate(self):
        table = Tensor(np.zeros((3, 2)), requires_grad=True)
        embedding_lookup(table, np.array([2, 2])).sum().backward()
        assert np.allclose(table.grad, [[0, 0], [0, 0], [2, 2]])


class TestSegmentOps:
    def test_segment_sum_values(self):
        values = Tensor(np.arange(8, dtype=float).reshape(4, 2))
        segments = np.array([0, 0, 2, 2])
        out = segment_sum(values, segments, 3)
        assert np.allclose(out.data, [[2, 4], [0, 0], [10, 12]])

    def test_segment_sum_gradients(self):
        values = make((6, 3), 20)
        segments = np.array([0, 1, 1, 2, 2, 2])
        check_gradients(lambda: (segment_sum(values, segments, 4) ** 2).sum(), {"values": values})

    def test_segment_mean_values(self):
        values = Tensor(np.array([[2.0], [4.0], [6.0]]))
        segments = np.array([0, 0, 1])
        out = segment_mean(values, segments, 2)
        assert np.allclose(out.data, [[3.0], [6.0]])

    def test_segment_mean_empty_segment_is_zero(self):
        values = Tensor(np.array([[1.0]]))
        out = segment_mean(values, np.array([1]), 3)
        assert np.allclose(out.data, [[0.0], [1.0], [0.0]])

    def test_segment_sum_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            segment_sum(Tensor(np.ones((2, 2))), np.array([0]), 1)


class TestCosineSimilarity:
    def test_identical_vectors(self):
        a = np.random.default_rng(0).normal(size=(5, 3))
        assert np.allclose(cosine_similarity(a, a), 1.0)

    def test_orthogonal_vectors(self):
        a = np.array([[1.0, 0.0]])
        b = np.array([[0.0, 1.0]])
        assert np.allclose(cosine_similarity(a, b), 0.0)

    def test_opposite_vectors(self):
        a = np.array([[1.0, 2.0]])
        assert np.allclose(cosine_similarity(a, -a), -1.0)
