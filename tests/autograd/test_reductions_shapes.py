"""Reductions, reshaping, transposition and indexing gradients."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients


def make(shape, seed=0):
    return Tensor(np.random.default_rng(seed).normal(size=shape), requires_grad=True)


class TestReductions:
    def test_sum_all(self):
        a = make((3, 4), 1)
        check_gradients(lambda: a.sum(), {"a": a})

    def test_sum_axis0(self):
        a = make((3, 4), 2)
        check_gradients(lambda: (a.sum(axis=0) ** 2).sum(), {"a": a})

    def test_sum_axis1_keepdims(self):
        a = make((3, 4), 3)
        check_gradients(lambda: (a.sum(axis=1, keepdims=True) ** 2).sum(), {"a": a})

    def test_sum_negative_axis(self):
        a = make((2, 3), 4)
        assert a.sum(axis=-1).shape == (2,)

    def test_mean_all(self):
        a = make((4, 5), 5)
        assert np.isclose(a.mean().data, a.data.mean())
        check_gradients(lambda: a.mean(), {"a": a})

    def test_mean_axis(self):
        a = make((4, 5), 6)
        check_gradients(lambda: (a.mean(axis=1) ** 2).sum(), {"a": a})

    def test_max_all(self):
        a = make((6,), 7)
        assert np.isclose(a.max().data, a.data.max())

    def test_max_axis_gradient_flows_to_argmax(self):
        a = Tensor([[1.0, 5.0], [7.0, 2.0]], requires_grad=True)
        a.max(axis=1).sum().backward()
        assert np.allclose(a.grad, [[0.0, 1.0], [1.0, 0.0]])


class TestShapes:
    def test_reshape_values_and_gradients(self):
        a = make((2, 6), 10)
        reshaped = a.reshape(3, 4)
        assert reshaped.shape == (3, 4)
        check_gradients(lambda: (a.reshape(3, 4) ** 2).sum(), {"a": a})

    def test_reshape_with_tuple(self):
        a = make((4,), 11)
        assert a.reshape((2, 2)).shape == (2, 2)

    def test_reshape_minus_one(self):
        a = make((2, 3), 12)
        assert a.reshape(-1).shape == (6,)

    def test_transpose_default(self):
        a = make((2, 5), 13)
        assert a.T.shape == (5, 2)
        check_gradients(lambda: (a.T ** 2).sum(), {"a": a})

    def test_transpose_axes(self):
        a = make((2, 3, 4), 14)
        transposed = a.transpose((2, 0, 1))
        assert transposed.shape == (4, 2, 3)
        check_gradients(lambda: (a.transpose((2, 0, 1)) ** 2).sum(), {"a": a})


class TestIndexing:
    def test_row_indexing_values(self):
        a = make((5, 3), 20)
        assert np.allclose(a[2].data, a.data[2])

    def test_integer_array_indexing_gradients(self):
        a = make((5, 3), 21)
        index = np.array([0, 2, 2, 4])
        check_gradients(lambda: (a[index] ** 2).sum(), {"a": a})

    def test_repeated_index_gradient_accumulates(self):
        a = Tensor(np.ones((3, 2)), requires_grad=True)
        index = np.array([1, 1, 1])
        a[index].sum().backward()
        assert np.allclose(a.grad, [[0, 0], [3, 3], [0, 0]])

    def test_slice_indexing(self):
        a = make((6, 2), 22)
        check_gradients(lambda: (a[1:4] ** 2).sum(), {"a": a})

    def test_len_and_repr(self):
        a = make((7, 2), 23)
        assert len(a) == 7
        assert "requires_grad=True" in repr(a)
