"""Elementwise arithmetic, matmul and broadcasting gradients of Tensor."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients, GradientCheckError


def make(shape, seed=0, requires_grad=True):
    rng = np.random.default_rng(seed)
    return Tensor(rng.normal(size=shape), requires_grad=requires_grad)


class TestArithmetic:
    def test_add_values(self):
        a, b = Tensor([1.0, 2.0]), Tensor([3.0, 4.0])
        assert np.allclose((a + b).data, [4.0, 6.0])

    def test_add_gradients(self):
        a, b = make((3, 2), 1), make((3, 2), 2)
        check_gradients(lambda: (a + b).sum(), {"a": a, "b": b})

    def test_add_broadcast_gradients(self):
        a, b = make((3, 2), 1), make((2,), 2)
        check_gradients(lambda: (a + b).sum(), {"a": a, "b": b})

    def test_scalar_add(self):
        a = make((2, 2), 3)
        check_gradients(lambda: (a + 2.5).sum(), {"a": a})

    def test_sub_values(self):
        a, b = Tensor([5.0, 7.0]), Tensor([2.0, 3.0])
        assert np.allclose((a - b).data, [3.0, 4.0])

    def test_rsub(self):
        a = make((4,), 4)
        check_gradients(lambda: (1.0 - a).sum(), {"a": a})

    def test_neg_gradients(self):
        a = make((3,), 5)
        check_gradients(lambda: (-a).sum(), {"a": a})

    def test_mul_gradients(self):
        a, b = make((2, 3), 6), make((2, 3), 7)
        check_gradients(lambda: (a * b).sum(), {"a": a, "b": b})

    def test_mul_broadcast_gradients(self):
        a, b = make((2, 3), 6), make((1, 3), 7)
        check_gradients(lambda: (a * b).sum(), {"a": a, "b": b})

    def test_div_gradients(self):
        a = make((2, 3), 8)
        b = Tensor(np.random.default_rng(9).uniform(0.5, 2.0, size=(2, 3)), requires_grad=True)
        check_gradients(lambda: (a / b).sum(), {"a": a, "b": b})

    def test_rdiv(self):
        b = Tensor(np.random.default_rng(10).uniform(0.5, 2.0, size=(3,)), requires_grad=True)
        check_gradients(lambda: (2.0 / b).sum(), {"b": b})

    def test_pow_gradients(self):
        a = Tensor(np.random.default_rng(11).uniform(0.5, 2.0, size=(4,)), requires_grad=True)
        check_gradients(lambda: (a ** 3).sum(), {"a": a})

    def test_pow_rejects_tensor_exponent(self):
        a = make((2,), 12)
        with pytest.raises(TypeError):
            a ** np.array([1.0, 2.0])


class TestUnaryOps:
    def test_exp_gradients(self):
        a = make((3, 2), 20)
        check_gradients(lambda: a.exp().sum(), {"a": a})

    def test_log_gradients(self):
        a = Tensor(np.random.default_rng(21).uniform(0.5, 3.0, size=(5,)), requires_grad=True)
        check_gradients(lambda: a.log().sum(), {"a": a})

    def test_sqrt_matches_numpy(self):
        a = Tensor([4.0, 9.0])
        assert np.allclose(a.sqrt().data, [2.0, 3.0])

    def test_abs_gradients(self):
        a = Tensor([-2.0, 3.0, -0.5], requires_grad=True)
        check_gradients(lambda: a.abs().sum(), {"a": a})

    def test_clip_values_and_gradients(self):
        a = Tensor([-2.0, 0.5, 3.0], requires_grad=True)
        clipped = a.clip(0.0, 1.0)
        assert np.allclose(clipped.data, [0.0, 0.5, 1.0])
        clipped.sum().backward()
        assert np.allclose(a.grad, [0.0, 1.0, 0.0])


class TestMatmul:
    def test_matmul_values(self):
        a = Tensor([[1.0, 2.0], [3.0, 4.0]])
        b = Tensor([[5.0, 6.0], [7.0, 8.0]])
        assert np.allclose((a @ b).data, np.array([[19.0, 22.0], [43.0, 50.0]]))

    def test_matmul_gradients(self):
        a, b = make((3, 4), 30), make((4, 2), 31)
        check_gradients(lambda: (a @ b).sum(), {"a": a, "b": b})

    def test_matvec_gradients(self):
        a, b = make((3, 4), 32), make((4,), 33)
        check_gradients(lambda: (a @ b).sum(), {"a": a, "b": b})

    def test_rowwise_dot(self):
        a, b = make((5, 3), 34), make((5, 3), 35)
        result = a.dot(b)
        assert result.shape == (5,)
        assert np.allclose(result.data, (a.data * b.data).sum(axis=1))

    def test_chained_expression_gradients(self):
        a, b = make((3, 3), 36), make((3, 3), 37)
        check_gradients(lambda: ((a @ b) * a + b).sum(), {"a": a, "b": b})


class TestBackwardSemantics:
    def test_gradient_accumulates_on_reuse(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        out = (a * a).sum()
        out.backward()
        assert np.allclose(a.grad, [2.0, 4.0])

    def test_backward_requires_scalar(self):
        a = make((3,), 40)
        with pytest.raises(RuntimeError):
            (a * 2).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        a = Tensor([1.0], requires_grad=False)
        with pytest.raises(RuntimeError):
            a.backward()

    def test_zero_grad_resets(self):
        a = make((2,), 41)
        (a * 3).sum().backward()
        assert a.grad is not None
        a.zero_grad()
        assert a.grad is None

    def test_detach_breaks_graph(self):
        a = make((2,), 42)
        detached = a.detach()
        assert not detached.requires_grad
        assert np.shares_memory(detached.data, a.data)

    def test_gradcheck_detects_wrong_gradient(self):
        a = make((2,), 43)

        def wrong():
            # exp has a well-defined gradient; corrupt the comparison by
            # checking against a different function.
            return (a * 0.0).sum() + Tensor(float(np.sum(a.data ** 2)))

        with pytest.raises(GradientCheckError):
            check_gradients(wrong, {"a": a})
