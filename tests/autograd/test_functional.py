"""Activations, concat/stack, dropout, softmax: values and gradients."""

import numpy as np
import pytest

from repro.autograd import (
    Tensor,
    check_gradients,
    concat,
    dropout,
    leaky_relu,
    log_sigmoid,
    relu,
    sigmoid,
    softmax,
    softplus,
    stack,
    tanh,
    ACTIVATIONS,
)


def make(shape, seed=0):
    return Tensor(np.random.default_rng(seed).normal(size=shape), requires_grad=True)


class TestActivations:
    def test_sigmoid_values(self):
        x = Tensor([0.0, 100.0, -100.0])
        out = sigmoid(x).data
        assert np.isclose(out[0], 0.5)
        assert np.isclose(out[1], 1.0)
        assert np.isclose(out[2], 0.0)

    def test_sigmoid_gradients(self):
        x = make((3, 4), 1)
        check_gradients(lambda: sigmoid(x).sum(), {"x": x})

    def test_log_sigmoid_matches_log_of_sigmoid(self):
        x = make((5,), 2)
        assert np.allclose(log_sigmoid(x).data, np.log(sigmoid(x).data))

    def test_log_sigmoid_stable_for_large_negative(self):
        x = Tensor([-500.0])
        value = log_sigmoid(x).data
        assert np.isfinite(value).all()
        assert np.isclose(value[0], -500.0)

    def test_log_sigmoid_gradients(self):
        x = make((4, 2), 3)
        check_gradients(lambda: log_sigmoid(x).sum(), {"x": x})

    def test_softplus_values_and_gradients(self):
        x = make((6,), 4)
        assert np.allclose(softplus(x).data, np.log1p(np.exp(x.data)))
        check_gradients(lambda: softplus(x).sum(), {"x": x})

    def test_relu_values(self):
        x = Tensor([-1.0, 0.0, 2.0])
        assert np.allclose(relu(x).data, [0.0, 0.0, 2.0])

    def test_relu_gradients(self):
        x = Tensor([-1.0, 0.5, 2.0], requires_grad=True)
        relu(x).sum().backward()
        assert np.allclose(x.grad, [0.0, 1.0, 1.0])

    def test_leaky_relu_values(self):
        x = Tensor([-2.0, 3.0])
        assert np.allclose(leaky_relu(x, 0.1).data, [-0.2, 3.0])

    def test_leaky_relu_gradients(self):
        x = make((5,), 5)
        check_gradients(lambda: leaky_relu(x, 0.2).sum(), {"x": x})

    def test_tanh_gradients(self):
        x = make((3, 3), 6)
        check_gradients(lambda: tanh(x).sum(), {"x": x})

    def test_activation_registry(self):
        assert set(ACTIVATIONS) == {"sigmoid", "relu", "leaky_relu", "tanh", "identity"}
        x = Tensor([1.0, -1.0])
        assert np.allclose(ACTIVATIONS["identity"](x).data, x.data)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = make((4, 6), 10)
        out = softmax(x, axis=-1).data
        assert np.allclose(out.sum(axis=-1), 1.0)

    def test_invariant_to_shift(self):
        x = make((3, 5), 11)
        shifted = Tensor(x.data + 100.0)
        assert np.allclose(softmax(x).data, softmax(shifted).data)

    def test_gradients(self):
        x = make((2, 4), 12)
        weights = np.random.default_rng(13).normal(size=(2, 4))
        check_gradients(lambda: (softmax(x, axis=-1) * Tensor(weights)).sum(), {"x": x})


class TestConcatStack:
    def test_concat_values(self):
        a, b = Tensor([[1.0, 2.0]]), Tensor([[3.0]])
        assert np.allclose(concat([a, b], axis=1).data, [[1.0, 2.0, 3.0]])

    def test_concat_gradients_axis0(self):
        a, b = make((2, 3), 20), make((4, 3), 21)
        check_gradients(lambda: (concat([a, b], axis=0) ** 2).sum(), {"a": a, "b": b})

    def test_concat_gradients_axis1(self):
        a, b, c = make((2, 3), 22), make((2, 1), 23), make((2, 2), 24)
        check_gradients(lambda: (concat([a, b, c], axis=1) ** 2).sum(), {"a": a, "b": b, "c": c})

    def test_stack_shape_and_gradients(self):
        a, b = make((3,), 25), make((3,), 26)
        stacked = stack([a, b], axis=0)
        assert stacked.shape == (2, 3)
        check_gradients(lambda: (stack([a, b], axis=0) ** 2).sum(), {"a": a, "b": b})


class TestDropout:
    def test_disabled_in_eval(self):
        x = make((10, 10), 30)
        out = dropout(x, 0.5, training=False)
        assert out is x

    def test_zero_rate_is_identity(self):
        x = make((4, 4), 31)
        assert dropout(x, 0.0) is x

    def test_invalid_rate_raises(self):
        with pytest.raises(ValueError):
            dropout(make((2, 2), 32), 1.0)

    def test_scaling_preserves_expectation(self):
        rng = np.random.default_rng(33)
        x = Tensor(np.ones((2000,)))
        out = dropout(x, 0.3, rng=rng, training=True)
        assert abs(out.data.mean() - 1.0) < 0.1

    def test_gradient_uses_same_mask(self):
        rng = np.random.default_rng(34)
        x = Tensor(np.ones((50,)), requires_grad=True)
        out = dropout(x, 0.5, rng=rng, training=True)
        out.sum().backward()
        # Gradient is exactly the mask applied in the forward pass.
        assert np.allclose(x.grad, out.data)
