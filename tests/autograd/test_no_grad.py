"""Graph recording control: no_grad, requires_grad propagation."""

import numpy as np

from repro.autograd import Tensor, is_grad_enabled, no_grad, sigmoid


class TestNoGrad:
    def test_context_toggles_flag(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_nested_contexts(self):
        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_ops_inside_no_grad_do_not_require_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with no_grad():
            out = sigmoid(a * 2.0)
        assert not out.requires_grad
        assert out._parents == ()

    def test_tensor_created_inside_no_grad(self):
        with no_grad():
            t = Tensor([1.0], requires_grad=True)
        assert not t.requires_grad

    def test_exception_restores_flag(self):
        try:
            with no_grad():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert is_grad_enabled()


class TestRequiresGradPropagation:
    def test_result_requires_grad_if_any_parent_does(self):
        a = Tensor([1.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=False)
        assert (a + b).requires_grad
        assert (b * b).requires_grad is False

    def test_constant_branch_gets_no_gradient(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=False)
        (a * b).sum().backward()
        assert b.grad is None
        assert np.allclose(a.grad, [3.0, 4.0])
