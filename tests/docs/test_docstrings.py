"""Doctest lane (`-m docs`): the usage snippets in the docs must run.

The API-reference docstrings of the serving and persist surfaces carry
runnable examples (``>>>`` doctests).  This suite executes them, so the
documented wiring — store lifecycle, artifact save/load, catalog,
gateway — can never silently drift from the real API.  Collected by the
bare tier-1 run (``python -m pytest -x -q``) and selectable alone with
``python -m pytest -m docs``.
"""

import doctest

import pytest

import repro.persist.artifact
import repro.persist.index
import repro.serving.catalog
import repro.serving.faults
import repro.serving.forksafe
import repro.serving.gateway
import repro.serving.metrics
import repro.serving.resilience
import repro.serving.retrieval
import repro.serving.store
import repro.serving.topk
import repro.serving.warmer
import repro.serving.workers

pytestmark = pytest.mark.docs

DOCUMENTED_MODULES = [
    repro.persist.artifact,
    repro.persist.index,
    repro.serving.store,
    repro.serving.topk,
    repro.serving.retrieval,
    repro.serving.catalog,
    repro.serving.gateway,
    repro.serving.metrics,
    repro.serving.warmer,
    repro.serving.workers,
    repro.serving.forksafe,
    repro.serving.resilience,
    repro.serving.faults,
]


@pytest.mark.parametrize("module", DOCUMENTED_MODULES, ids=lambda m: m.__name__)
def test_docstring_examples_run(module):
    result = doctest.testmod(module, verbose=False, raise_on_error=False)
    assert result.attempted > 0, f"{module.__name__} documents no runnable examples"
    assert result.failed == 0, f"{result.failed} doctest failure(s) in {module.__name__}"
