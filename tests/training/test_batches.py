"""Mini-batch iterators."""

import numpy as np
import pytest

from repro.data import TrainingNegativeSampler, to_fixed_groups, to_user_item_interactions
from repro.training import (
    FixedGroupBatchIterator,
    GroupBuyingBatchIterator,
    InteractionBatchIterator,
)


class TestInteractionBatchIterator:
    def test_covers_every_interaction_once(self, small_split):
        conversion = to_user_item_interactions(small_split.train, mode="both")
        sampler = TrainingNegativeSampler(small_split.train, seed=0)
        iterator = InteractionBatchIterator(conversion, sampler, batch_size=64, seed=1)
        seen = 0
        for batch in iterator:
            seen += len(batch)
            assert batch.users.shape == batch.positive_items.shape == batch.negative_items.shape
        assert seen == conversion.num_interactions

    def test_negatives_are_unobserved(self, small_split):
        conversion = to_user_item_interactions(small_split.train, mode="both")
        sampler = TrainingNegativeSampler(small_split.train, seed=0)
        iterator = InteractionBatchIterator(conversion, sampler, batch_size=128, seed=2)
        interactions = small_split.train.user_item_set()
        batch = next(iter(iterator))
        for user, negative in zip(batch.users, batch.negative_items):
            assert int(negative) not in interactions.get(int(user), set())

    def test_num_batches(self, small_split):
        conversion = to_user_item_interactions(small_split.train, mode="both")
        sampler = TrainingNegativeSampler(small_split.train, seed=0)
        iterator = InteractionBatchIterator(conversion, sampler, batch_size=50, seed=0)
        assert iterator.num_batches() == int(np.ceil(conversion.num_interactions / 50))

    def test_invalid_batch_size(self, small_split):
        conversion = to_user_item_interactions(small_split.train, mode="both")
        sampler = TrainingNegativeSampler(small_split.train, seed=0)
        with pytest.raises(ValueError):
            InteractionBatchIterator(conversion, sampler, batch_size=0)


class TestFixedGroupBatchIterator:
    def test_covers_every_activity(self, small_split):
        groups = to_fixed_groups(small_split.train)
        iterator = FixedGroupBatchIterator(groups, batch_size=32, seed=3)
        seen = sum(len(batch) for batch in iterator)
        assert seen == groups.group_item_pairs.shape[0]

    def test_negatives_not_in_group_history(self, small_split):
        groups = to_fixed_groups(small_split.train)
        iterator = FixedGroupBatchIterator(groups, batch_size=64, seed=4)
        history = {}
        for group, item in groups.group_item_pairs:
            history.setdefault(int(group), set()).add(int(item))
        batch = next(iter(iterator))
        for group, negative in zip(batch.users, batch.negative_items):
            assert int(negative) not in history[int(group)]


class TestGroupBuyingBatchIterator:
    def test_covers_every_behavior(self, small_split):
        sampler = TrainingNegativeSampler(small_split.train, seed=0)
        iterator = GroupBuyingBatchIterator(small_split.train, sampler, batch_size=100, seed=5)
        seen = sum(len(batch) for batch in iterator)
        assert seen == small_split.train.num_behaviors

    def test_segments_reference_valid_rows(self, small_split):
        sampler = TrainingNegativeSampler(small_split.train, seed=0)
        iterator = GroupBuyingBatchIterator(small_split.train, sampler, batch_size=64, seed=6)
        for batch in iterator:
            if batch.participants.size:
                assert batch.participant_segment.max() < len(batch)
                assert batch.success[batch.participant_segment].all()
            if batch.failed_friends.size:
                assert batch.failed_friend_segment.max() < len(batch)
                assert not batch.success[batch.failed_friend_segment].any()

    def test_failed_friends_are_friends_of_initiator(self, small_split):
        sampler = TrainingNegativeSampler(small_split.train, seed=0)
        iterator = GroupBuyingBatchIterator(small_split.train, sampler, batch_size=256, seed=7)
        friends = small_split.train.friend_lists()
        batch = next(iter(iterator))
        for friend, row in zip(batch.failed_friends, batch.failed_friend_segment):
            assert int(friend) in friends[int(batch.initiators[row])]

    def test_max_failed_friends_cap(self, small_split):
        sampler = TrainingNegativeSampler(small_split.train, seed=0)
        iterator = GroupBuyingBatchIterator(
            small_split.train, sampler, batch_size=256, seed=8, max_failed_friends=2
        )
        batch = next(iter(iterator))
        if batch.failed_friends.size:
            counts = np.bincount(batch.failed_friend_segment)
            assert counts.max() <= 2

    def test_counts_properties(self, small_split):
        sampler = TrainingNegativeSampler(small_split.train, seed=0)
        batch = next(iter(GroupBuyingBatchIterator(small_split.train, sampler, batch_size=64, seed=9)))
        assert batch.num_successful + batch.num_failed == len(batch)
