"""Training callbacks: CSV logging, checkpointing, lambda hooks."""

import csv

import numpy as np
import pytest

from repro.data import to_user_item_interactions, TrainingNegativeSampler
from repro.models import MatrixFactorization
from repro.optim import Adam
from repro.persist import load_state_into, read_header, read_state_dict
from repro.training import (
    CallbackList,
    CSVLogger,
    InteractionBatchIterator,
    LambdaCallback,
    ModelCheckpoint,
    Trainer,
)


@pytest.fixture()
def trainer_parts(small_split, small_evaluator):
    train = small_split.train
    model = MatrixFactorization(train.num_users, train.num_items, 8, rng=np.random.default_rng(0))
    conversion = to_user_item_interactions(train, mode="both")
    sampler = TrainingNegativeSampler(train, seed=0)
    iterator = InteractionBatchIterator(conversion, sampler, batch_size=256, seed=0)
    optimizer = Adam(model.parameters(), lr=0.01)
    return model, optimizer, iterator, small_evaluator


class TestCallbackList:
    def test_dispatch_order(self, trainer_parts):
        model, optimizer, iterator, evaluator = trainer_parts
        events = []
        callbacks = CallbackList(
            [
                LambdaCallback(on_epoch_end=lambda trainer, record: events.append(("a", record.epoch))),
                LambdaCallback(on_epoch_end=lambda trainer, record: events.append(("b", record.epoch))),
            ]
        )
        trainer = Trainer(model, optimizer, iterator, evaluator=None, callbacks=callbacks.callbacks)
        trainer.fit(2)
        assert events == [("a", 1), ("b", 1), ("a", 2), ("b", 2)]

    def test_len_and_append(self):
        callbacks = CallbackList()
        assert len(callbacks) == 0
        callbacks.append(LambdaCallback())
        assert len(callbacks) == 1


class TestLambdaCallback:
    def test_all_hooks_fire(self, trainer_parts):
        model, optimizer, iterator, _ = trainer_parts
        fired = {"begin": 0, "epoch": 0, "end": 0}
        callback = LambdaCallback(
            on_train_begin=lambda trainer: fired.__setitem__("begin", fired["begin"] + 1),
            on_epoch_end=lambda trainer, record: fired.__setitem__("epoch", fired["epoch"] + 1),
            on_train_end=lambda trainer, history: fired.__setitem__("end", fired["end"] + 1),
        )
        Trainer(model, optimizer, iterator, callbacks=[callback]).fit(3)
        assert fired == {"begin": 1, "epoch": 3, "end": 1}

    def test_missing_hooks_are_noops(self, trainer_parts):
        model, optimizer, iterator, _ = trainer_parts
        Trainer(model, optimizer, iterator, callbacks=[LambdaCallback()]).fit(1)


class TestCSVLogger:
    def test_one_row_per_epoch(self, trainer_parts, tmp_path):
        model, optimizer, iterator, evaluator = trainer_parts
        path = tmp_path / "history.csv"
        trainer = Trainer(
            model, optimizer, iterator, evaluator=evaluator, callbacks=[CSVLogger(path)]
        )
        trainer.fit(3)
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == list(CSVLogger.FIELDS)
        assert len(rows) == 4
        assert [int(row[0]) for row in rows[1:]] == [1, 2, 3]

    def test_validation_column_filled_when_evaluator_present(self, trainer_parts, tmp_path):
        model, optimizer, iterator, evaluator = trainer_parts
        path = tmp_path / "history.csv"
        Trainer(model, optimizer, iterator, evaluator=evaluator, callbacks=[CSVLogger(path)]).fit(1)
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[1][2] != ""

    def test_overwrite_false_appends(self, trainer_parts, tmp_path):
        model, optimizer, iterator, _ = trainer_parts
        path = tmp_path / "history.csv"
        Trainer(model, optimizer, iterator, callbacks=[CSVLogger(path)]).fit(1)
        Trainer(model, optimizer, iterator, callbacks=[CSVLogger(path, overwrite=False)]).fit(1)
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert len(rows) == 3  # header + 2 epochs across the two runs


class TestModelCheckpoint:
    def test_checkpoint_roundtrip(self, trainer_parts, tmp_path):
        model, optimizer, iterator, evaluator = trainer_parts
        path = tmp_path / "best.npz"
        checkpoint = ModelCheckpoint(path, save_best_only=True)
        Trainer(model, optimizer, iterator, evaluator=evaluator, callbacks=[checkpoint]).fit(2)
        assert path.exists()
        assert checkpoint.num_saves >= 1
        restored = MatrixFactorization(
            model.num_users, model.num_items, 8, rng=np.random.default_rng(1)
        )
        load_state_into(restored, path)
        items = np.arange(5)
        assert np.allclose(restored.rank_scores(0, items), model.rank_scores(0, items))

    def test_save_best_only_skips_without_validation(self, trainer_parts, tmp_path):
        model, optimizer, iterator, _ = trainer_parts
        path = tmp_path / "best.npz"
        checkpoint = ModelCheckpoint(path, save_best_only=True)
        Trainer(model, optimizer, iterator, evaluator=None, callbacks=[checkpoint]).fit(2)
        assert checkpoint.num_saves == 0
        assert not path.exists()

    def test_save_every_epoch(self, trainer_parts, tmp_path):
        model, optimizer, iterator, _ = trainer_parts
        path = tmp_path / "latest.npz"
        checkpoint = ModelCheckpoint(path, save_best_only=False)
        Trainer(model, optimizer, iterator, evaluator=None, callbacks=[checkpoint]).fit(3)
        assert checkpoint.num_saves == 3

    def test_periodic_mode_saves_every_nth_epoch(self, trainer_parts, tmp_path):
        model, optimizer, iterator, _ = trainer_parts
        path = tmp_path / "periodic.npz"
        checkpoint = ModelCheckpoint(path, save_best_only=False, period=2)
        Trainer(model, optimizer, iterator, evaluator=None, callbacks=[checkpoint]).fit(5)
        assert checkpoint.num_saves == 2  # epochs 2 and 4
        assert path.exists()

    def test_invalid_period_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="period"):
            ModelCheckpoint(tmp_path / "x.npz", save_best_only=False, period=0)

    def test_period_with_save_best_only_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="save_best_only=False"):
            ModelCheckpoint(tmp_path / "x.npz", period=5)

    def test_checkpoint_writes_versioned_artifact(self, trainer_parts, tmp_path):
        model, optimizer, iterator, _ = trainer_parts
        path = tmp_path / "latest.npz"
        checkpoint = ModelCheckpoint(path, save_best_only=False)
        Trainer(model, optimizer, iterator, evaluator=None, callbacks=[checkpoint]).fit(1)
        header = read_header(path)
        assert header.model_name == "MF"
        assert sorted(header.state_keys) == sorted(model.state_dict())

    def test_crash_mid_write_leaves_previous_artifact_intact(
        self, trainer_parts, tmp_path, monkeypatch
    ):
        """An interrupted save must never clobber the last good checkpoint."""
        model, optimizer, iterator, _ = trainer_parts
        path = tmp_path / "latest.npz"
        checkpoint = ModelCheckpoint(path, save_best_only=False)
        trainer = Trainer(model, optimizer, iterator, evaluator=None, callbacks=[checkpoint])
        trainer.fit(1)
        _, good_state = read_state_dict(path)

        def crash_mid_write(file, *args, **kwargs):
            file.write(b"partial garbage that would corrupt the archive")
            raise OSError("simulated crash: disk full mid-write")

        monkeypatch.setattr(np, "savez", crash_mid_write)
        with pytest.raises(OSError, match="disk full"):
            checkpoint._save(trainer)
        monkeypatch.undo()

        # The previous artifact is untouched and still loads bit for bit.
        _, state_after = read_state_dict(path)
        assert set(state_after) == set(good_state)
        for key in good_state:
            assert np.array_equal(state_after[key], good_state[key])
        # No temp files leak into the checkpoint directory.
        assert [p.name for p in tmp_path.iterdir()] == ["latest.npz"]


class TestModelCheckpointCatalogPublish:
    @pytest.fixture()
    def registry_trainer_parts(self, small_split):
        from repro.models import ModelSettings, build_model

        train = small_split.train
        model = build_model("MF", train, ModelSettings(embedding_dim=8))
        conversion = to_user_item_interactions(train, mode="both")
        sampler = TrainingNegativeSampler(train, seed=0)
        iterator = InteractionBatchIterator(conversion, sampler, batch_size=256, seed=0)
        return model, Adam(model.parameters(), lr=0.01), iterator

    def test_publishes_into_catalog_dir_under_registry_name(
        self, registry_trainer_parts, tmp_path
    ):
        model, optimizer, iterator = registry_trainer_parts
        catalog_dir = tmp_path / "fleet"
        checkpoint = ModelCheckpoint(
            tmp_path / "latest.npz", save_best_only=False, catalog_dir=catalog_dir
        )
        Trainer(model, optimizer, iterator, evaluator=None, callbacks=[checkpoint]).fit(2)
        assert checkpoint.num_publishes == 2
        published = catalog_dir / "MF.npz"
        assert published.exists()
        assert read_header(published).model_name == "MF"

    def test_published_bytes_identical_to_checkpoint(self, registry_trainer_parts, tmp_path):
        model, optimizer, iterator = registry_trainer_parts
        checkpoint = ModelCheckpoint(
            tmp_path / "latest.npz", save_best_only=False, catalog_dir=tmp_path / "fleet"
        )
        Trainer(model, optimizer, iterator, evaluator=None, callbacks=[checkpoint]).fit(1)
        assert (tmp_path / "fleet" / "MF.npz").read_bytes() == (tmp_path / "latest.npz").read_bytes()

    def test_catalog_name_overrides_the_file_stem(self, registry_trainer_parts, tmp_path):
        model, optimizer, iterator = registry_trainer_parts
        checkpoint = ModelCheckpoint(
            tmp_path / "latest.npz",
            save_best_only=False,
            catalog_dir=tmp_path / "fleet",
            catalog_name="mf-canary",
        )
        Trainer(model, optimizer, iterator, evaluator=None, callbacks=[checkpoint]).fit(1)
        assert (tmp_path / "fleet" / "mf-canary.npz").exists()

    def test_published_artifact_is_servable_by_a_catalog(
        self, registry_trainer_parts, small_split, tmp_path
    ):
        from repro.serving import ModelCatalog

        model, optimizer, iterator = registry_trainer_parts
        checkpoint = ModelCheckpoint(
            tmp_path / "latest.npz", save_best_only=False, catalog_dir=tmp_path / "fleet"
        )
        Trainer(model, optimizer, iterator, evaluator=None, callbacks=[checkpoint]).fit(1)
        catalog = ModelCatalog(tmp_path / "fleet", small_split.train)
        assert catalog.names == ["MF"]
        users = np.asarray(sorted(small_split.test))[:8]
        result = catalog.recommender("MF", k=5).recommend(users)
        assert result.items.shape == (users.size, 5)

    def test_republish_hot_swaps_a_watching_catalog(
        self, registry_trainer_parts, small_split, tmp_path
    ):
        from repro.serving import ModelCatalog

        model, optimizer, iterator = registry_trainer_parts
        checkpoint = ModelCheckpoint(
            tmp_path / "latest.npz", save_best_only=False, catalog_dir=tmp_path / "fleet"
        )
        trainer = Trainer(model, optimizer, iterator, evaluator=None, callbacks=[checkpoint])
        trainer.fit(1)
        catalog = ModelCatalog(tmp_path / "fleet", small_split.train)
        users = np.asarray(sorted(small_split.test))[:8]
        before = catalog.recommender("MF", k=5).recommend(users)
        trainer.fit(2)  # trains further and republishes
        after = catalog.recommender("MF", k=5).recommend(users)
        assert catalog.entry("MF").version == 2
        assert not np.array_equal(before.scores, after.scores)

    def test_catalog_name_without_dir_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="catalog_dir"):
            ModelCheckpoint(tmp_path / "x.npz", catalog_name="mf")

    def test_on_publish_hook_fires_with_published_path(self, registry_trainer_parts, tmp_path):
        model, optimizer, iterator = registry_trainer_parts
        published_paths = []
        checkpoint = ModelCheckpoint(
            tmp_path / "latest.npz",
            save_best_only=False,
            catalog_dir=tmp_path / "fleet",
            on_publish=published_paths.append,
        )
        Trainer(model, optimizer, iterator, evaluator=None, callbacks=[checkpoint]).fit(2)
        assert published_paths == [tmp_path / "fleet" / "MF.npz"] * 2

    def test_on_publish_can_force_reload_a_colocated_catalog(
        self, registry_trainer_parts, small_split, tmp_path
    ):
        # The documented wiring: a co-located serving catalog takes every
        # publish immediately, without waiting for an access or a warmer
        # cycle to notice the file change.
        from repro.serving import ModelCatalog

        model, optimizer, iterator = registry_trainer_parts
        checkpoint = ModelCheckpoint(
            tmp_path / "latest.npz", save_best_only=False, catalog_dir=tmp_path / "fleet"
        )
        trainer = Trainer(model, optimizer, iterator, evaluator=None, callbacks=[checkpoint])
        trainer.fit(1)
        catalog = ModelCatalog(tmp_path / "fleet", small_split.train)
        catalog.warm("MF")
        checkpoint.on_publish = lambda path: catalog.reload(path.stem, force=True)
        trainer.fit(1)
        # The reload already happened inside the publish — the entry is
        # version-bumped before any serving request touches it.
        assert catalog.entry("MF").version == 2

    def test_on_publish_without_catalog_dir_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="on_publish"):
            ModelCheckpoint(tmp_path / "x.npz", on_publish=lambda path: None)
