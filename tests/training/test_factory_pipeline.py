"""Batch-iterator factory and the two-stage GBGCN pipeline."""

import numpy as np
import pytest

from repro.core import GBGCN, GBGCNConfig
from repro.models import ModelSettings, build_model
from repro.training import (
    FixedGroupBatchIterator,
    GroupBuyingBatchIterator,
    InteractionBatchIterator,
    TrainingSettings,
    build_batch_iterator,
    train_gbgcn_with_pretraining,
)


class TestBatchIteratorFactory:
    def test_interaction_models_get_interaction_batches(self, small_split):
        settings = ModelSettings(embedding_dim=4)
        model = build_model("MF", small_split.train, settings)
        assert isinstance(build_batch_iterator(model, small_split.train), InteractionBatchIterator)

    def test_group_models_get_group_batches(self, small_split):
        settings = ModelSettings(embedding_dim=4)
        model = build_model("AGREE", small_split.train, settings)
        assert isinstance(build_batch_iterator(model, small_split.train), FixedGroupBatchIterator)

    def test_group_buying_models_get_behavior_batches(self, small_split):
        settings = ModelSettings(embedding_dim=4)
        model = build_model("GBMF", small_split.train, settings)
        assert isinstance(build_batch_iterator(model, small_split.train), GroupBuyingBatchIterator)


class TestGBGCNPipeline:
    def test_two_stage_training_returns_trained_model(self, small_split, small_evaluator):
        settings = TrainingSettings(num_epochs=2, pretrain_epochs=2, batch_size=256)
        model, finetune_history, pretrain_history = train_gbgcn_with_pretraining(
            small_split,
            config=GBGCNConfig(embedding_dim=8),
            settings=settings,
            evaluator=small_evaluator,
        )
        assert isinstance(model, GBGCN)
        assert pretrain_history.num_epochs == 2
        assert finetune_history.num_epochs == 2
        result = small_evaluator.evaluate_test(model)
        assert 0.0 <= result["Recall@10"] <= 1.0

    def test_pipeline_beats_random_scoring(self, small_split, small_evaluator):
        settings = TrainingSettings(num_epochs=4, pretrain_epochs=3, batch_size=256)
        model, _, _ = train_gbgcn_with_pretraining(
            small_split, config=GBGCNConfig(embedding_dim=8), settings=settings,
            evaluator=small_evaluator,
        )
        metrics = small_evaluator.evaluate_test(model).metrics
        # 21 candidates (1 positive + 20 negatives): random Recall@10 ~ 0.48.
        assert metrics["Recall@10"] > 0.5
