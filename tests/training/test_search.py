"""Hyper-parameter grid search."""

import pytest

from repro.models import ModelSettings
from repro.training import TrainingSettings, grid_search, parameter_grid
from repro.training.search import GridSearchEntry, GridSearchResult, _apply_parameters


class TestParameterGrid:
    def test_empty_grid_is_single_empty_configuration(self):
        assert parameter_grid({}) == [{}]

    def test_full_cartesian_product(self):
        grid = parameter_grid({"alpha": [0.4, 0.6], "beta": [0.05, 0.1, 0.2]})
        assert len(grid) == 6
        assert {"alpha": 0.4, "beta": 0.2} in grid

    def test_order_is_deterministic(self):
        assert parameter_grid({"b": [1, 2], "a": [3]}) == parameter_grid({"a": [3], "b": [1, 2]})

    def test_empty_candidate_list_rejected(self):
        with pytest.raises(ValueError):
            parameter_grid({"alpha": []})


class TestApplyParameters:
    def test_known_fields_are_replaced(self):
        settings = _apply_parameters(ModelSettings(), {"alpha": 0.9, "embedding_dim": 16})
        assert settings.alpha == 0.9
        assert settings.embedding_dim == 16

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown ModelSettings field"):
            _apply_parameters(ModelSettings(), {"lerning_rate": 0.1})


class TestGridSearchResult:
    def test_best_selects_highest_metric(self):
        result = GridSearchResult(model_name="MF", selection_metric="Recall@10")
        result.entries = [
            GridSearchEntry({"alpha": 0.2}, {"Recall@10": 0.1}),
            GridSearchEntry({"alpha": 0.6}, {"Recall@10": 0.3}),
            GridSearchEntry({"alpha": 0.9}, {"Recall@10": 0.2}),
        ]
        assert result.best_parameters == {"alpha": 0.6}
        assert result.best_metric == pytest.approx(0.3)

    def test_best_of_empty_search_raises(self):
        with pytest.raises(ValueError):
            GridSearchResult(model_name="MF", selection_metric="Recall@10").best

    def test_format_lists_every_entry(self):
        result = GridSearchResult(model_name="MF", selection_metric="Recall@10")
        result.entries = [
            GridSearchEntry({"alpha": 0.2}, {"Recall@10": 0.1}),
            GridSearchEntry({"alpha": 0.6}, {"Recall@10": 0.3}),
        ]
        table = result.format()
        assert "alpha" in table
        assert "Recall@10" in table
        assert table.count("\n") >= 3


class TestGridSearch:
    def test_end_to_end_on_small_split(self, small_split, small_evaluator):
        training = TrainingSettings(num_epochs=2, batch_size=512)
        result = grid_search(
            "MF",
            small_split,
            grid={"embedding_dim": [8], "l2_weight": [1e-4, 1e-2]},
            training=training,
            evaluator=small_evaluator,
        )
        assert len(result.entries) == 2
        assert set(result.best_parameters) == {"embedding_dim", "l2_weight"}
        assert 0.0 <= result.best_metric <= 1.0
