"""Trainer loop, model selection and early stopping."""

import numpy as np
import pytest

from repro.models import MatrixFactorization
from repro.optim import Adam
from repro.training import Trainer, build_batch_iterator
from repro.training.pipeline import TrainingSettings, train_model


class TestTrainer:
    def test_losses_decrease_over_epochs(self, small_split):
        model = MatrixFactorization(small_split.train.num_users, small_split.train.num_items, 8,
                                    rng=np.random.default_rng(0))
        iterator = build_batch_iterator(model, small_split.train, batch_size=256, seed=0)
        trainer = Trainer(model, Adam(model.parameters(), lr=0.02), iterator)
        history = trainer.fit(5)
        assert history.num_epochs == 5
        assert history.losses()[-1] < history.losses()[0]

    def test_best_epoch_tracked_and_restored(self, small_split, small_evaluator):
        model = MatrixFactorization(small_split.train.num_users, small_split.train.num_items, 8,
                                    rng=np.random.default_rng(1))
        iterator = build_batch_iterator(model, small_split.train, batch_size=256, seed=1)
        trainer = Trainer(model, Adam(model.parameters(), lr=0.02), iterator,
                          evaluator=small_evaluator, selection_metric="Recall@10")
        history = trainer.fit(3)
        assert history.best_epoch >= 1
        assert history.best_metric >= 0.0
        # Restored parameters reproduce the best validation metric.
        restored = small_evaluator.evaluate_validation(model).metrics["Recall@10"]
        assert np.isclose(restored, history.best_metric, atol=1e-9)

    def test_early_stopping(self, small_split, small_evaluator):
        model = MatrixFactorization(small_split.train.num_users, small_split.train.num_items, 4,
                                    rng=np.random.default_rng(2))
        iterator = build_batch_iterator(model, small_split.train, batch_size=256, seed=2)
        # Learning rate 0 means validation can never improve after the first epoch.
        trainer = Trainer(model, Adam(model.parameters(), lr=1e-12), iterator,
                          evaluator=small_evaluator, patience=2)
        history = trainer.fit(20)
        assert history.num_epochs <= 5

    def test_grad_clip_path(self, small_split):
        model = MatrixFactorization(small_split.train.num_users, small_split.train.num_items, 4,
                                    rng=np.random.default_rng(3))
        iterator = build_batch_iterator(model, small_split.train, batch_size=256, seed=3)
        trainer = Trainer(model, Adam(model.parameters(), lr=0.02), iterator, grad_clip=0.5)
        history = trainer.fit(2)
        assert history.num_epochs == 2


class TestTrainModelHelper:
    def test_train_model_runs_for_any_registry_model(self, small_split, small_evaluator):
        settings = TrainingSettings(num_epochs=2, batch_size=256)
        model = MatrixFactorization(small_split.train.num_users, small_split.train.num_items, 4,
                                    rng=np.random.default_rng(4))
        history = train_model(model, small_split.train, evaluator=small_evaluator, settings=settings)
        assert history.num_epochs == 2
