"""Adagrad and RMSprop optimizers."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import Parameter
from repro.optim import Adagrad, Adam, RMSprop, SGD


def quadratic_loss(parameter: Parameter) -> Tensor:
    """Simple convex objective: ||x - 3||^2."""
    diff = parameter - 3.0
    return (diff * diff).sum()


def run_steps(optimizer_cls, steps=200, **kwargs):
    parameter = Parameter(np.array([0.0, 10.0, -5.0]), name="x")
    optimizer = optimizer_cls([parameter], **kwargs)
    for _ in range(steps):
        optimizer.zero_grad()
        loss = quadratic_loss(parameter)
        loss.backward()
        optimizer.step()
    return parameter, float(quadratic_loss(parameter).data)


class TestAdagrad:
    def test_converges_on_quadratic(self):
        parameter, loss = run_steps(Adagrad, steps=400, lr=0.5)
        assert loss < 0.5
        assert np.allclose(parameter.data, 3.0, atol=0.5)

    def test_effective_step_shrinks_over_time(self):
        parameter = Parameter(np.array([0.0]), name="x")
        optimizer = Adagrad([parameter], lr=1.0)
        deltas = []
        for _ in range(5):
            optimizer.zero_grad()
            loss = quadratic_loss(parameter)
            loss.backward()
            before = parameter.data.copy()
            optimizer.step()
            deltas.append(float(np.abs(parameter.data - before).item()))
        # Accumulating squared gradients shrinks each successive step for a
        # (near-)constant gradient direction.
        assert deltas[0] > deltas[-1]

    def test_skips_parameters_without_gradients(self):
        used = Parameter(np.zeros(2), name="used")
        unused = Parameter(np.ones(2), name="unused")
        optimizer = Adagrad([used, unused], lr=0.1)
        loss = quadratic_loss(used)
        loss.backward()
        optimizer.step()
        assert np.allclose(unused.data, 1.0)


class TestRMSprop:
    def test_converges_on_quadratic(self):
        parameter, loss = run_steps(RMSprop, steps=400, lr=0.05)
        assert loss < 0.5

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            RMSprop([Parameter(np.zeros(1))], lr=0.01, alpha=1.5)

    def test_weight_decay_pulls_towards_zero(self):
        heavy = Parameter(np.array([5.0]), name="w")
        optimizer = RMSprop([heavy], lr=0.1, weight_decay=10.0)
        for _ in range(50):
            optimizer.zero_grad()
            # No data loss at all: only the decay term acts.
            loss = (heavy * 0.0).sum()
            loss.backward()
            optimizer.step()
        assert abs(float(heavy.data.item())) < 5.0


class TestOptimizerParity:
    @pytest.mark.parametrize("optimizer_cls,kwargs", [
        (SGD, {"lr": 0.05}),
        (Adam, {"lr": 0.1}),
        (Adagrad, {"lr": 0.5}),
        (RMSprop, {"lr": 0.05}),
    ])
    def test_all_optimizers_reduce_the_loss(self, optimizer_cls, kwargs):
        parameter = Parameter(np.array([8.0, -8.0]), name="x")
        optimizer = optimizer_cls([parameter], **kwargs)
        initial = float(quadratic_loss(parameter).data)
        for _ in range(50):
            optimizer.zero_grad()
            loss = quadratic_loss(parameter)
            loss.backward()
            optimizer.step()
        assert float(quadratic_loss(parameter).data) < initial

    def test_empty_parameter_list_rejected(self):
        for optimizer_cls in (Adagrad, RMSprop):
            with pytest.raises(ValueError):
                optimizer_cls([], lr=0.1)
