"""Sparse-aware optimizer steps, stable state keying, and allocation checks."""

import tracemalloc

import numpy as np
import pytest

from repro.autograd import RowSparseGrad
from repro.nn.module import Parameter
from repro.optim import SGD, Adagrad, Adam, Optimizer, RMSprop, clip_grad_norm


def sparse_grad(shape, indices, values):
    return RowSparseGrad.from_scatter(shape, np.asarray(indices), np.asarray(values))


def run_trajectory(optimizer_factory, sparse, steps=6, rows=24, table=(40, 6), seed=7, **kwargs):
    """Feed identical gradients as sparse or dense and return final weights."""
    rng = np.random.default_rng(seed)
    parameter = Parameter(np.random.default_rng(0).normal(size=table))
    optimizer = optimizer_factory([parameter], **kwargs)
    for _ in range(steps):
        indices = rng.integers(0, table[0], size=rows)
        values = rng.normal(size=(rows,) + table[1:])
        optimizer.zero_grad()
        if sparse:
            parameter.grad = sparse_grad(table, indices, values)
        else:
            full = np.zeros(table)
            np.add.at(full, indices, values)
            parameter.grad = full
        optimizer.step()
    return parameter.data, optimizer


class TestSparseFastPaths:
    def test_sgd_matches_dense_bitwise(self):
        sparse, _ = run_trajectory(lambda p: SGD(p, lr=0.1), sparse=True)
        dense, _ = run_trajectory(lambda p: SGD(p, lr=0.1), sparse=False)
        assert np.array_equal(sparse, dense)

    def test_sgd_momentum_densifies_and_matches(self):
        sparse, _ = run_trajectory(lambda p: SGD(p, lr=0.1, momentum=0.9), sparse=True)
        dense, _ = run_trajectory(lambda p: SGD(p, lr=0.1, momentum=0.9), sparse=False)
        assert np.array_equal(sparse, dense)

    def test_default_adam_matches_dense_bitwise(self):
        # Without the lazy opt-in, sparse gradients densify inside Adam so
        # the trajectory is exactly the dense oracle's (the reproduction
        # pipelines rely on this).
        sparse, _ = run_trajectory(lambda p: Adam(p, lr=0.05), sparse=True)
        dense, _ = run_trajectory(lambda p: Adam(p, lr=0.05), sparse=False)
        assert np.array_equal(sparse, dense)

    def test_default_rmsprop_matches_dense_bitwise(self):
        sparse, _ = run_trajectory(lambda p: RMSprop(p, lr=0.01), sparse=True)
        dense, _ = run_trajectory(lambda p: RMSprop(p, lr=0.01), sparse=False)
        assert np.array_equal(sparse, dense)

    def test_adagrad_matches_dense_bitwise(self):
        sparse, _ = run_trajectory(lambda p: Adagrad(p, lr=0.05), sparse=True)
        dense, _ = run_trajectory(lambda p: Adagrad(p, lr=0.05), sparse=False)
        assert np.array_equal(sparse, dense)

    def test_rmsprop_matches_dense_trajectory(self):
        # The lazy decay catch-up multiplies by alpha**k instead of k times
        # by alpha, so equality holds only up to that reassociation.
        sparse, _ = run_trajectory(lambda p: RMSprop(p, lr=0.01, lazy=True), sparse=True)
        dense, _ = run_trajectory(lambda p: RMSprop(p, lr=0.01), sparse=False)
        np.testing.assert_allclose(sparse, dense, rtol=1e-12, atol=1e-15)

    def test_adam_lazy_skips_untouched_rows(self):
        parameter = Parameter(np.zeros((10, 3)))
        optimizer = Adam([parameter], lr=0.1, lazy=True)
        parameter.grad = sparse_grad((10, 3), [2], np.ones((1, 3)))
        optimizer.step()
        optimizer.zero_grad()
        parameter.grad = sparse_grad((10, 3), [5], np.ones((1, 3)))
        optimizer.step()
        # Dense Adam would keep moving row 2 at step 2 (its first moment is
        # still nonzero); lazy Adam leaves untouched rows alone.
        after_first = parameter.data[2].copy()
        assert np.all(parameter.data[5] != 0)
        assert np.array_equal(parameter.data[2], after_first)

    def test_adam_lazy_catch_up_matches_manual_recursion(self):
        beta1, beta2 = 0.9, 0.999
        parameter = Parameter(np.zeros((4, 2)))
        optimizer = Adam([parameter], lr=0.1, betas=(beta1, beta2), lazy=True)
        grads = {1: [0], 3: [0]}  # row 0 touched at steps 1 and 3
        first = second = 0.0
        for step in (1, 2, 3):
            optimizer.zero_grad()
            if step in grads:
                parameter.grad = sparse_grad((4, 2), [0], np.ones((1, 2)))
                optimizer.step()
            else:
                parameter.grad = sparse_grad((4, 2), np.array([], dtype=np.int64), np.zeros((0, 2)))
                optimizer.step()
        # Manual lazy recursion: moments decay beta^(t-s) between touches.
        first = (1 - beta1)  # step 1
        second = (1 - beta2)
        first = first * beta1 ** 2 + (1 - beta1)  # step 3 (2 steps elapsed)
        second = second * beta2 ** 2 + (1 - beta2)
        state = optimizer.state_dict()["param_state"][0]
        np.testing.assert_allclose(state["first"][0], first)
        np.testing.assert_allclose(state["second"][0], second)
        assert state["last_step"][0] == 3

    def test_rmsprop_lazy_sparse_step_after_dense_history(self):
        # Regression: a dense step creates 'square_average' without the lazy
        # row tracker; the next sparse step must not KeyError and must only
        # apply one step of decay (the dense steps already decayed all rows).
        parameter = Parameter(np.zeros((4, 2)))
        optimizer = RMSprop([parameter], lr=0.01, alpha=0.9, lazy=True)
        parameter.grad = np.ones((4, 2))
        optimizer.step()
        optimizer.zero_grad()
        parameter.grad = sparse_grad((4, 2), [1], np.ones((1, 2)))
        optimizer.step()
        average = optimizer.state_dict()["param_state"][0]["square_average"]
        np.testing.assert_allclose(average[1], 0.1 * 0.9 + 0.1)

    def test_adam_lazy_sparse_step_after_dense_history(self):
        # Regression: lazy tracking starts at the current step count, so the
        # decay dense steps already applied is not double-counted.
        beta1, beta2 = 0.9, 0.999
        parameter = Parameter(np.zeros((4, 2)))
        optimizer = Adam([parameter], lr=0.1, betas=(beta1, beta2), lazy=True)
        parameter.grad = np.ones((4, 2))
        optimizer.step()  # dense: first = (1-beta1)
        optimizer.zero_grad()
        parameter.grad = sparse_grad((4, 2), [1], np.ones((1, 2)))
        optimizer.step()  # sparse: exponent must be exactly 1
        state = optimizer.state_dict()["param_state"][0]
        np.testing.assert_allclose(state["first"][1], (1 - beta1) * beta1 + (1 - beta1))
        np.testing.assert_allclose(state["second"][1], (1 - beta2) * beta2 + (1 - beta2))
        assert state["last_step"][1] == 2

    @pytest.mark.parametrize(
        "factory",
        [
            lambda p: SGD(p, lr=0.1, weight_decay=0.2),
            lambda p: Adam(p, lr=0.1, weight_decay=0.2),
            lambda p: Adagrad(p, lr=0.1, weight_decay=0.2),
            lambda p: RMSprop(p, lr=0.01, weight_decay=0.2),
        ],
    )
    def test_weight_decay_densifies_to_the_dense_trajectory(self, factory):
        # Weight decay touches every row each step, so the sparse fast path
        # steps aside and the trajectory matches the dense oracle exactly.
        sparse, _ = run_trajectory(factory, sparse=True)
        dense, _ = run_trajectory(factory, sparse=False)
        assert np.array_equal(sparse, dense)

    def test_empty_sparse_grad_is_a_noop(self):
        for factory in (
            lambda p: SGD(p, lr=0.1),
            lambda p: Adam(p, lr=0.1),
            lambda p: Adagrad(p, lr=0.1),
            lambda p: RMSprop(p, lr=0.1),
        ):
            parameter = Parameter(np.ones((5, 2)))
            optimizer = factory([parameter])
            parameter.grad = sparse_grad((5, 2), np.array([], dtype=np.int64), np.zeros((0, 2)))
            optimizer.step()
            assert np.array_equal(parameter.data, np.ones((5, 2)))

    def test_one_dimensional_parameter_rows(self):
        parameter = Parameter(np.zeros(8))
        optimizer = Adam([parameter], lr=0.1)
        parameter.grad = sparse_grad((8,), [3, 3], np.array([1.0, 1.0]))
        optimizer.step()
        assert parameter.data[3] != 0 and np.all(parameter.data[:3] == 0)


class TestStateKeying:
    def test_state_is_keyed_by_index_not_id(self):
        parameters = [Parameter(np.zeros((3, 2))), Parameter(np.zeros((4, 2)))]
        optimizer = Adam(parameters, lr=0.1)
        for parameter in parameters:
            parameter.grad = np.ones_like(parameter.data)
        optimizer.step()
        state = optimizer.state_dict()
        assert state["step_count"] == 1
        assert len(state["param_state"]) == 2
        assert state["param_state"][0]["first"].shape == (3, 2)
        assert state["param_state"][1]["first"].shape == (4, 2)
        # No id()-keyed mappings anywhere in the optimizer.
        assert not any(isinstance(key, int) and key > 10_000 for key in vars(optimizer))

    def test_state_dict_returns_copies(self):
        parameter = Parameter(np.zeros((3, 2)))
        optimizer = Adagrad([parameter], lr=0.1)
        parameter.grad = np.ones((3, 2))
        optimizer.step()
        snapshot = optimizer.state_dict()
        snapshot["param_state"][0]["accumulator"][:] = 999.0
        assert not np.any(optimizer.state_dict()["param_state"][0]["accumulator"] == 999.0)

    def test_load_state_dict_resumes_identically(self):
        def make():
            return Parameter(np.full((5, 2), 0.5))

        rng = np.random.default_rng(3)
        grads = [rng.normal(size=(5, 2)) for _ in range(4)]

        straight = make()
        optimizer = Adam([straight], lr=0.05)
        for grad in grads:
            straight.grad = grad.copy()
            optimizer.step()

        resumed = make()
        first_half = Adam([resumed], lr=0.05)
        for grad in grads[:2]:
            resumed.grad = grad.copy()
            first_half.step()
        second_half = Adam([resumed], lr=0.05)
        second_half.load_state_dict(first_half.state_dict())
        for grad in grads[2:]:
            resumed.grad = grad.copy()
            second_half.step()
        assert np.array_equal(straight.data, resumed.data)

    def test_load_state_dict_rejects_mismatched_length(self):
        optimizer = SGD([Parameter(np.zeros(3))], lr=0.1, momentum=0.9)
        with pytest.raises(ValueError):
            optimizer.load_state_dict({"step_count": 0, "param_state": [{}, {}]})


class TestClipGradNorm:
    def test_mixed_sparse_dense_norm_and_scaling(self):
        rng = np.random.default_rng(5)
        idx = rng.integers(0, 12, size=9)
        vals = rng.normal(size=(9, 3)) * 10
        dense_grad = rng.normal(size=(4, 3)) * 10
        p_sparse = Parameter(np.zeros((12, 3)))
        p_dense = Parameter(np.zeros((4, 3)))
        p_sparse.grad = sparse_grad((12, 3), idx, vals)
        p_dense.grad = dense_grad.copy()

        q_sparse = Parameter(np.zeros((12, 3)))
        q_dense = Parameter(np.zeros((4, 3)))
        full = np.zeros((12, 3))
        np.add.at(full, idx, vals)
        q_sparse.grad = full
        q_dense.grad = dense_grad.copy()

        norm_mixed = clip_grad_norm([p_sparse, p_dense], max_norm=1.0)
        norm_dense = clip_grad_norm([q_sparse, q_dense], max_norm=1.0)
        assert norm_mixed == norm_dense
        assert isinstance(p_sparse.grad, RowSparseGrad)  # representation preserved
        assert np.array_equal(p_sparse.grad.to_dense(), q_sparse.grad)
        assert np.array_equal(p_dense.grad, q_dense.grad)

    def test_no_clip_below_threshold(self):
        parameter = Parameter(np.zeros((4, 2)))
        parameter.grad = sparse_grad((4, 2), [1], np.full((1, 2), 0.01))
        before = parameter.grad.values.copy()
        clip_grad_norm([parameter], max_norm=10.0)
        assert np.array_equal(parameter.grad.values, before)


class TestWeightDecayAllocation:
    def _allocations_per_step(self, weight_decay, steps=3):
        """Large-block allocation count of the last dense step (tracemalloc)."""
        parameter = Parameter(np.zeros((2000, 32)))
        optimizer = SGD([parameter], lr=0.1, weight_decay=weight_decay)
        gradient = np.ones_like(parameter.data)
        for _ in range(steps - 1):  # warm up (scratch buffer gets created)
            parameter.grad = gradient
            optimizer.step()
        parameter.grad = gradient
        tracemalloc.start()
        before = tracemalloc.take_snapshot()
        optimizer.step()
        after = tracemalloc.take_snapshot()
        tracemalloc.stop()
        threshold = parameter.data.nbytes // 2
        return sum(
            1
            for stat in after.compare_to(before, "lineno")
            if stat.size_diff >= threshold
        )

    def test_weight_decay_adds_no_per_step_allocation(self):
        # The wd * data temporary lands in a persistent scratch buffer, so a
        # decayed step allocates exactly as many large blocks as a plain one.
        assert self._allocations_per_step(0.1) == self._allocations_per_step(0.0)

    def test_scratch_buffer_is_reused(self):
        parameter = Parameter(np.zeros((100, 4)))
        optimizer = SGD([parameter], lr=0.1, weight_decay=0.5)
        parameter.grad = np.ones_like(parameter.data)
        optimizer.step()
        buffer_id = id(optimizer._decay_scratch[0])
        parameter.grad = np.ones_like(parameter.data)
        optimizer.step()
        assert id(optimizer._decay_scratch[0]) == buffer_id
