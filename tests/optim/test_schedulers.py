"""Learning-rate schedulers."""

import numpy as np
import pytest

from repro.nn import Parameter
from repro.optim import SGD, ConstantLR, ExponentialLR, StepLR


def make_optimizer(lr=1.0):
    return SGD([Parameter(np.zeros(1))], lr=lr)


class TestSchedulers:
    def test_constant(self):
        optimizer = make_optimizer(0.5)
        scheduler = ConstantLR(optimizer)
        for _ in range(3):
            assert scheduler.step() == 0.5

    def test_step_lr_halves(self):
        optimizer = make_optimizer(1.0)
        scheduler = StepLR(optimizer, step_size=2, gamma=0.5)
        lrs = [scheduler.step() for _ in range(4)]
        assert lrs == [1.0, 0.5, 0.5, 0.25]

    def test_step_lr_invalid_step_size(self):
        with pytest.raises(ValueError):
            StepLR(make_optimizer(), step_size=0)

    def test_exponential(self):
        optimizer = make_optimizer(1.0)
        scheduler = ExponentialLR(optimizer, gamma=0.9)
        scheduler.step()
        scheduler.step()
        assert optimizer.lr == pytest.approx(0.81)

    def test_scheduler_updates_optimizer_in_place(self):
        optimizer = make_optimizer(1.0)
        scheduler = ExponentialLR(optimizer, gamma=0.5)
        scheduler.step()
        assert optimizer.lr == 0.5
