"""SGD, Adam and gradient clipping."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import Parameter
from repro.optim import SGD, Adam, clip_grad_norm


def quadratic_step(parameter):
    """Loss = ||p - 3||^2, gradient set manually."""
    parameter.grad = 2 * (parameter.data - 3.0)
    return float(((parameter.data - 3.0) ** 2).sum())


class TestSGD:
    def test_plain_sgd_converges_on_quadratic(self):
        parameter = Parameter(np.zeros(4))
        optimizer = SGD([parameter], lr=0.1)
        for _ in range(200):
            optimizer.zero_grad()
            quadratic_step(parameter)
            optimizer.step()
        assert np.allclose(parameter.data, 3.0, atol=1e-3)

    def test_momentum_accelerates(self):
        plain = Parameter(np.zeros(1))
        momentum = Parameter(np.zeros(1))
        sgd_plain = SGD([plain], lr=0.01)
        sgd_momentum = SGD([momentum], lr=0.01, momentum=0.9)
        for _ in range(50):
            quadratic_step(plain); sgd_plain.step()
            quadratic_step(momentum); sgd_momentum.step()
        assert abs(momentum.data[0] - 3.0) < abs(plain.data[0] - 3.0)

    def test_weight_decay_shrinks_parameters(self):
        parameter = Parameter(np.ones(3) * 10.0)
        optimizer = SGD([parameter], lr=0.1, weight_decay=1.0)
        parameter.grad = np.zeros(3)
        optimizer.step()
        assert np.all(parameter.data < 10.0)

    def test_skips_parameters_without_gradient(self):
        parameter = Parameter(np.ones(2))
        SGD([parameter], lr=0.5).step()
        assert np.allclose(parameter.data, 1.0)

    def test_empty_parameter_list_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_negative_lr_raises(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.ones(1))], lr=-1.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        parameter = Parameter(np.zeros(5))
        optimizer = Adam([parameter], lr=0.1)
        for _ in range(300):
            optimizer.zero_grad()
            quadratic_step(parameter)
            optimizer.step()
        assert np.allclose(parameter.data, 3.0, atol=1e-2)

    def test_first_step_size_roughly_lr(self):
        parameter = Parameter(np.zeros(1))
        optimizer = Adam([parameter], lr=0.01)
        parameter.grad = np.array([5.0])
        optimizer.step()
        assert abs(abs(parameter.data[0]) - 0.01) < 1e-3

    def test_weight_decay(self):
        parameter = Parameter(np.ones(2) * 4.0)
        optimizer = Adam([parameter], lr=0.1, weight_decay=0.5)
        parameter.grad = np.zeros(2)
        optimizer.step()
        assert np.all(parameter.data < 4.0)

    def test_zero_grad(self):
        parameter = Parameter(np.ones(2))
        parameter.grad = np.ones(2)
        Adam([parameter], lr=0.1).zero_grad()
        assert parameter.grad is None


class TestClipGradNorm:
    def test_clips_large_gradients(self):
        parameter = Parameter(np.zeros(4))
        parameter.grad = np.ones(4) * 10.0
        norm_before = clip_grad_norm([parameter], max_norm=1.0)
        assert norm_before == pytest.approx(20.0)
        assert np.linalg.norm(parameter.grad) == pytest.approx(1.0, rel=1e-6)

    def test_leaves_small_gradients_alone(self):
        parameter = Parameter(np.zeros(2))
        parameter.grad = np.array([0.1, 0.1])
        clip_grad_norm([parameter], max_norm=5.0)
        assert np.allclose(parameter.grad, [0.1, 0.1])

    def test_ignores_missing_gradients(self):
        parameter = Parameter(np.zeros(2))
        assert clip_grad_norm([parameter], max_norm=1.0) == 0.0
