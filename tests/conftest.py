"""Shared fixtures: tiny deterministic datasets, splits and graphs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    BeibeiLikeConfig,
    GroupBuyingBehavior,
    GroupBuyingDataset,
    SocialEdge,
    generate_dataset,
    leave_one_out_split,
)
from repro.eval import LeaveOneOutEvaluator
from repro.graph import build_hetero_graph


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def tiny_dataset() -> GroupBuyingDataset:
    """A hand-written 6-user / 4-item dataset with known structure."""
    behaviors = [
        # user 0 launches item 0 and friends 1, 2 join (threshold 1 -> success)
        GroupBuyingBehavior(initiator=0, item=0, participants=(1, 2), threshold=1),
        # user 1 launches item 1, friend 0 joins (success)
        GroupBuyingBehavior(initiator=1, item=1, participants=(0,), threshold=1),
        # user 2 launches item 2, nobody joins (threshold 1 -> failure)
        GroupBuyingBehavior(initiator=2, item=2, participants=(), threshold=1),
        # user 3 launches item 3, friend 4 joins but threshold is 2 -> failure
        GroupBuyingBehavior(initiator=3, item=3, participants=(4,), threshold=2),
        # user 4 launches item 0, friends 3 and 5 join (success)
        GroupBuyingBehavior(initiator=4, item=0, participants=(3, 5), threshold=2),
        # user 0 launches item 2 again with friend 2 (success)
        GroupBuyingBehavior(initiator=0, item=2, participants=(2,), threshold=1),
    ]
    social = [
        SocialEdge(0, 1),
        SocialEdge(0, 2),
        SocialEdge(1, 2),
        SocialEdge(3, 4),
        SocialEdge(4, 5),
    ]
    return GroupBuyingDataset(num_users=6, num_items=4, behaviors=behaviors, social_edges=social, name="tiny")


@pytest.fixture(scope="session")
def small_dataset() -> GroupBuyingDataset:
    """A generated dataset, small but large enough to train briefly."""
    return generate_dataset(BeibeiLikeConfig.small(seed=99))


@pytest.fixture(scope="session")
def small_split(small_dataset):
    return leave_one_out_split(small_dataset, seed=5)


@pytest.fixture(scope="session")
def small_evaluator(small_split):
    return LeaveOneOutEvaluator(small_split, num_negatives=20, seed=0, cutoffs=(3, 5, 10, 20))


@pytest.fixture(scope="session")
def tiny_graph(tiny_dataset):
    return build_hetero_graph(tiny_dataset)


@pytest.fixture(scope="session")
def small_graph(small_split):
    return build_hetero_graph(small_split.train)
