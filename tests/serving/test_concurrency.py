"""Seeded multi-thread stress suite for the serving runtime (``-m stress``).

The catalog's thread-safety contract, checked head-on:

* **oracle parity** — N threads hammering a ``resident_budget=2`` catalog
  with mixed ``top_k``/``warm``/``evict``/hot-swap traffic produce results
  bitwise identical to replaying the same ops sequentially on a fresh
  catalog (serving results depend only on the artifact bytes, never on
  residency state or interleaving);
* **single-flight cold starts** — two threads never load the same artifact
  concurrently (per-entry load locks; the loser of the race reuses the
  winner's resident);
* **no torn reads** — requests racing a hot-swap return either the old or
  the new model's lists, never a mixture.

Collected by the tier-1 run at small scale (a few seconds); the `stress`
marker selects the suite alone (``pytest -m stress``).
"""

import threading
from collections import defaultdict

import numpy as np
import pytest

import repro.persist as persist
from repro.models import ModelSettings, build_model
from repro.persist import copy_artifact, save_model
from repro.serving import EmbeddingStore, ModelCatalog, ServingGateway, TopKRecommender, TrafficSplit

pytestmark = pytest.mark.stress

SETTINGS = ModelSettings(embedding_dim=8)
CATALOG_MODELS = {"gbgcn": "GBGCN", "mf": "MF", "itempop": "ItemPop"}
NUM_THREADS = 4
OPS_PER_THREAD = 24


@pytest.fixture()
def catalog_dir(small_split, tmp_path):
    directory = tmp_path / "models"
    for stem, model_name in CATALOG_MODELS.items():
        save_model(build_model(model_name, small_split.train, SETTINGS), directory / f"{stem}.npz")
    return directory


def _run_threads(workers):
    """Start, join, and re-raise the first exception from any worker."""
    failures = []

    def guarded(worker):
        def run():
            try:
                worker()
            except BaseException as error:  # noqa: BLE001 — surfaced below
                failures.append(error)

        return run

    threads = [threading.Thread(target=guarded(worker)) for worker in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if failures:
        raise failures[0]


class _SingleFlightProbe:
    """Wraps ``load_model`` to detect concurrent loads of the same artifact."""

    def __init__(self, real_load):
        self.real_load = real_load
        self.lock = threading.Lock()
        self.in_flight = set()
        self.loads = defaultdict(int)
        self.violations = []

    def __call__(self, path, dataset):
        name = path.stem
        with self.lock:
            if name in self.in_flight:
                self.violations.append(name)
            self.in_flight.add(name)
            self.loads[name] += 1
        try:
            return self.real_load(path, dataset)
        finally:
            with self.lock:
                self.in_flight.discard(name)


def _mixed_ops(seed, count, users_pool):
    """Deterministic mixed op stream: (kind, model, users)."""
    rng = np.random.default_rng(seed)
    names = sorted(CATALOG_MODELS)
    ops = []
    for _ in range(count):
        name = names[int(rng.integers(len(names)))]
        roll = float(rng.random())
        if roll < 0.70:
            users = rng.choice(users_pool, size=int(rng.integers(1, 9)), replace=False)
            ops.append(("top_k", name, np.sort(users).astype(np.int64)))
        elif roll < 0.85:
            ops.append(("warm", name, None))
        else:
            ops.append(("evict", name, None))
    return ops


class TestMixedTrafficOracleParity:
    def test_concurrent_results_bitwise_identical_to_sequential_replay(
        self, catalog_dir, small_split, monkeypatch, lock_watchdog
    ):
        users_pool = np.asarray(sorted(small_split.test))[:24]
        per_thread_ops = [
            _mixed_ops(seed=1000 + index, count=OPS_PER_THREAD, users_pool=users_pool)
            for index in range(NUM_THREADS)
        ]

        # Sequential oracle: one thread, one catalog, ops in order.
        oracle = ModelCatalog(catalog_dir, small_split.train, resident_budget=2)
        expected = [
            [
                oracle.recommender(name).recommend(users) if kind == "top_k" else None
                for kind, name, users in ops
            ]
            for ops in per_thread_ops
        ]

        probe = _SingleFlightProbe(persist.load_model)
        monkeypatch.setattr(persist, "load_model", probe)
        catalog = ModelCatalog(catalog_dir, small_split.train, resident_budget=2)
        lock_watchdog.watch_stack(catalog)
        results = [[None] * OPS_PER_THREAD for _ in range(NUM_THREADS)]
        barrier = threading.Barrier(NUM_THREADS)

        def worker(index):
            def run():
                barrier.wait()
                for op_index, (kind, name, users) in enumerate(per_thread_ops[index]):
                    if kind == "top_k":
                        results[index][op_index] = catalog.recommender(name).recommend(users)
                    elif kind == "warm":
                        catalog.warm(name)
                    else:
                        catalog.evict(name)

            return run

        _run_threads([worker(index) for index in range(NUM_THREADS)])

        # No torn reads, no interleaving effects: every op's result equals
        # the sequential replay's, bitwise.
        for thread_results, thread_expected in zip(results, expected):
            for result, reference in zip(thread_results, thread_expected):
                if reference is None:
                    continue
                assert np.array_equal(result.items, reference.items)
                assert np.array_equal(result.scores, reference.scores)

        # No model was ever cold-started by two threads at once.
        assert probe.violations == []
        # Internal accounting stayed consistent under the races.
        assert catalog.stats.cold_starts == sum(probe.loads.values())
        assert len(catalog.resident_names) <= 2

    def test_thundering_herd_cold_starts_exactly_once(
        self, catalog_dir, small_split, monkeypatch, lock_watchdog
    ):
        probe = _SingleFlightProbe(persist.load_model)
        monkeypatch.setattr(persist, "load_model", probe)
        catalog = ModelCatalog(catalog_dir, small_split.train)
        lock_watchdog.watch_stack(catalog)
        users = np.asarray(sorted(small_split.test))[:8]
        num_threads = 8
        barrier = threading.Barrier(num_threads)
        results = [None] * num_threads

        def worker(index):
            def run():
                barrier.wait()
                results[index] = catalog.recommender("gbgcn").recommend(users)

            return run

        _run_threads([worker(index) for index in range(num_threads)])

        assert probe.loads["gbgcn"] == 1  # the herd shared one load
        assert catalog.stats.cold_starts == 1
        assert catalog.stats.hits == num_threads - 1
        for result in results[1:]:
            assert np.array_equal(result.items, results[0].items)


class TestHotSwapUnderTraffic:
    def test_requests_racing_a_swap_see_old_or_new_never_torn(
        self, catalog_dir, small_split, tmp_path
    ):
        users = np.asarray(sorted(small_split.test))[:12]
        path = catalog_dir / "mf.npz"

        # Pre-build every version the publisher will push, plus its
        # reference result set.
        versions_dir = tmp_path / "versions"
        references = []
        for version_seed in range(4):
            model = build_model(
                "MF", small_split.train, SETTINGS, rng=np.random.default_rng(version_seed)
            )
            version_path = versions_dir / f"v{version_seed}.npz"
            save_model(model, version_path)
            store = EmbeddingStore.from_artifact(version_path, small_split.train)
            reference = TopKRecommender(store, k=10, dataset=small_split.train).recommend(users)
            references.append(reference)
        copy_artifact(versions_dir / "v0.npz", path)

        catalog = ModelCatalog(catalog_dir, small_split.train)
        catalog.warm("mf")
        stop = threading.Event()
        observed = []
        observed_lock = threading.Lock()

        def serve():
            while not stop.is_set():
                result = catalog.recommender("mf").recommend(users)
                with observed_lock:
                    observed.append(result)

        def publish():
            for version_seed in range(1, 4):
                copy_artifact(versions_dir / f"v{version_seed}.npz", path)
                catalog.reload("mf")  # take the swap now (as a warmer cycle would)
            stop.set()

        _run_threads([serve, serve, publish])

        assert len(observed) >= 3
        reference_items = [reference.items for reference in references]
        for result in observed:
            matches = [np.array_equal(result.items, items) for items in reference_items]
            assert any(matches), "request returned lists matching no published version (torn read)"
        # The final state serves the last published version.
        final = catalog.recommender("mf").recommend(users)
        assert np.array_equal(final.items, reference_items[-1])


class TestGatewayConcurrency:
    def test_split_traffic_from_many_threads_counts_every_row(self, catalog_dir, small_split):
        catalog = ModelCatalog(catalog_dir, small_split.train, resident_budget=2)
        gateway = ServingGateway(catalog, default_model="mf")
        split = TrafficSplit({"mf": 0.5, "gbgcn": 0.3, "itempop": 0.2}, seed=9)
        users = np.asarray(sorted(small_split.test))[:20]
        num_threads, rounds = 4, 6
        barrier = threading.Barrier(num_threads)

        def worker():
            barrier.wait()
            for _ in range(rounds):
                gateway.top_k_split(split, users, k=5)

        _run_threads([worker] * num_threads)

        total_rows = num_threads * rounds * users.size
        assert sum(gateway.request_counts.values()) == total_rows
        snap = gateway.metrics.snapshot()
        assert snap["totals"]["rows_served"] == total_rows
