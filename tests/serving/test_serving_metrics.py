"""MetricsRegistry / LatencyHistogram: counters, percentiles, thread safety."""

import json
import threading

import numpy as np
import pytest

from repro.serving import LatencyHistogram, MetricsRegistry


class TestLatencyHistogram:
    def test_empty_histogram(self):
        histogram = LatencyHistogram()
        assert histogram.count == 0
        assert histogram.percentile(50.0) == 0.0
        assert histogram.snapshot()["p99"] == 0.0

    def test_single_sample_everything_is_that_sample(self):
        histogram = LatencyHistogram()
        histogram.record(0.005)
        snap = histogram.snapshot()
        assert snap["count"] == 1
        assert snap["min"] == snap["max"] == 0.005
        # Percentiles clamp to the exact observed range.
        assert 0.005 <= snap["p50"] <= 0.005
        assert snap["p99"] == 0.005

    def test_percentiles_within_one_bucket_of_truth(self):
        histogram = LatencyHistogram()
        rng = np.random.default_rng(7)
        samples = rng.uniform(1e-4, 1e-1, size=5000)
        for sample in samples:
            histogram.record(float(sample))
        for q in (50.0, 95.0, 99.0):
            exact = float(np.percentile(samples, q))
            estimate = histogram.percentile(q)
            # Upper-bound reporting over log buckets (ratio 1.122): at most
            # one bucket high, and (modulo rank rounding) never low.
            assert exact * 0.85 <= estimate <= exact * 1.13, (q, exact, estimate)

    def test_mean_and_extremes_are_exact(self):
        histogram = LatencyHistogram()
        for value in (0.001, 0.002, 0.009):
            histogram.record(value)
        assert histogram.count == 3
        assert histogram.mean_seconds == pytest.approx(0.004)
        assert histogram.min_seconds == 0.001
        assert histogram.max_seconds == 0.009

    def test_out_of_range_percentile_rejected(self):
        with pytest.raises(ValueError, match="percentile"):
            LatencyHistogram().percentile(101.0)

    def test_outlier_beyond_last_bucket_reports_max(self):
        histogram = LatencyHistogram()
        histogram.record(120.0)  # beyond the 64 s top bound
        assert histogram.percentile(99.0) == 120.0


class TestMetricsRegistry:
    def test_counters_accumulate_per_model(self):
        registry = MetricsRegistry()
        registry.record_request("a", rows=10, seconds=0.01)
        registry.record_request("a", rows=5, seconds=0.02)
        registry.record_request("b", rows=1, seconds=0.001)
        registry.record_cold_start("a", seconds=0.05)
        registry.record_reload("a")
        registry.record_eviction("b")
        registry.record_error("b")

        snap = registry.snapshot()
        assert snap["models"]["a"]["requests"] == 2
        assert snap["models"]["a"]["rows_served"] == 15
        assert snap["models"]["a"]["cold_starts"] == 1
        assert snap["models"]["a"]["reloads"] == 1
        assert snap["models"]["b"]["evictions"] == 1
        assert snap["models"]["b"]["errors"] == 1
        assert snap["totals"]["requests"] == 3
        assert snap["totals"]["rows_served"] == 16

    def test_snapshot_is_json_serializable_and_detached(self):
        registry = MetricsRegistry()
        registry.record_request("a", rows=2, seconds=0.003)
        snap = registry.snapshot()
        json.dumps(snap)  # plain dict all the way down
        snap["models"]["a"]["requests"] = 999  # mutating the export...
        assert registry.snapshot()["models"]["a"]["requests"] == 1  # ...changes nothing

    def test_disabled_registry_is_a_noop(self):
        registry = MetricsRegistry(enabled=False)
        registry.record_request("a", rows=10, seconds=0.01)
        registry.record_cold_start("a", seconds=0.05)
        snap = registry.snapshot()
        assert snap["models"] == {}
        assert snap["enabled"] is False

    def test_reset_drops_everything(self):
        registry = MetricsRegistry()
        registry.record_request("a", rows=1, seconds=0.001)
        registry.reset()
        assert registry.snapshot()["models"] == {}

    def test_concurrent_recording_loses_no_increment(self):
        registry = MetricsRegistry()
        per_thread, num_threads = 500, 8
        barrier = threading.Barrier(num_threads)

        def hammer(name):
            barrier.wait()
            for _ in range(per_thread):
                registry.record_request(name, rows=1, seconds=0.001)
                registry.record_eviction(name)

        threads = [
            threading.Thread(target=hammer, args=(f"m{i % 2}",)) for i in range(num_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        snap = registry.snapshot()
        assert snap["totals"]["requests"] == per_thread * num_threads
        assert snap["totals"]["evictions"] == per_thread * num_threads
        total_latency = sum(
            snap["models"][name]["request_latency"]["count"] for name in snap["models"]
        )
        assert total_latency == per_thread * num_threads
