"""Fork-safety of the serving runtime (regression: pre-fix this deadlocks).

``os.fork`` clones exactly one thread; every lock another thread holds at
fork time is cloned *locked forever* in the child.  The serving stack is
full of such locks (catalog, metrics registry, gateway counters, warmer
state) plus a warmer daemon thread the child inherits a dead handle to.
``repro.serving.forksafe`` re-initializes all of that via a process-wide
``os.register_at_fork`` hook.

``test_child_serves_while_parent_threads_hold_every_lock`` is the
regression test: it forks while a parent thread deliberately holds the
catalog lock, the metrics lock, the gateway counter lock and the warmer
state lock, then requires the child to scan/serve/snapshot.  Without the
fork hooks the child blocks on the first inherited lock and the test
fails by watchdog timeout.
"""

import os
import select
import signal
import sys
import threading

import numpy as np
import pytest

from repro.models import ModelSettings, build_model
from repro.persist import LAYOUT_DIR, save_model
from repro.serving import CatalogWarmer, ModelCatalog, ServingGateway, forksafe

pytestmark = [
    pytest.mark.procs,
    pytest.mark.skipif(not hasattr(os, "fork"), reason="os.fork unavailable"),
]

SETTINGS = ModelSettings(embedding_dim=8)
CHILD_DEADLINE_SECONDS = 30.0


@pytest.fixture()
def stack(small_split, tmp_path):
    directory = tmp_path / "models"
    save_model(build_model("MF", small_split.train, SETTINGS), directory / "mf.npz")
    save_model(
        build_model("ItemPop", small_split.train, SETTINGS),
        directory / "pop.npyd",
        layout=LAYOUT_DIR,
    )
    catalog = ModelCatalog(directory, small_split.train)
    gateway = ServingGateway(catalog, default_model="mf")
    warmer = CatalogWarmer(catalog)
    return catalog, gateway, warmer


def _run_in_fork(child_work) -> None:
    """Fork; run ``child_work`` in the child; fail the test if it hangs.

    The child reports success by writing a byte to a pipe and leaves with
    ``os._exit`` (never returning into pytest).  The parent watchdogs the
    pipe: a child deadlocked on an inherited lock is SIGKILLed and the
    test fails with a diagnosis instead of hanging the suite.
    """
    read_fd, write_fd = os.pipe()
    pid = os.fork()
    if pid == 0:  # child
        status = 1
        try:
            os.close(read_fd)
            child_work()
            os.write(write_fd, b"k")
            status = 0
        except BaseException:
            try:
                import traceback

                traceback.print_exc(file=sys.stderr)
                sys.stderr.flush()
            except BaseException:
                pass
        finally:
            os._exit(status)

    os.close(write_fd)
    try:
        readable, _, _ = select.select([read_fd], [], [], CHILD_DEADLINE_SECONDS)
        if not readable:
            os.kill(pid, signal.SIGKILL)
            os.waitpid(pid, 0)
            pytest.fail(
                f"forked child did not finish within {CHILD_DEADLINE_SECONDS:.0f}s — "
                f"deadlocked on a lock inherited locked from a parent thread"
            )
        assert os.read(read_fd, 1) == b"k", "child reported failure (see stderr)"
        _, status = os.waitpid(pid, 0)
        assert os.waitstatus_to_exitcode(status) == 0
    finally:
        os.close(read_fd)


class _LockHolder:
    """Holds a set of locks from a background thread across a fork window."""

    def __init__(self, locks):
        self.locks = locks
        self._hold = threading.Event()
        self._holding = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        for lock in self.locks:
            lock.acquire()
        self._holding.set()
        self._hold.wait()
        for lock in reversed(self.locks):
            lock.release()

    def __enter__(self):
        self._thread.start()
        assert self._holding.wait(timeout=10.0), "lock-holder thread never acquired"
        return self

    def __exit__(self, *exc):
        self._hold.set()
        self._thread.join(timeout=10.0)


def test_child_serves_while_parent_threads_hold_every_lock(stack):
    """REGRESSION — deadlocks without the ``os.register_at_fork`` hooks."""
    catalog, gateway, warmer = stack
    gateway.top_k(np.arange(4))  # locks + metrics exercised before the fork

    def child_work():
        assert sorted(catalog.names) == ["mf", "pop"]
        catalog.scan()
        result = gateway.top_k(np.arange(4), k=5)
        assert result.items.shape == (4, 5)
        snapshot = catalog.metrics.snapshot()
        assert snapshot["totals"]["requests"] >= 1
        warmer.run_once()

    locks = [
        catalog._lock,
        catalog.metrics._lock,
        gateway._counts_lock,
        warmer._state_lock,
    ]
    with _LockHolder(locks):
        _run_in_fork(child_work)


def test_child_sees_fresh_warmer_thread_state(stack):
    """The child must not inherit a ghost handle to the parent's warmer thread."""
    catalog, gateway, warmer = stack
    warmer.start()
    try:
        assert warmer.running

        def child_work():
            # The parent's daemon thread does not exist here; the handle must
            # say so, and a fresh warmer lifecycle must be possible.
            assert not warmer.running
            warmer.start()
            assert warmer.wait_for_cycles(1, timeout=20.0)
            warmer.stop()

        _run_in_fork(child_work)
    finally:
        warmer.stop(raise_errors=False)


def test_per_entry_load_locks_are_reset_in_child(stack):
    """Cold-start single-flight locks are also re-initialized per child."""
    catalog, gateway, warmer = stack
    catalog.warm("mf")
    entry_locks = [entry.load_lock for entry in catalog.entries.values()]
    assert entry_locks

    def child_work():
        catalog.evict("mf")
        catalog.warm("mf")  # would block forever on a cloned held load lock
        assert "mf" in catalog.resident_names

    with _LockHolder(entry_locks):
        _run_in_fork(child_work)


class TestProtectApi:
    def test_protect_requires_the_reinit_hook(self):
        with pytest.raises(TypeError, match="_reinit_after_fork_in_child"):
            forksafe.protect(object())

    def test_protect_registers_and_is_weak(self):
        class Reinitable:
            def _reinit_after_fork_in_child(self):
                pass

        before = forksafe.protected_count()
        instance = Reinitable()
        forksafe.protect(instance)
        assert forksafe.protected_count() == before + 1
        del instance
        import gc

        gc.collect()
        assert forksafe.protected_count() == before
