"""IVF retrieval: index mechanics, recall-vs-exact parity, serving wiring."""

import numpy as np
import pytest

from repro.models import ModelSettings, build_model
from repro.models.registry import SERVABLE_MODEL_NAMES
from repro.persist import read_retrieval_state, save_model
from repro.serving import (
    EmbeddingStore,
    ModelCatalog,
    RetrievalIndex,
    RetrievalIndexError,
    RetrievalPolicy,
    ServingGateway,
    TopKRecommender,
    build_index_for_model,
)

SETTINGS = ModelSettings(embedding_dim=8)

#: Every servable model must clear this recall@10 bar against exact search
#: (the retrieval layer's correctness gate; tune nprobe, never lower this).
RECALL_FLOOR = 0.95


@pytest.fixture(scope="module")
def item_factors():
    return np.random.default_rng(7).normal(size=(500, 8))


class TestRetrievalIndex:
    def test_build_is_deterministic(self, item_factors):
        first = RetrievalIndex.build(item_factors, num_cells=16, seed=3)
        second = RetrievalIndex.build(item_factors, num_cells=16, seed=3)
        assert np.array_equal(first.centroids, second.centroids)
        assert np.array_equal(first.cell_offsets, second.cell_offsets)
        assert np.array_equal(first.cell_items, second.cell_items)

    def test_cells_partition_the_catalog(self, item_factors):
        index = RetrievalIndex.build(item_factors, num_cells=16, seed=0)
        assert index.num_items == item_factors.shape[0]
        assert sorted(index.cell_items.tolist()) == list(range(item_factors.shape[0]))

    def test_full_probe_shortlists_everything(self, item_factors):
        index = RetrievalIndex.build(item_factors, num_cells=16, nprobe=16, seed=0)
        shortlist = index.shortlist(item_factors[:3])
        for candidates in shortlist:
            assert sorted(candidates.tolist()) == list(range(item_factors.shape[0]))

    def test_narrow_probe_keeps_the_best_cell(self, item_factors):
        index = RetrievalIndex.build(item_factors, num_cells=16, seed=0)
        query = np.random.default_rng(1).normal(size=(1, 8))
        candidates = index.shortlist(query, nprobe=1)[0]
        assert 0 < candidates.size < item_factors.shape[0]

    def test_default_cells_scale_with_sqrt(self, item_factors):
        index = RetrievalIndex.build(item_factors, seed=0)
        assert index.num_cells == int(round(500 ** 0.5))

    def test_invalid_inputs_raise(self, item_factors):
        with pytest.raises(RetrievalIndexError, match="2-D"):
            RetrievalIndex.build(np.zeros(5))
        with pytest.raises(RetrievalIndexError, match="num_cells"):
            RetrievalIndex.build(item_factors, num_cells=0)
        with pytest.raises(RetrievalIndexError, match="num_cells"):
            RetrievalIndex.build(item_factors, num_cells=501)
        index = RetrievalIndex.build(item_factors, num_cells=8)
        with pytest.raises(RetrievalIndexError, match="dim"):
            index.shortlist(np.zeros((1, 3)))
        with pytest.raises(RetrievalIndexError, match="nprobe"):
            index.shortlist(item_factors[:1], nprobe=0)

    def test_state_roundtrip(self, item_factors):
        index = RetrievalIndex.build(item_factors, num_cells=16, nprobe=5, seed=9)
        clone = RetrievalIndex.from_state(index.params(), index.state_arrays())
        assert clone.nprobe == 5
        assert clone.seed == 9
        assert np.array_equal(clone.centroids, index.centroids)
        assert np.array_equal(clone.cell_items, index.cell_items)

    def test_from_state_rejects_foreign_kind(self, item_factors):
        index = RetrievalIndex.build(item_factors, num_cells=8)
        params = dict(index.params(), kind="hnsw/v9")
        with pytest.raises(RetrievalIndexError, match="hnsw/v9"):
            RetrievalIndex.from_state(params, index.state_arrays())

    def test_from_state_rejects_missing_arrays(self, item_factors):
        index = RetrievalIndex.build(item_factors, num_cells=8)
        arrays = dict(index.state_arrays())
        del arrays["centroids"]
        with pytest.raises(RetrievalIndexError, match="centroids"):
            RetrievalIndex.from_state(index.params(), arrays)

    def test_from_state_rejects_item_count_mismatch(self, item_factors):
        index = RetrievalIndex.build(item_factors, num_cells=8)
        params = dict(index.params(), num_items=index.num_items + 1)
        with pytest.raises(RetrievalIndexError, match="declares"):
            RetrievalIndex.from_state(params, index.state_arrays())


def _recall_vs_exact(dense, approx, k=10):
    """Tie-tolerant recall@k: an approx item counts when its (exact) score
    reaches the dense k-th best score — ANN recall must not be penalized
    for returning a different member of a score tie.  A small relative
    tolerance absorbs the few-ULP drift between the dense GEMM and the
    per-row rescore (different BLAS reduction orders)."""
    hits = 0
    total = 0
    for row in range(dense.items.shape[0]):
        threshold = dense.scores[row, k - 1]
        tolerance = 1e-9 * max(1.0, abs(threshold)) if np.isfinite(threshold) else 0.0
        hits += int(np.sum(approx.scores[row, :k] >= threshold - tolerance))
        total += k
    return hits / total


class TestRecallParity:
    @pytest.mark.parametrize("model_name", SERVABLE_MODEL_NAMES)
    def test_recall_at_10_meets_floor(self, small_split, model_name):
        model = build_model(model_name, small_split.train, SETTINGS, rng=np.random.default_rng(0))
        store = EmbeddingStore(model)
        # A 40-item catalog is IVF's worst case (each cell holds ~12% of
        # the catalog), so the floor needs a generous-but-not-exhaustive
        # probe: 7 of 8 cells.  At production scale the same floor holds
        # with a ~5% shortlist — see benchmarks/test_retrieval_scaling.py.
        index = build_index_for_model(model, num_cells=8, nprobe=7, seed=0)
        dense = TopKRecommender(store, k=10, dataset=small_split.full)
        users = np.arange(small_split.train.num_users, dtype=np.int64)
        exact = dense.recommend(users)
        if index is None:
            # No inner-product factorization: the recommender transparently
            # serves the dense path, so recall is 1.0 by construction.
            approx = TopKRecommender(store, k=10, dataset=small_split.full).recommend(users)
            assert np.array_equal(approx.items, exact.items)
            return
        fast = TopKRecommender(store, k=10, dataset=small_split.full, retriever=index)
        approx = fast.recommend(users)
        recall = _recall_vs_exact(exact, approx, k=10)
        assert recall >= RECALL_FLOOR, f"{model_name}: recall@10 {recall:.3f} < {RECALL_FLOOR}"

    def test_full_probe_is_exact_parity(self, small_split):
        model = build_model("MF", small_split.train, SETTINGS, rng=np.random.default_rng(0))
        store = EmbeddingStore(model)
        index = build_index_for_model(model, num_cells=6, nprobe=6, seed=0)
        users = np.arange(small_split.train.num_users, dtype=np.int64)
        exact = TopKRecommender(store, k=10, dataset=small_split.full).recommend(users)
        approx = TopKRecommender(store, k=10, dataset=small_split.full, retriever=index).recommend(users)
        assert _recall_vs_exact(exact, approx, k=10) == 1.0
        assert np.allclose(
            np.sort(exact.scores, axis=1), np.sort(approx.scores, axis=1), equal_nan=True
        )

    def test_retriever_catalog_size_mismatch_rejected(self, small_split):
        model = build_model("MF", small_split.train, SETTINGS)
        store = EmbeddingStore(model)
        foreign = RetrievalIndex.build(np.random.default_rng(0).normal(size=(99, 8)))
        with pytest.raises(ValueError, match="99 items"):
            TopKRecommender(store, retriever=foreign, exclude_observed=False)


@pytest.fixture()
def fleet_dir(small_split, tmp_path):
    directory = tmp_path / "fleet"
    for stem, name in {"mf": "MF", "gbgcn": "GBGCN", "itemknn": "ItemKNN"}.items():
        save_model(
            build_model(name, small_split.train, SETTINGS, rng=np.random.default_rng(0)),
            directory / f"{stem}.npz",
        )
    return directory


class TestCatalogIntegration:
    def test_cold_start_builds_index_per_policy(self, fleet_dir, small_split):
        catalog = ModelCatalog(
            fleet_dir, small_split.train, retrieval=RetrievalPolicy(num_cells=6, nprobe=6)
        )
        assert catalog.retriever("mf") is not None
        assert catalog.retriever("mf").num_items == small_split.train.num_items
        # Sparse-similarity models expose no factors: dense fallback, no index.
        assert catalog.retriever("itemknn") is None

    def test_no_policy_means_no_index(self, fleet_dir, small_split):
        catalog = ModelCatalog(fleet_dir, small_split.train)
        assert catalog.retriever("mf") is None

    def test_min_items_gate_skips_small_catalogs(self, fleet_dir, small_split):
        catalog = ModelCatalog(
            fleet_dir, small_split.train, retrieval=RetrievalPolicy(min_items=10_000)
        )
        assert catalog.retriever("mf") is None

    def test_gateway_parity_with_retrieval(self, fleet_dir, small_split):
        users = np.arange(16, dtype=np.int64)
        plain = ServingGateway(ModelCatalog(fleet_dir, small_split.train), default_model="mf")
        fast = ServingGateway(
            ModelCatalog(
                fleet_dir, small_split.train, retrieval=RetrievalPolicy(num_cells=6, nprobe=6)
            ),
            default_model="mf",
        )
        assert np.array_equal(plain.top_k(users, k=5).items, fast.top_k(users, k=5).items)

    def test_mixed_batch_routes_through_retrievers(self, fleet_dir, small_split):
        catalog = ModelCatalog(
            fleet_dir, small_split.train, retrieval=RetrievalPolicy(num_cells=6, nprobe=6)
        )
        gateway = ServingGateway(catalog)
        requests = [("mf", 1), ("gbgcn", 2), ("mf", 3), ("itemknn", 1)]
        result = gateway.top_k_mixed(requests, k=5)
        assert result.models == ["mf", "gbgcn", "mf", "itemknn"]
        assert result.items.shape == (4, 5)
        assert (result.for_request(0) >= 0).all()

    def test_hot_swap_rebuilds_index(self, fleet_dir, small_split):
        catalog = ModelCatalog(
            fleet_dir, small_split.train, retrieval=RetrievalPolicy(num_cells=6, nprobe=6)
        )
        before = catalog.retriever("mf")
        save_model(
            build_model("MF", small_split.train, SETTINGS, rng=np.random.default_rng(5)),
            fleet_dir / "mf.npz",
        )
        catalog.reload("mf", force=True)
        after = catalog.retriever("mf")
        assert after is not None
        assert after is not before
        assert not np.array_equal(before.centroids, after.centroids)


class TestArtifactEmbeddedIndex:
    def test_roundtrip_through_artifact(self, small_split, tmp_path):
        model = build_model("MF", small_split.train, SETTINGS, rng=np.random.default_rng(0))
        index = build_index_for_model(model, num_cells=6, nprobe=4, seed=11)
        path = tmp_path / "mf.npz"
        header = save_model(model, path, retrieval_index=index)
        assert header.retrieval["num_cells"] == 6
        params, arrays = read_retrieval_state(path)
        restored = RetrievalIndex.from_state(params, arrays)
        assert restored.seed == 11
        assert np.array_equal(restored.centroids, index.centroids)
        assert np.array_equal(restored.cell_items, index.cell_items)

    def test_plain_artifact_has_no_index(self, small_split, tmp_path):
        model = build_model("MF", small_split.train, SETTINGS)
        path = tmp_path / "mf.npz"
        save_model(model, path)
        assert read_retrieval_state(path) is None

    def test_catalog_prefers_embedded_index(self, small_split, tmp_path):
        directory = tmp_path / "fleet"
        model = build_model("MF", small_split.train, SETTINGS, rng=np.random.default_rng(0))
        embedded = build_index_for_model(model, num_cells=4, nprobe=4, seed=42)
        save_model(model, directory / "mf.npz", retrieval_index=embedded)
        catalog = ModelCatalog(
            directory, small_split.train, retrieval=RetrievalPolicy(num_cells=6, seed=0)
        )
        # The seed proves provenance: the policy would rebuild with seed=0,
        # the artifact's sidecar was built with seed=42.
        assert catalog.retriever("mf").seed == 42
        assert catalog.retriever("mf").num_cells == 4

    def test_policy_can_force_rebuild(self, small_split, tmp_path):
        directory = tmp_path / "fleet"
        model = build_model("MF", small_split.train, SETTINGS, rng=np.random.default_rng(0))
        embedded = build_index_for_model(model, num_cells=4, nprobe=4, seed=42)
        save_model(model, directory / "mf.npz", retrieval_index=embedded)
        catalog = ModelCatalog(
            directory,
            small_split.train,
            retrieval=RetrievalPolicy(num_cells=6, seed=0, prefer_artifact_index=False),
        )
        assert catalog.retriever("mf").seed == 0
        assert catalog.retriever("mf").num_cells == 6

    def test_checkpoint_publishes_retrieval_index(self, small_split, tmp_path):
        from repro.training.callbacks import ModelCheckpoint

        model = build_model("MF", small_split.train, SETTINGS, rng=np.random.default_rng(0))
        checkpoint = ModelCheckpoint(
            tmp_path / "best.npz",
            save_best_only=False,
            publish_retrieval=True,
            retrieval_num_cells=4,
        )

        class _Trainer:
            pass

        trainer = _Trainer()
        trainer.model = model
        checkpoint._save(trainer)
        params, _ = read_retrieval_state(tmp_path / "best.npz")
        assert params["num_cells"] == 4

    def test_checkpoint_retrieval_knobs_need_opt_in(self, tmp_path):
        from repro.training.callbacks import ModelCheckpoint

        with pytest.raises(ValueError, match="publish_retrieval"):
            ModelCheckpoint(tmp_path / "best.npz", retrieval_num_cells=4)
