"""CatalogWarmer: background rescan/pre-warm, off-request hot-swap, errors."""

import shutil

import numpy as np
import pytest

from repro.models import ModelSettings, build_model
from repro.persist import save_model
from repro.serving import (
    CatalogWarmer,
    CatalogWarmerError,
    EmbeddingStore,
    ModelCatalog,
    TopKRecommender,
)

SETTINGS = ModelSettings(embedding_dim=8)
CATALOG_MODELS = {"gbgcn": "GBGCN", "mf": "MF", "itempop": "ItemPop"}


@pytest.fixture()
def catalog_dir(small_split, tmp_path):
    directory = tmp_path / "models"
    for stem, model_name in CATALOG_MODELS.items():
        save_model(build_model(model_name, small_split.train, SETTINGS), directory / f"{stem}.npz")
    return directory


@pytest.fixture()
def catalog(catalog_dir, small_split):
    return ModelCatalog(catalog_dir, small_split.train)


def some_users(split):
    return np.asarray(sorted(split.test))[:16]


class TestRunOnce:
    def test_warms_every_servable_model(self, catalog):
        warmer = CatalogWarmer(catalog)
        warmed = warmer.run_once()
        assert sorted(warmed) == sorted(CATALOG_MODELS)
        assert all(seconds > 0.0 for seconds in warmed.values())
        assert sorted(catalog.resident_names) == sorted(CATALOG_MODELS)
        # A second cycle is all residency hits — nothing reloads.
        assert all(seconds == 0.0 for seconds in CatalogWarmer(catalog).run_once().values())

    def test_warms_only_configured_names(self, catalog):
        warmer = CatalogWarmer(catalog, names=["mf", "not-published-yet"])
        warmed = warmer.run_once()
        assert sorted(warmed) == ["mf"]  # unknown configured names are skipped, not errors
        assert catalog.resident_names == ["mf"]

    def test_rescan_picks_up_new_artifact(self, catalog, catalog_dir, small_split):
        save_model(build_model("LightGCN", small_split.train, SETTINGS), catalog_dir / "lightgcn.npz")
        warmed = CatalogWarmer(catalog).run_once()
        assert "lightgcn" in warmed
        assert "lightgcn" in catalog.resident_names

    def test_hot_swap_happens_off_the_request_path(self, catalog, catalog_dir, small_split):
        # The zero-latency guarantee: after the warmer cycle absorbs a
        # republished artifact, the next request is a plain residency hit —
        # it pays neither the reload detection nor the model load.
        users = some_users(small_split)
        warmer = CatalogWarmer(catalog)
        warmer.run_once()
        before = catalog.recommender("mf").recommend(users)

        replacement = build_model("MF", small_split.train, SETTINGS, rng=np.random.default_rng(5))
        save_model(replacement, catalog_dir / "mf.npz")
        warmer.run_once()  # swap absorbed here, off the request path
        reloads_after_cycle = catalog.stats.reloads
        cold_starts_after_cycle = catalog.stats.cold_starts
        assert reloads_after_cycle == 1

        after = catalog.recommender("mf").recommend(users)
        # The request itself triggered no reload and no cold start.
        assert catalog.stats.reloads == reloads_after_cycle
        assert catalog.stats.cold_starts == cold_starts_after_cycle
        assert not np.array_equal(before.scores, after.scores)
        reference_store = EmbeddingStore.from_artifact(catalog_dir / "mf.npz", small_split.train)
        reference = TopKRecommender(reference_store, k=10, dataset=small_split.train).recommend(users)
        assert np.array_equal(after.items, reference.items)

    def test_synchronous_cycle_raises_on_unreadable_directory(self, catalog, catalog_dir):
        shutil.rmtree(catalog_dir)
        with pytest.raises(Exception, match="does not exist"):
            CatalogWarmer(catalog).run_once()

    def test_one_failing_model_does_not_starve_the_rest_of_the_cycle(
        self, catalog, monkeypatch
    ):
        # 'gbgcn' sorts first: pre-fix, its failure aborted the cycle and
        # 'itempop'/'mf' never got warmed.
        import repro.persist as persist

        real_load = persist.load_model

        def failing_load(path, dataset):
            if path.stem == "gbgcn":
                raise FileNotFoundError(path)
            return real_load(path, dataset)

        monkeypatch.setattr(persist, "load_model", failing_load)
        warmer = CatalogWarmer(catalog)
        with pytest.raises(CatalogWarmerError, match="gbgcn"):
            warmer.run_once()
        assert sorted(catalog.resident_names) == ["itempop", "mf"]  # still warmed


class TestBackgroundThread:
    def test_start_cycle_stop(self, catalog):
        warmer = CatalogWarmer(catalog, interval_seconds=0.05)
        warmer.start()
        assert warmer.running
        assert warmer.wait_for_cycles(2, timeout=10.0)
        warmer.stop()
        assert not warmer.running
        assert sorted(catalog.resident_names) == sorted(CATALOG_MODELS)
        assert warmer.errors == []

    def test_context_manager_form(self, catalog):
        with CatalogWarmer(catalog, interval_seconds=0.05) as warmer:
            assert warmer.wait_for_cycles(1, timeout=10.0)
        assert not warmer.running

    def test_double_start_rejected(self, catalog):
        warmer = CatalogWarmer(catalog, interval_seconds=0.05).start()
        try:
            with pytest.raises(RuntimeError, match="already running"):
                warmer.start()
        finally:
            warmer.stop()

    def test_background_errors_are_recorded_and_raised_on_stop(self, catalog, catalog_dir):
        warmer = CatalogWarmer(catalog, interval_seconds=0.02)
        warmer.start()
        assert warmer.wait_for_cycles(1, timeout=10.0)
        shutil.rmtree(catalog_dir)  # every later cycle now fails
        cycles_before = warmer.cycles
        assert warmer.wait_for_cycles(cycles_before + 2, timeout=10.0)
        assert warmer.last_error is not None
        # The loop kept running between failures instead of dying silently.
        assert len(warmer.errors) >= 1
        with pytest.raises(CatalogWarmerError, match="cycle"):
            warmer.stop()
        assert not warmer.running
        assert warmer.errors == []  # reported errors are drained on stop()

    def test_restart_after_reported_failure_starts_clean(
        self, catalog, catalog_dir, small_split, tmp_path
    ):
        # Regression: stop() used to keep reported errors, so a restarted
        # warmer's clean stop() re-raised the previous run's failure.
        warmer = CatalogWarmer(catalog, interval_seconds=0.02).start()
        moved = tmp_path / "moved"
        catalog_dir.rename(moved)  # cycles now fail...
        warmer.wait_for_cycles(warmer.cycles + 2, timeout=10.0)
        with pytest.raises(CatalogWarmerError):
            warmer.stop()
        moved.rename(catalog_dir)  # ...operator fixes the directory...
        warmer.start()             # ...and restarts the same warmer
        assert warmer.wait_for_cycles(warmer.cycles + 2, timeout=10.0)
        warmer.stop()              # must NOT re-raise the handled old error
        assert warmer.errors == []

    def test_stop_can_suppress_error_reraise(self, catalog, catalog_dir):
        warmer = CatalogWarmer(catalog, interval_seconds=0.02).start()
        shutil.rmtree(catalog_dir)
        warmer.wait_for_cycles(warmer.cycles + 2, timeout=10.0)
        warmer.stop(raise_errors=False)  # no raise
        assert warmer.last_error is not None

    def test_exception_in_with_body_is_not_masked(self, catalog, catalog_dir):
        with pytest.raises(KeyError, match="body-error"):
            with CatalogWarmer(catalog, interval_seconds=0.02):
                shutil.rmtree(catalog_dir)
                raise KeyError("body-error")

    def test_invalid_interval_rejected(self, catalog):
        with pytest.raises(ValueError, match="interval_seconds"):
            CatalogWarmer(catalog, interval_seconds=0.0)

    def test_invalid_max_errors_rejected(self, catalog):
        # max_errors=0 would make the retention slice `del errors[:-0]` a
        # no-op and grow the error list without bound.
        with pytest.raises(ValueError, match="max_errors"):
            CatalogWarmer(catalog, max_errors=0)
