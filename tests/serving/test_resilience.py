"""Tests for `repro.serving.resilience` and its gateway/warmer wiring.

Covers the three primitives in isolation (Deadline, AdmissionController,
CircuitBreaker), then the integrated behavior a deployment actually sees:
typed sheds, typed deadline failures, breakers opening on repeated model
faults, the degraded fallback chain, warmer-driven half-open probes, and
the failure counters surviving snapshot + merge.
"""

import pickle
import threading
import time

import numpy as np
import pytest

from repro.models import build_model
from repro.persist import save_model
from repro.serving import (
    AdmissionController,
    CatalogWarmer,
    CircuitBreaker,
    CircuitOpenError,
    Deadline,
    DeadlineExceededError,
    FaultPlan,
    FaultRule,
    MetricsRegistry,
    ModelCatalog,
    OverloadedError,
    ResiliencePolicy,
    ResilienceState,
    ServingError,
    ServingGateway,
    ServingUnavailableError,
    inject,
)
from repro.serving.resilience import ADMIT_ALLOW, ADMIT_PROBE, ADMIT_REJECT


@pytest.fixture()
def serving_dir(tmp_path, small_split):
    """Two published artifacts: the primary ('mf') and a cheap fallback ('itempop')."""
    for spec in ("MF", "ItemPop"):
        save_model(build_model(spec, small_split.train), tmp_path / f"{spec.lower()}.npz")
    return tmp_path


def make_gateway(serving_dir, small_split, **policy_kwargs):
    policy = ResiliencePolicy(**policy_kwargs)
    catalog = ModelCatalog(serving_dir, small_split.train)
    return ServingGateway(catalog, default_model="mf", policy=policy)


class TestDeadline:
    def test_after_and_remaining(self):
        deadline = Deadline.after(60.0)
        assert not deadline.expired
        assert 0.0 < deadline.remaining() <= 60.0

    def test_expired_check_raises_typed(self):
        with pytest.raises(DeadlineExceededError, match="doom"):
            Deadline.after(0.0).check("doom")

    def test_coerce(self):
        assert Deadline.coerce(None) is None
        deadline = Deadline.after(1.0)
        assert Deadline.coerce(deadline) is deadline
        coerced = Deadline.coerce(0.5)
        assert isinstance(coerced, Deadline) and coerced.remaining() <= 0.5

    def test_negative_seconds_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            Deadline.after(-1.0)

    def test_pickles_as_absolute_expiry(self):
        deadline = Deadline.after(30.0)
        clone = pickle.loads(pickle.dumps(deadline))
        assert clone.expires_at == deadline.expires_at


class TestAdmissionController:
    def test_total_budget_sheds_the_excess(self):
        admission = AdmissionController(max_inflight=2)
        releases = [admission.acquire("a"), admission.acquire("b")]
        with pytest.raises(OverloadedError, match="shed"):
            admission.acquire("c")
        releases[0]()
        admission.acquire("c")  # freed slot admits again

    def test_per_model_budget(self):
        admission = AdmissionController(max_inflight_per_model=1)
        admission.acquire("a")
        with pytest.raises(OverloadedError, match="per-model"):
            admission.acquire("a")
        admission.acquire("b")  # another model is unaffected

    def test_release_is_idempotent(self):
        admission = AdmissionController(max_inflight=1)
        release = admission.acquire("a")
        release()
        release()
        assert admission.inflight() == 0

    def test_shed_errors_are_retryable_typed(self):
        admission = AdmissionController(max_inflight=1)
        admission.acquire("a")
        with pytest.raises(ServingUnavailableError):
            admission.acquire("a")

    def test_invalid_budgets(self):
        with pytest.raises(ValueError):
            AdmissionController(max_inflight=0)
        with pytest.raises(ValueError):
            AdmissionController(max_inflight_per_model=0)


class TestCircuitBreaker:
    def test_opens_at_threshold_and_reports_transition(self):
        breaker = CircuitBreaker(failure_threshold=2, reset_seconds=60.0)
        assert breaker.record_failure() is False
        assert breaker.record_failure() is True  # exactly this call opened it
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.times_opened == 1

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        assert breaker.record_failure() is False, "streak restarted after success"

    def test_half_open_probe_is_single_claim(self):
        clock = [0.0]
        breaker = CircuitBreaker(failure_threshold=1, reset_seconds=10.0, clock=lambda: clock[0])
        breaker.record_failure()
        assert not breaker.allow(), "inside reset window"
        clock[0] = 11.0
        assert breaker.allow(), "first caller past the window claims the probe"
        assert breaker.state == "half-open"
        assert not breaker.allow(), "probe slot already claimed"

    def test_failed_probe_reopens_with_fresh_timer(self):
        clock = [0.0]
        breaker = CircuitBreaker(failure_threshold=1, reset_seconds=10.0, clock=lambda: clock[0])
        breaker.record_failure()
        clock[0] = 11.0
        assert breaker.allow()
        assert breaker.record_failure() is True  # failed probe re-opens
        clock[0] = 20.0  # 9s after the re-open: still inside the fresh window
        assert not breaker.allow()
        clock[0] = 21.5
        assert breaker.allow()

    def test_successful_probe_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_seconds=0.0)
        breaker.record_failure()
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_admit_distinguishes_the_probe_claim(self):
        clock = [0.0]
        breaker = CircuitBreaker(failure_threshold=1, reset_seconds=10.0, clock=lambda: clock[0])
        assert breaker.admit() == ADMIT_ALLOW
        breaker.record_failure()
        assert breaker.admit() == ADMIT_REJECT
        clock[0] = 11.0
        assert breaker.admit() == ADMIT_PROBE, "first caller past the window is the probe"
        assert breaker.admit() == ADMIT_REJECT, "probe slot single-claim"

    def test_release_probe_hands_the_slot_back_immediately(self):
        clock = [0.0]
        breaker = CircuitBreaker(failure_threshold=1, reset_seconds=10.0, clock=lambda: clock[0])
        breaker.record_failure()
        clock[0] = 11.0
        assert breaker.admit() == ADMIT_PROBE
        breaker.release_probe()  # probe ended for a model-unrelated reason
        assert breaker.state == "open"
        assert breaker.admit() == ADMIT_PROBE, (
            "a released probe is claimable again at once — no failure counted, "
            "no fresh reset window"
        )
        assert breaker.times_opened == 1, "release is not a failure"

    def test_leaked_probe_verdict_self_heals_after_a_reset_window(self):
        clock = [0.0]
        breaker = CircuitBreaker(failure_threshold=1, reset_seconds=10.0, clock=lambda: clock[0])
        breaker.record_failure()
        clock[0] = 11.0
        assert breaker.admit() == ADMIT_PROBE
        # The claimant dies without ever reporting a verdict.
        clock[0] = 15.0
        assert breaker.admit() == ADMIT_REJECT, "still inside the claimant's window"
        clock[0] = 21.0
        assert breaker.admit() == ADMIT_PROBE, (
            "a wedged half-open breaker must re-open its probe slot after a "
            "full reset window — a leaked probe can never disable a model forever"
        )

    def test_snapshot_is_plain(self):
        snap = CircuitBreaker().snapshot()
        assert snap["state"] == "closed"
        assert snap["times_opened"] == 0


class TestPolicy:
    def test_defaults_are_permissive(self):
        policy = ResiliencePolicy()
        assert policy.deadline_seconds is None
        assert policy.max_inflight is None
        assert policy.serve_stale_on_failure is True
        assert policy.fallback_models == ()

    def test_policy_pickles(self):
        policy = ResiliencePolicy(deadline_seconds=1.0, fallback_models=("itempop",))
        assert pickle.loads(pickle.dumps(policy)) == policy

    def test_invalid_deadline_rejected(self):
        with pytest.raises(ValueError, match="deadline_seconds"):
            ResiliencePolicy(deadline_seconds=0.0)


class TestGatewayWithoutPolicy:
    """No policy: behavior identical to before, but deadlines still work."""

    def test_resilience_attr_is_none(self, serving_dir, small_split):
        gateway = ServingGateway(ModelCatalog(serving_dir, small_split.train), default_model="mf")
        assert gateway.resilience is None
        assert gateway.top_k(np.arange(4), k=3).items.shape == (4, 3)

    def test_explicit_deadline_still_enforced(self, serving_dir, small_split):
        gateway = ServingGateway(ModelCatalog(serving_dir, small_split.train), default_model="mf")
        with pytest.raises(DeadlineExceededError):
            gateway.top_k(np.arange(4), deadline=Deadline(time.monotonic() - 1.0))
        snap = gateway.metrics.snapshot()
        assert snap["totals"]["deadline_exceeded"] == 1
        assert snap["totals"]["requests"] == 0


class TestGatewayShedding:
    def test_burst_beyond_budget_sheds_typed_and_counted(self, serving_dir, small_split):
        gateway = make_gateway(serving_dir, small_split, max_inflight=1)
        release = gateway.resilience.admission.acquire("elsewhere")  # occupy the budget
        with pytest.raises(OverloadedError):
            gateway.top_k(np.arange(4))
        release()
        assert gateway.top_k(np.arange(4)).items.shape[0] == 4
        snap = gateway.metrics.snapshot()
        assert snap["models"]["mf"]["sheds"] == 1
        assert snap["totals"]["sheds"] == 1

    def test_inflight_budget_released_after_failure(self, serving_dir, small_split):
        gateway = make_gateway(serving_dir, small_split, max_inflight=1, serve_stale_on_failure=False)
        gateway.catalog.evict_all()
        plan = FaultPlan([FaultRule("gateway.score", count=1)])
        with inject(plan):
            with pytest.raises(Exception):
                gateway.top_k(np.arange(4))
        assert gateway.resilience.admission.inflight() == 0, "failure path must release"
        assert gateway.top_k(np.arange(4)).items.shape[0] == 4


class TestGatewayDeadlines:
    def test_policy_default_deadline_applies(self, serving_dir, small_split):
        gateway = make_gateway(serving_dir, small_split, deadline_seconds=30.0)
        assert gateway.top_k(np.arange(4)).items.shape[0] == 4  # generous default: serves

    def test_expired_deadline_is_typed_and_counted_not_served(self, serving_dir, small_split):
        gateway = make_gateway(serving_dir, small_split)
        with pytest.raises(DeadlineExceededError):
            gateway.top_k(np.arange(4), deadline=Deadline(time.monotonic() - 0.1))
        snap = gateway.metrics.snapshot()
        assert snap["totals"]["deadline_exceeded"] == 1
        assert snap["totals"]["requests"] == 0, "an expired request is never counted as served"

    def test_deadline_bounds_cold_start_lock_wait(self, serving_dir, small_split):
        """A request stuck behind another thread's stalled load fails typed."""
        gateway = make_gateway(serving_dir, small_split)
        catalog = gateway.catalog
        entry = catalog.entry("mf")
        assert entry.load_lock.acquire()  # emulate a stalled in-flight load
        try:
            started = time.perf_counter()
            with pytest.raises(DeadlineExceededError, match="cold start"):
                catalog.store("mf", Deadline.after(0.05))
            assert time.perf_counter() - started < 5.0, "bounded, not request_timeout-scale"
        finally:
            entry.load_lock.release()
        assert catalog.store("mf") is not None  # unblocked: serves normally


class TestBreakerAndFallback:
    def evict_and_fault(self, gateway, match="mf"):
        gateway.catalog.evict_all()
        return FaultPlan([FaultRule("catalog.cold_start", match=match, count=None)])

    def test_repeated_model_faults_open_breaker_and_serve_stale(self, serving_dir, small_split):
        gateway = make_gateway(serving_dir, small_split, breaker_failure_threshold=2,
                               breaker_reset_seconds=60.0)
        healthy = gateway.top_k(np.arange(6), k=4)  # seeds last-good
        with inject(self.evict_and_fault(gateway)):
            for _ in range(4):
                degraded = gateway.top_k(np.arange(6), k=4)
                assert degraded.items.tobytes() == healthy.items.tobytes(), (
                    "stale fallback serves the last-good bytes of the same model"
                )
        snap = gateway.metrics.snapshot()
        assert snap["models"]["mf"]["fallbacks_served"] == 4
        assert snap["models"]["mf"]["breaker_opens"] == 1
        assert gateway.resilience.breaker("mf").state == "open"

    def test_fallback_model_serves_when_no_stale_copy_exists(self, serving_dir, small_split):
        gateway = make_gateway(
            serving_dir, small_split,
            breaker_failure_threshold=1, breaker_reset_seconds=60.0,
            serve_stale_on_failure=False, fallback_models=("itempop",),
        )
        gateway.catalog.evict_all()
        reference = ServingGateway(
            ModelCatalog(serving_dir, small_split.train), default_model="itempop"
        ).top_k(np.arange(6), k=4)
        with inject(self.evict_and_fault(gateway)):
            result = gateway.top_k(np.arange(6), k=4)
        assert result.items.tobytes() == reference.items.tobytes(), (
            "the cheap fallback model's answer, never a wrong or partial one"
        )
        snap = gateway.metrics.snapshot()
        assert snap["models"]["mf"]["fallbacks_served"] == 1
        assert snap["models"]["itempop"]["requests"] == 1, "rows land on the serving model"

    def test_exhausted_chain_is_typed_circuit_open(self, serving_dir, small_split):
        gateway = make_gateway(
            serving_dir, small_split,
            breaker_failure_threshold=1, serve_stale_on_failure=False,
        )
        gateway.catalog.evict_all()
        with inject(self.evict_and_fault(gateway)):
            with pytest.raises(CircuitOpenError, match="mf"):
                gateway.top_k(np.arange(4))
        snap = gateway.metrics.snapshot()
        assert snap["models"]["mf"]["errors"] >= 1

    def test_open_breaker_skips_the_failing_model_entirely(self, serving_dir, small_split):
        gateway = make_gateway(
            serving_dir, small_split,
            breaker_failure_threshold=1, breaker_reset_seconds=60.0,
            serve_stale_on_failure=False, fallback_models=("itempop",),
        )
        gateway.catalog.evict_all()
        plan = self.evict_and_fault(gateway)
        with inject(plan):
            gateway.top_k(np.arange(4))  # opens the breaker, serves fallback
            cold_starts_after_open = plan.calls.get("catalog.cold_start", 0)
            gateway.top_k(np.arange(4))  # breaker open: primary never attempted
            assert plan.calls.get("catalog.cold_start", 0) == cold_starts_after_open
        assert gateway.metrics.snapshot()["models"]["mf"]["fallbacks_served"] == 2

    def test_client_errors_do_not_trip_the_breaker(self, serving_dir, small_split):
        gateway = make_gateway(serving_dir, small_split, breaker_failure_threshold=1)
        for _ in range(3):
            with pytest.raises(ServingError):
                gateway.top_k(np.asarray([-1]))
        assert gateway.resilience.breaker("mf").state == "closed"

    def test_scores_has_no_fallback_but_fails_typed(self, serving_dir, small_split):
        gateway = make_gateway(serving_dir, small_split, breaker_failure_threshold=1)
        gateway.resilience.breaker("mf").record_failure()  # force open
        with pytest.raises(CircuitOpenError, match="no fallback"):
            gateway.scores(np.arange(2), np.arange(3))

    def test_grouped_routing_isolates_a_broken_model(self, serving_dir, small_split):
        gateway = make_gateway(
            serving_dir, small_split,
            breaker_failure_threshold=1, serve_stale_on_failure=False,
        )
        gateway.catalog.evict_all()
        with inject(self.evict_and_fault(gateway)):
            with pytest.raises(CircuitOpenError):
                gateway.top_k_mixed([("mf", 1), ("itempop", 2)])
            # itempop alone still serves while mf's breaker is open.
            result = gateway.top_k_mixed([("itempop", 1), ("itempop", 2)])
        assert result.items.shape[0] == 2


class TestProbeVerdictAlwaysLands:
    """Regression: a claimed half-open probe must never leak its verdict.

    A probe request that dies mid-serve for *any* reason — most likely a
    deadline expiring during the very cold start that opened the breaker —
    used to leave the breaker half-open forever: every later request was
    rejected and the warmer's ``try_probe`` could never claim the slot, so
    the model was permanently offline.
    """

    def test_probe_that_misses_its_deadline_reopens_not_wedges(
        self, serving_dir, small_split
    ):
        gateway = make_gateway(
            serving_dir, small_split,
            breaker_failure_threshold=1, breaker_reset_seconds=0.0,
            serve_stale_on_failure=False,
        )
        gateway.catalog.evict_all()
        with inject(FaultPlan([FaultRule("gateway.score", match="mf", count=1)])):
            with pytest.raises(ServingUnavailableError):
                gateway.top_k(np.arange(4))
        breaker = gateway.resilience.breaker("mf")
        assert breaker.state == "open"
        # Reset window (0s) elapsed: the next request claims the probe, but
        # a stall pushes it past its deadline before the cold start begins.
        # Deadline expiry during a probe's cold start is exactly the
        # slowness that opened the breaker — it must count as a *failed
        # probe*, never wedge the breaker half-open.
        stall = FaultPlan([FaultRule("gateway.score", kind="stall", seconds=0.25, count=1)])
        with inject(stall):
            with pytest.raises(DeadlineExceededError):
                gateway.top_k(np.arange(4), deadline=0.05)
        assert breaker.state == "open", (
            "a probe that missed its deadline must re-open the breaker, "
            "not leave it half-open with the probe slot claimed forever"
        )
        # And recovery still works off the request path: the warmer claims
        # a fresh probe, the fault is gone, the breaker closes.
        warmer = CatalogWarmer(gateway.catalog, resilience=gateway.resilience)
        warmer.run_once()
        assert warmer.last_probe_results == {"mf": True}
        assert breaker.state == "closed"
        assert gateway.top_k(np.arange(4)).items.shape[0] == 4

    def test_probe_deadline_failure_counts_breaker_reopen(self, serving_dir, small_split):
        gateway = make_gateway(
            serving_dir, small_split,
            breaker_failure_threshold=1, breaker_reset_seconds=0.0,
            serve_stale_on_failure=False,
        )
        gateway.catalog.evict_all()
        with inject(FaultPlan([FaultRule("gateway.score", match="mf", count=1)])):
            with pytest.raises(ServingUnavailableError):
                gateway.top_k(np.arange(4))
        stall = FaultPlan([FaultRule("gateway.score", kind="stall", seconds=0.25, count=1)])
        with inject(stall):
            with pytest.raises(DeadlineExceededError):
                gateway.top_k(np.arange(4), deadline=0.05)
        snap = gateway.metrics.snapshot()
        assert snap["models"]["mf"]["breaker_opens"] == 2, (
            "the failed probe's re-open is observable, like any other open"
        )
        assert snap["models"]["mf"]["deadline_exceeded"] == 1


class TestFallbackAdmission:
    """Fallback serves book the *serving* model's per-model admission share."""

    def test_fallback_serve_respects_the_fallback_models_budget(
        self, serving_dir, small_split
    ):
        gateway = make_gateway(
            serving_dir, small_split,
            max_inflight_per_model=1,
            breaker_failure_threshold=1, breaker_reset_seconds=60.0,
            serve_stale_on_failure=False, fallback_models=("itempop",),
        )
        gateway.catalog.evict_all()
        # Saturate the fallback model's per-model budget from elsewhere.
        release = gateway.resilience.admission.acquire("itempop")
        plan = FaultPlan([FaultRule("catalog.cold_start", match="mf", count=None)])
        with inject(plan):
            with pytest.raises(CircuitOpenError, match="per-model budget full"):
                # The primary faults; the fallback would serve, but its
                # budget is full — skipped, and the chain ends typed.
                gateway.top_k(np.arange(4))
            release()
            # Budget freed: the same outage now serves from the fallback.
            result = gateway.top_k(np.arange(4))
        assert result.items.shape[0] == 4
        assert gateway.metrics.snapshot()["models"]["mf"]["fallbacks_served"] == 1
        assert gateway.resilience.admission.inflight("itempop") == 0, (
            "the fallback's per-model share is released after the serve"
        )

    def test_fallback_admission_never_double_charges_the_total_budget(
        self, serving_dir, small_split
    ):
        gateway = make_gateway(
            serving_dir, small_split,
            max_inflight=1,  # the request itself holds the only total slot
            breaker_failure_threshold=1, breaker_reset_seconds=60.0,
            serve_stale_on_failure=False, fallback_models=("itempop",),
        )
        gateway.catalog.evict_all()
        with inject(FaultPlan([FaultRule("catalog.cold_start", match="mf", count=None)])):
            # If the fallback acquisition counted against the total budget
            # this would shed against the request's own slot and fail.
            result = gateway.top_k(np.arange(4))
        assert result.items.shape[0] == 4
        assert gateway.metrics.snapshot()["totals"]["sheds"] == 0


class TestGroupedBatchAttemptsEveryGroup:
    def test_groups_after_a_failed_group_still_serve_and_count(
        self, serving_dir, small_split
    ):
        gateway = make_gateway(
            serving_dir, small_split,
            breaker_failure_threshold=1, serve_stale_on_failure=False,
        )
        gateway.catalog.evict_all()
        with inject(FaultPlan([FaultRule("catalog.cold_start", match="mf", count=None)])):
            # 'mf' is listed first, so its group fails first — 'itempop'
            # must still be attempted before the batch raises.
            with pytest.raises(CircuitOpenError):
                gateway.top_k_mixed([("mf", 1), ("itempop", 2), ("itempop", 3)])
        snap = gateway.metrics.snapshot()
        assert snap["models"]["itempop"]["requests"] == 1, (
            "the healthy group was served (one grouped serve, counted) even "
            "though an earlier group's failure fails the batch"
        )
        assert snap["models"]["mf"]["errors"] >= 1


class TestWarmerProbes:
    def test_probe_recovers_a_healed_model_off_the_request_path(self, serving_dir, small_split):
        gateway = make_gateway(
            serving_dir, small_split,
            breaker_failure_threshold=1, breaker_reset_seconds=0.0,
            serve_stale_on_failure=False, fallback_models=("itempop",),
        )
        gateway.catalog.evict_all()
        plan = FaultPlan([FaultRule("catalog.cold_start", match="mf", count=2)])
        with inject(plan):
            gateway.top_k(np.arange(4))  # fault -> breaker opens -> fallback
        assert gateway.resilience.breaker("mf").state == "open"
        warmer = CatalogWarmer(gateway.catalog, resilience=gateway.resilience)
        warmer.run_once()  # fault window passed: the probe warms and closes
        assert warmer.last_probe_results == {"mf": True}
        assert gateway.resilience.breaker("mf").state == "closed"
        assert "mf" in gateway.catalog.resident_names, "probe pre-warmed; next request is a hit"

    def test_failed_probe_reopens_and_cycle_survives(self, serving_dir, small_split):
        gateway = make_gateway(
            serving_dir, small_split,
            breaker_failure_threshold=1, breaker_reset_seconds=0.0,
            serve_stale_on_failure=False, fallback_models=("itempop",),
        )
        gateway.catalog.evict_all()
        warmer = CatalogWarmer(
            gateway.catalog, names=["itempop"], resilience=gateway.resilience
        )
        plan = FaultPlan([FaultRule("catalog.cold_start", match="mf", count=None)])
        with inject(plan):
            gateway.top_k(np.arange(4))
            warmer.run_once()  # probe fails against the persisting fault
            assert warmer.last_probe_results == {"mf": False}
            assert gateway.resilience.breaker("mf").state == "open"

    def test_probe_never_rides_a_request(self, serving_dir, small_split):
        """While the breaker is open (timer not elapsed), requests never cold-start."""
        gateway = make_gateway(
            serving_dir, small_split,
            breaker_failure_threshold=1, breaker_reset_seconds=3600.0,
            serve_stale_on_failure=False, fallback_models=("itempop",),
        )
        gateway.catalog.evict_all()
        plan = FaultPlan([FaultRule("catalog.cold_start", match="mf", count=None)])
        with inject(plan):
            gateway.top_k(np.arange(4))
            attempts = plan.calls.get("catalog.cold_start", 0)
            for _ in range(5):
                gateway.top_k(np.arange(4))
            assert plan.calls.get("catalog.cold_start", 0) == attempts


class TestFailureMetrics:
    """Satellite: failure counters in snapshots, surviving merge_snapshots."""

    def test_all_failure_counters_appear_in_snapshot(self):
        registry = MetricsRegistry()
        registry.record_shed("m")
        registry.record_deadline_exceeded("m")
        registry.record_breaker_open("m")
        registry.record_fallback("m")
        snap = registry.snapshot()
        for key in ("sheds", "deadline_exceeded", "breaker_opens", "fallbacks_served"):
            assert snap["models"]["m"][key] == 1
            assert snap["totals"][key] == 1

    def test_counters_survive_merge(self):
        registries = [MetricsRegistry() for _ in range(3)]
        for i, registry in enumerate(registries):
            for _ in range(i + 1):
                registry.record_shed("m")
                registry.record_fallback("m")
            registry.record_deadline_exceeded("m")
        fleet = MetricsRegistry.merge_snapshots([r.snapshot() for r in registries])
        assert fleet["totals"]["sheds"] == 6
        assert fleet["totals"]["fallbacks_served"] == 6
        assert fleet["totals"]["deadline_exceeded"] == 3

    def test_merge_tolerates_old_snapshots_without_new_keys(self):
        old = MetricsRegistry()
        old.record_request("m", rows=2, seconds=0.01)
        old_snap = old.snapshot()
        for model in old_snap["models"].values():
            for key in ("sheds", "deadline_exceeded", "breaker_opens", "fallbacks_served"):
                model.pop(key, None)
        new = MetricsRegistry()
        new.record_shed("m")
        fleet = MetricsRegistry.merge_snapshots([old_snap, new.snapshot()])
        assert fleet["totals"]["sheds"] == 1
        assert fleet["totals"]["requests"] == 1

    def test_disabled_registry_ignores_failure_records(self):
        registry = MetricsRegistry(enabled=False)
        registry.record_shed("m")
        registry.record_deadline_exceeded("m")
        assert registry.snapshot()["models"] == {}
