"""Unit tests for the seeded fault-injection harness (`repro.serving.faults`).

The harness is the instrument the chaos suite measures with, so its own
semantics must be airtight first: deterministic windows, substring
matching, seeded probability streams, pickling across the spawn boundary,
and the artifact-corruption primitive.
"""

import pickle
import threading
import time

import numpy as np
import pytest

from repro.persist import save_model
from repro.serving.faults import (
    FaultPlan,
    FaultRule,
    InjectedFaultError,
    active_plan,
    clear_plan,
    corrupt_artifact,
    fault_point,
    inject,
    install_plan,
)


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """Every test starts and ends with no process-wide plan installed."""
    clear_plan()
    yield
    clear_plan()


class TestFaultRule:
    def test_window_selection(self):
        rule = FaultRule("s", start=2, count=3)
        assert [rule.in_window(i) for i in range(7)] == [
            False, False, True, True, True, False, False,
        ]

    def test_count_none_fires_forever(self):
        rule = FaultRule("s", start=1, count=None)
        assert not rule.in_window(0)
        assert rule.in_window(10_000)

    def test_invalid_construction(self):
        with pytest.raises(ValueError, match="kind"):
            FaultRule("s", kind="explode")
        with pytest.raises(ValueError, match="start/count"):
            FaultRule("s", start=-1)
        with pytest.raises(ValueError, match="probability"):
            FaultRule("s", probability=1.5)
        with pytest.raises(ValueError, match="stall seconds"):
            FaultRule("s", kind="stall", seconds=-0.1)


class TestFaultPlan:
    def test_error_rule_fires_only_in_window(self):
        plan = FaultPlan([FaultRule("site", kind="error", start=1, count=1)])
        with inject(plan):
            fault_point("site")  # call 0: before the window
            with pytest.raises(InjectedFaultError, match=r"site=site, call=1"):
                fault_point("site")  # call 1: fires
            fault_point("site")  # call 2: past the window
        assert plan.calls == {"site": 3}
        assert plan.total_triggered("site", "error") == 1

    def test_match_filters_by_detail_substring(self):
        plan = FaultPlan([FaultRule("site", match="mf", count=None)])
        with inject(plan):
            fault_point("site", "itempop.npz")  # no match: passes
            with pytest.raises(InjectedFaultError):
                fault_point("site", "mf.npz")
        # The no-match call still advanced the site counter.
        assert plan.calls["site"] == 2
        assert plan.total_triggered() == 1

    def test_custom_error_type(self):
        plan = FaultPlan([FaultRule("site", error_type=OSError, error_message="EIO")])
        with inject(plan):
            with pytest.raises(OSError, match="EIO"):
                fault_point("site")

    def test_stall_sleeps_then_continues(self):
        plan = FaultPlan([FaultRule("site", kind="stall", seconds=0.05, count=1)])
        with inject(plan):
            started = time.perf_counter()
            fault_point("site")  # stalls, then returns normally
            assert time.perf_counter() - started >= 0.04
        assert plan.total_triggered("site", "stall") == 1

    def test_probability_stream_is_seeded_and_deterministic(self):
        def firing_pattern(seed):
            plan = FaultPlan([FaultRule("site", probability=0.5, count=None)], seed=seed)
            fired = []
            with inject(plan):
                for _ in range(64):
                    try:
                        fault_point("site")
                        fired.append(0)
                    except InjectedFaultError:
                        fired.append(1)
            return fired

        pattern = firing_pattern(seed=7)
        assert pattern == firing_pattern(seed=7), "same seed must replay identically"
        assert pattern != firing_pattern(seed=8), "different seed must differ"
        assert 0 < sum(pattern) < 64, "p=0.5 should fire some but not all"

    def test_first_matching_rule_wins(self):
        plan = FaultPlan(
            [
                FaultRule("site", error_message="first", count=None),
                FaultRule("site", error_message="second", count=None),
            ]
        )
        with inject(plan):
            with pytest.raises(InjectedFaultError, match="first"):
                fault_point("site")
        assert plan.total_triggered() == 1

    def test_plan_pickles_and_replays_from_zero(self):
        plan = FaultPlan([FaultRule("site", start=1, count=1)], seed=3)
        with inject(plan):
            with pytest.raises(InjectedFaultError):
                fault_point("site"), fault_point("site")
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.calls == {}, "unpickled plan restarts its call counters"
        with inject(clone):
            clone_outcomes = []
            for _ in range(2):
                try:
                    fault_point("site")
                    clone_outcomes.append("ok")
                except InjectedFaultError:
                    clone_outcomes.append("fault")
        assert clone_outcomes == ["ok", "fault"], "clone replays the same schedule"

    def test_thread_safety_of_counters(self):
        plan = FaultPlan([FaultRule("site", start=10**9)])  # never fires
        errors = []

        def hammer():
            try:
                for _ in range(500):
                    fault_point("site")
            except BaseException as error:  # noqa: BLE001 — collected for assert
                errors.append(error)

        with inject(plan):
            threads = [threading.Thread(target=hammer) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors
        assert plan.calls["site"] == 8 * 500


class TestInstallation:
    def test_no_plan_is_a_noop(self):
        fault_point("anything")  # must not raise

    def test_install_and_clear(self):
        plan = FaultPlan([FaultRule("site")])
        install_plan(plan)
        assert active_plan() is plan
        clear_plan()
        assert active_plan() is None
        fault_point("site")  # cleared: no-op again

    def test_inject_restores_previous_plan(self):
        outer = FaultPlan([FaultRule("outer", start=10**9)])
        install_plan(outer)
        with inject(FaultPlan([FaultRule("inner", start=10**9)])) as inner:
            assert active_plan() is inner
        assert active_plan() is outer


class TestCorruptArtifact:
    def test_npz_corruption_is_seeded_and_breaks_the_read(self, tmp_path, small_split):
        from repro.models import build_model
        from repro.persist import ArtifactError, read_artifact_header

        path = tmp_path / "mf.npz"
        save_model(build_model("MF", small_split.train), path)
        before = path.read_bytes()
        offsets = corrupt_artifact(path, seed=5)
        assert offsets == sorted(offsets) and len(offsets) > 0
        after = path.read_bytes()
        assert len(before) == len(after)
        assert all(before[o] != after[o] for o in offsets)
        with pytest.raises((ArtifactError, OSError)):
            read_artifact_header(path)
        # Seeded: corrupting the pristine bytes again flips the same offsets.
        path.write_bytes(before)
        assert corrupt_artifact(path, seed=5) == offsets

    def test_dir_layout_targets_header_json(self, tmp_path, small_split):
        from repro.models import build_model
        from repro.persist import ArtifactError, read_artifact_header

        path = tmp_path / "mf.npyd"
        save_model(build_model("MF", small_split.train), path, layout="dir")
        header = (path / "header.json").read_bytes()
        corrupt_artifact(path, seed=1)
        assert (path / "header.json").read_bytes() != header
        with pytest.raises((ArtifactError, ValueError, OSError)):
            read_artifact_header(path)

    def test_empty_file_refused(self, tmp_path):
        empty = tmp_path / "empty.npz"
        empty.write_bytes(b"")
        with pytest.raises(ValueError, match="empty"):
            corrupt_artifact(empty)


class TestScanRetries:
    """Satellite: bounded, jittered retry for transient scan-path failures."""

    def _publish(self, tmp_path, small_split):
        from repro.models import build_model

        save_model(build_model("MF", small_split.train), tmp_path / "mf.npz")
        return tmp_path

    def test_transient_header_error_is_retried_to_success(self, tmp_path, small_split):
        from repro.persist import scan_artifact_directory

        directory = self._publish(tmp_path, small_split)
        plan = FaultPlan(
            [FaultRule("persist.read_header", error_type=OSError, error_message="EIO", count=1)]
        )
        with inject(plan):
            scan = scan_artifact_directory(directory, retry_backoff_seconds=0.001)
        assert sorted(scan.entries) == ["mf"], "one transient EIO must not drop the artifact"
        assert not scan.failures
        assert plan.total_triggered() == 1

    def test_persistent_failure_surfaces_after_bounded_retries(self, tmp_path, small_split):
        from repro.persist import scan_artifact_directory

        directory = self._publish(tmp_path, small_split)
        plan = FaultPlan(
            [
                FaultRule(
                    "persist.read_header",
                    error_type=OSError,
                    error_message="disk on fire",
                    count=None,
                )
            ]
        )
        with inject(plan):
            scan = scan_artifact_directory(directory, retries=2, retry_backoff_seconds=0.001)
        assert "mf.npz" in scan.failures
        assert "disk on fire" in scan.failures["mf.npz"]
        # Bounded: 1 initial + 2 retries, never an unbounded loop.
        assert plan.calls["persist.read_header"] == 3

    def test_zero_retries_fails_on_first_error(self, tmp_path, small_split):
        from repro.persist import scan_artifact_directory

        directory = self._publish(tmp_path, small_split)
        plan = FaultPlan(
            [FaultRule("persist.read_header", error_type=OSError, count=None)]
        )
        with inject(plan):
            scan = scan_artifact_directory(directory, retries=0)
        assert "mf.npz" in scan.failures
        assert plan.calls["persist.read_header"] == 1

    def test_warmer_cycle_survives_transient_scan_fault(self, tmp_path, small_split):
        from repro.serving import CatalogWarmer, ModelCatalog

        directory = self._publish(tmp_path, small_split)
        catalog = ModelCatalog(directory, small_split.train)
        warmer = CatalogWarmer(catalog)
        plan = FaultPlan(
            [FaultRule("persist.read_header", error_type=OSError, error_message="EIO", count=1)]
        )
        with inject(plan):
            warmed = warmer.run_once()
        assert "mf" in warmed, "a transient header EIO must not fail the warm cycle"
