"""The committed BENCH_serving.json must be a valid v5 trajectory record.

Tier-1 guard for the benchmark artifact the serving benchmarks co-write:
``benchmarks/test_catalog_serving.py`` (catalog/gateway numbers),
``benchmarks/test_retrieval_scaling.py`` (the retrieval scaling curve),
``benchmarks/test_worker_scaling.py`` (multi-process worker scaling) and
``benchmarks/test_resilience_overhead.py`` (resilience-layer cost + SLO).
A partial rewrite that drops another writer's section, or a schema bump
without regenerating the file, fails here instead of going stale silently.
"""

import json
from pathlib import Path

import pytest

BENCH_PATH = Path(__file__).resolve().parents[2] / "BENCH_serving.json"

SCHEMA = "repro-serving-bench/v5"
REQUIRED_SECTIONS = {
    "cold_start",
    "mixed_traffic",
    "warm_vs_cold_latency",
    "retrieval_scaling",
    "worker_scaling",
    "resilience",
}
REQUIRED_POINT_KEYS = {
    "num_items",
    "num_cells",
    "nprobe",
    "index_build_seconds",
    "recall_at_10",
    "dense_request_ms",
    "retrieval_request_ms",
    "speedup",
}


@pytest.fixture(scope="module")
def bench():
    assert BENCH_PATH.exists(), f"{BENCH_PATH} missing; run the slow serving benchmarks"
    return json.loads(BENCH_PATH.read_text())


def test_schema_is_v5(bench):
    assert bench["schema"] == SCHEMA


def test_required_sections_present(bench):
    assert REQUIRED_SECTIONS <= set(bench["results"])


def test_scaling_curve_shape(bench):
    curve = bench["results"]["retrieval_scaling"]
    points = curve["points"]
    assert len(points) >= 3
    sizes = [point["num_items"] for point in points]
    assert sizes == sorted(sizes)
    assert sizes[-1] >= 1_000_000
    for point in points:
        assert REQUIRED_POINT_KEYS <= set(point), f"point {point['num_items']} missing keys"


def test_recall_gate_held_at_every_scale(bench):
    for point in bench["results"]["retrieval_scaling"]["points"]:
        assert point["recall_at_10"] >= 0.95, f"{point['num_items']} items: {point['recall_at_10']}"


def test_retrieval_beats_dense_at_scale(bench):
    # The PR's acceptance criterion: at >= 100k items, shortlist-then-rescore
    # must beat the dense per-request scan.
    at_scale = [
        point
        for point in bench["results"]["retrieval_scaling"]["points"]
        if point["num_items"] >= 100_000
    ]
    assert at_scale, "curve records no >=100k-item point"
    for point in at_scale:
        assert point["retrieval_request_ms"] < point["dense_request_ms"]
        assert point["speedup"] > 1.0


WORKER_POINT_KEYS = {
    "workers",
    "cpu_bound_req_s",
    "io_stall_req_s",
    "io_stall_speedup_vs_1",
    "cpu_bound_speedup_vs_1",
    "io_stall_fleet_p50_ms",
    "io_stall_fleet_p99_ms",
}


def test_worker_scaling_shape(bench):
    section = bench["results"]["worker_scaling"]
    # The environment the curve was measured on must be recorded: a flat
    # cpu-bound curve on 1 CPU and a flat one on 16 CPUs mean different things.
    assert section["cpus"] >= 1
    assert section["io_stall_ms"] > 0.0
    assert section["artifact_layout"] == "dir"
    points = section["points"]
    workers = [point["workers"] for point in points]
    assert workers == sorted(workers)
    assert workers[0] == 1 and workers[-1] >= 4
    for point in points:
        assert WORKER_POINT_KEYS <= set(point), f"{point['workers']}-worker point missing keys"
        assert point["io_stall_req_s"] > 0.0
        assert point["cpu_bound_req_s"] > 0.0


RESILIENCE_OVERHEAD_KEYS = {
    "plain_req_s",
    "resilient_req_s",
    "overhead_pct",
    "gate_pct",
    "trials",
}
RESILIENCE_SLO_KEYS = {
    "requests",
    "deadline_ms",
    "stall_ms",
    "stall_probability",
    "ok",
    "deadline_exceeded",
    "ok_p50_ms",
    "ok_p99_ms",
    "failure_p99_ms",
}


def test_resilience_section_shape(bench):
    section = bench["results"]["resilience"]
    assert RESILIENCE_OVERHEAD_KEYS <= set(section["overhead"])
    assert RESILIENCE_SLO_KEYS <= set(section["slo_under_stalls"])
    slo = section["slo_under_stalls"]
    assert slo["ok"] + slo["deadline_exceeded"] == slo["requests"]
    assert slo["deadline_exceeded"] > 0, "the recorded storm broke no deadlines"


def test_resilience_overhead_gate_held(bench):
    # The PR's acceptance criterion: the fully-armed resilience layer
    # (deadline + admission + breaker + fault probe) costs < 10% on the
    # happy path of the recorded run.
    overhead = bench["results"]["resilience"]["overhead"]
    assert overhead["overhead_pct"] < overhead["gate_pct"] == 10.0


def test_worker_scaling_io_stall_speedup_gate(bench):
    # The PR's acceptance criterion: with per-request blocking IO in the
    # picture, 4 workers must deliver >= 1.5x single-worker throughput.
    points = bench["results"]["worker_scaling"]["points"]
    top = max(points, key=lambda point: point["workers"])
    assert top["io_stall_speedup_vs_1"] >= 1.5, (
        f"{top['workers']}-worker io-stall speedup {top['io_stall_speedup_vs_1']:.2f}x "
        f"below the 1.5x gate"
    )
