"""The committed BENCH_serving.json must be a valid v6 trajectory record.

Tier-1 guard for the benchmark artifact the serving benchmarks co-write:
``benchmarks/test_catalog_serving.py`` (catalog/gateway numbers),
``benchmarks/test_retrieval_scaling.py`` (the retrieval scaling curve),
``benchmarks/test_worker_scaling.py`` (multi-process worker scaling),
``benchmarks/test_resilience_overhead.py`` (resilience-layer cost + SLO)
and ``benchmarks/test_scenario_replay.py`` (million-user scenario engine
replay).  A partial rewrite that drops another writer's section, or a
schema bump without regenerating the file, fails here instead of going
stale silently.
"""

import json
from pathlib import Path

import pytest

BENCH_PATH = Path(__file__).resolve().parents[2] / "BENCH_serving.json"

SCHEMA = "repro-serving-bench/v6"
REQUIRED_SECTIONS = {
    "cold_start",
    "mixed_traffic",
    "warm_vs_cold_latency",
    "retrieval_scaling",
    "worker_scaling",
    "resilience",
    "scenario",
}
REQUIRED_POINT_KEYS = {
    "num_items",
    "num_cells",
    "nprobe",
    "index_build_seconds",
    "recall_at_10",
    "dense_request_ms",
    "retrieval_request_ms",
    "speedup",
}


@pytest.fixture(scope="module")
def bench():
    assert BENCH_PATH.exists(), f"{BENCH_PATH} missing; run the slow serving benchmarks"
    return json.loads(BENCH_PATH.read_text())


def test_schema_is_v6(bench):
    assert bench["schema"] == SCHEMA


def test_required_sections_present(bench):
    assert REQUIRED_SECTIONS <= set(bench["results"])


def test_scaling_curve_shape(bench):
    curve = bench["results"]["retrieval_scaling"]
    points = curve["points"]
    assert len(points) >= 3
    sizes = [point["num_items"] for point in points]
    assert sizes == sorted(sizes)
    assert sizes[-1] >= 1_000_000
    for point in points:
        assert REQUIRED_POINT_KEYS <= set(point), f"point {point['num_items']} missing keys"


def test_recall_gate_held_at_every_scale(bench):
    for point in bench["results"]["retrieval_scaling"]["points"]:
        assert point["recall_at_10"] >= 0.95, f"{point['num_items']} items: {point['recall_at_10']}"


def test_retrieval_beats_dense_at_scale(bench):
    # The PR's acceptance criterion: at >= 100k items, shortlist-then-rescore
    # must beat the dense per-request scan.
    at_scale = [
        point
        for point in bench["results"]["retrieval_scaling"]["points"]
        if point["num_items"] >= 100_000
    ]
    assert at_scale, "curve records no >=100k-item point"
    for point in at_scale:
        assert point["retrieval_request_ms"] < point["dense_request_ms"]
        assert point["speedup"] > 1.0


WORKER_POINT_KEYS = {
    "workers",
    "cpu_bound_req_s",
    "io_stall_req_s",
    "io_stall_speedup_vs_1",
    "cpu_bound_speedup_vs_1",
    "io_stall_fleet_p50_ms",
    "io_stall_fleet_p99_ms",
}


def test_worker_scaling_shape(bench):
    section = bench["results"]["worker_scaling"]
    # The environment the curve was measured on must be recorded: a flat
    # cpu-bound curve on 1 CPU and a flat one on 16 CPUs mean different things.
    assert section["cpus"] >= 1
    assert section["io_stall_ms"] > 0.0
    assert section["artifact_layout"] == "dir"
    points = section["points"]
    workers = [point["workers"] for point in points]
    assert workers == sorted(workers)
    assert workers[0] == 1 and workers[-1] >= 4
    for point in points:
        assert WORKER_POINT_KEYS <= set(point), f"{point['workers']}-worker point missing keys"
        assert point["io_stall_req_s"] > 0.0
        assert point["cpu_bound_req_s"] > 0.0


RESILIENCE_OVERHEAD_KEYS = {
    "plain_req_s",
    "resilient_req_s",
    "overhead_pct",
    "gate_pct",
    "trials",
}
RESILIENCE_SLO_KEYS = {
    "requests",
    "deadline_ms",
    "stall_ms",
    "stall_probability",
    "ok",
    "deadline_exceeded",
    "ok_p50_ms",
    "ok_p99_ms",
    "failure_p99_ms",
}


def test_resilience_section_shape(bench):
    section = bench["results"]["resilience"]
    assert RESILIENCE_OVERHEAD_KEYS <= set(section["overhead"])
    assert RESILIENCE_SLO_KEYS <= set(section["slo_under_stalls"])
    slo = section["slo_under_stalls"]
    assert slo["ok"] + slo["deadline_exceeded"] == slo["requests"]
    assert slo["deadline_exceeded"] > 0, "the recorded storm broke no deadlines"


def test_resilience_overhead_gate_held(bench):
    # The PR's acceptance criterion: the fully-armed resilience layer
    # (deadline + admission + breaker + fault probe) costs < 10% on the
    # happy path of the recorded run.
    overhead = bench["results"]["resilience"]["overhead"]
    assert overhead["overhead_pct"] < overhead["gate_pct"] == 10.0


SCENARIO_PHASE_KEYS = {
    "phase",
    "requests",
    "ok",
    "sheds",
    "deadline_exceeded",
    "errors",
    "ok_p50_ms",
    "ok_p95_ms",
    "ok_p99_ms",
    "offered_rps",
    "achieved_rps",
}


def _scenario_replays(bench):
    scenario = bench["results"]["scenario"]
    return scenario["gateway_replay"], scenario["worker_pool_replay"]


def test_scenario_population_shape(bench):
    population = bench["results"]["scenario"]["population"]
    # The acceptance criterion: the recorded run generated a >= 1M-user
    # population in blocks, with bounded memory and no quadratic blowup.
    assert population["num_users"] >= 1_000_000
    assert population["num_edges"] > 0 and population["num_behaviors"] > 0
    assert population["block_size"] < population["num_users"], (
        "the population must have been generated in blocks, not one pass"
    )
    assert len(population["digest"]) == 64  # the golden-seed sha256
    assert 0.0 < population["peak_rss_mib"] < population["rss_gate_mib"]
    assert population["linearity_ratio"] < 3.0


def test_scenario_replay_sections_shape(bench):
    for replay in _scenario_replays(bench):
        assert replay["ledger_reconciles"] is True
        assert replay["total_requests"] > 0
        phases = {entry["phase"]: entry for entry in replay["phases"]}
        assert {"baseline", "flash"} <= set(phases)
        for entry in phases.values():
            assert SCENARIO_PHASE_KEYS <= set(entry), f"phase {entry.get('phase')} missing keys"
            # Per-phase ledger balances: requests == ok + sheds + deadline + errors.
            assert entry["requests"] == (
                entry["ok"] + entry["sheds"] + entry["deadline_exceeded"] + entry["errors"]
            )
            assert entry["offered_rps"] > 0.0


def test_scenario_burst_ok_p99_gate_held(bench):
    # The PR's acceptance criterion: during the recorded flash burst the
    # gateway kept ok-request p99 under the gate the benchmark encodes.
    replay = bench["results"]["scenario"]["gateway_replay"]
    gate_ms = replay["burst_ok_p99_gate_ms"]
    assert gate_ms == 50.0
    flash = next(entry for entry in replay["phases"] if entry["phase"] == "flash")
    assert 0.0 < flash["ok_p99_ms"] < gate_ms
    # And the burst actually stressed the target: its offered rate must
    # exceed the baseline's (the multiplier was real).
    baseline = next(entry for entry in replay["phases"] if entry["phase"] == "baseline")
    assert flash["offered_rps"] > 2.0 * baseline["offered_rps"]


def test_scenario_achieved_vs_offered_recorded(bench):
    for replay in _scenario_replays(bench):
        for entry in replay["phases"]:
            assert entry["achieved_rps"] >= 0.0
            # Open-loop replay can lag but must not silently thin traffic:
            # achieved counts only ok requests, offered counts all.
            assert entry["achieved_rps"] <= entry["offered_rps"] * 1.05


def test_worker_scaling_io_stall_speedup_gate(bench):
    # The PR's acceptance criterion: with per-request blocking IO in the
    # picture, 4 workers must deliver >= 1.5x single-worker throughput.
    points = bench["results"]["worker_scaling"]["points"]
    top = max(points, key=lambda point: point["workers"])
    assert top["io_stall_speedup_vs_1"] >= 1.5, (
        f"{top['workers']}-worker io-stall speedup {top['io_stall_speedup_vs_1']:.2f}x "
        f"below the 1.5x gate"
    )
