"""Histogram snapshots carry raw buckets; merging them is exact (regression).

The original ``LatencyHistogram.snapshot()`` exported only *derived*
statistics (p50/p95/p99/mean).  Those cannot be aggregated: averaging
per-worker p99s under-reports the fleet tail whenever load or latency is
uneven across workers.  The fixed snapshot carries the raw bucket counts
and ``total_seconds``, making a merged histogram *identical* — bucket by
bucket, and therefore percentile by percentile — to one histogram that
observed the union of the streams.

``test_snapshot_without_buckets_is_rejected`` is the format regression
(pre-fix snapshots fail loudly rather than merging wrongly); the
union-stream tests are the correctness oracle the ISSUE's acceptance
criterion names.
"""

import json

import numpy as np
import pytest

from repro.serving import LatencyHistogram, MetricsRegistry


def _samples(seed: int, count: int) -> np.ndarray:
    """Log-normal latencies spanning several histogram decades."""
    return np.random.default_rng(seed).lognormal(mean=-6.0, sigma=2.0, size=count)


class TestSnapshotFormat:
    def test_snapshot_carries_raw_buckets_and_total(self):
        hist = LatencyHistogram()
        for value in _samples(0, 100):
            hist.record(float(value))
        snap = hist.snapshot()
        assert snap["count"] == 100
        assert snap["total_seconds"] == pytest.approx(hist.total_seconds)
        assert snap["buckets"], "snapshot must carry non-empty raw bucket counts"
        assert sum(snap["buckets"].values()) == 100
        assert all(isinstance(key, str) for key in snap["buckets"])

    def test_snapshot_survives_json_roundtrip(self):
        hist = LatencyHistogram()
        for value in _samples(1, 500):
            hist.record(float(value))
        restored = LatencyHistogram.from_snapshot(json.loads(json.dumps(hist.snapshot())))
        assert restored.counts == hist.counts
        assert restored.count == hist.count
        assert restored.min_seconds == hist.min_seconds
        assert restored.max_seconds == hist.max_seconds
        for q in (50.0, 95.0, 99.0):
            assert restored.percentile(q) == hist.percentile(q)

    def test_snapshot_without_buckets_is_rejected(self):
        """REGRESSION — the pre-fix snapshot format cannot be merged.

        A snapshot with only derived percentiles must raise, not silently
        merge as an empty histogram (which would *drop* that worker's
        latency data from the fleet view).
        """
        legacy = {"count": 12, "mean": 0.01, "p50": 0.01, "p95": 0.02, "p99": 0.03}
        with pytest.raises(ValueError, match="bucket"):
            LatencyHistogram.from_snapshot(legacy)
        with pytest.raises(ValueError, match="bucket"):
            LatencyHistogram().merge(legacy)

    def test_inconsistent_bucket_sum_is_rejected(self):
        snap = LatencyHistogram().snapshot()
        snap["count"] = 3
        snap["buckets"] = {"5": 2}
        with pytest.raises(ValueError, match="inconsistent"):
            LatencyHistogram.from_snapshot(snap)

    def test_out_of_range_bucket_index_is_rejected(self):
        snap = {"count": 1, "min": 0.1, "max": 0.1, "buckets": {"100000": 1}}
        with pytest.raises(ValueError, match="out of range"):
            LatencyHistogram.from_snapshot(snap)


class TestMergeIsExact:
    def test_merged_shards_equal_the_union_stream(self):
        """The oracle: percentiles of merged shards == union-stream percentiles."""
        stream = _samples(2, 5000)
        union = LatencyHistogram()
        for value in stream:
            union.record(float(value))

        shards = [LatencyHistogram() for _ in range(4)]
        for index, value in enumerate(stream):
            shards[index % 4].record(float(value))

        merged = LatencyHistogram()
        for shard in shards:
            # Through the JSON round-trip — the actual cross-process path.
            merged.merge(json.loads(json.dumps(shard.snapshot())))

        assert merged.counts == union.counts
        assert merged.count == union.count
        assert merged.total_seconds == pytest.approx(union.total_seconds)
        assert merged.min_seconds == union.min_seconds
        assert merged.max_seconds == union.max_seconds
        for q in (10.0, 50.0, 90.0, 95.0, 99.0, 99.9):
            assert merged.percentile(q) == union.percentile(q), f"p{q} diverged"

    def test_uneven_shards_still_merge_exactly(self):
        """The failure mode averaging would hit: one slow, lightly-loaded worker."""
        fast, slow = LatencyHistogram(), LatencyHistogram()
        union = LatencyHistogram()
        for value in _samples(3, 900) * 0.001:  # fast worker: ~1000x smaller latencies
            fast.record(float(value))
            union.record(float(value))
        for value in _samples(4, 100):
            slow.record(float(value))
            union.record(float(value))

        merged = LatencyHistogram().merge(fast).merge(slow)
        assert merged.percentile(99.0) == union.percentile(99.0)
        # An average of per-worker p99s is nowhere near the truth here.
        averaged = (fast.percentile(99.0) + slow.percentile(99.0)) / 2.0
        assert abs(averaged - union.percentile(99.0)) > abs(
            merged.percentile(99.0) - union.percentile(99.0)
        )

    def test_merge_chains_and_returns_self(self):
        hist = LatencyHistogram()
        other = LatencyHistogram()
        other.record(0.5)
        assert hist.merge(other) is hist
        assert hist.count == 1


class TestRegistryMergeSnapshots:
    def _loaded_registry(self, seed: int, requests: int) -> MetricsRegistry:
        registry = MetricsRegistry()
        rng = np.random.default_rng(seed)
        for _ in range(requests):
            registry.record_request("gbgcn", rows=4, seconds=float(rng.lognormal(-6, 2)))
        registry.record_cold_start("gbgcn", seconds=0.05)
        registry.record_request("mf", rows=2, seconds=0.001)
        return registry

    def test_counters_sum_exactly(self):
        registries = [self._loaded_registry(seed, requests=50) for seed in range(3)]
        fleet = MetricsRegistry.merge_snapshots([r.snapshot() for r in registries])
        assert fleet["workers"] == 3
        assert fleet["totals"]["requests"] == 3 * 51
        assert fleet["totals"]["rows_served"] == 3 * (50 * 4 + 2)
        assert fleet["totals"]["cold_starts"] == 3
        assert fleet["models"]["gbgcn"]["requests"] == 150
        assert fleet["models"]["mf"]["requests"] == 3

    def test_fleet_percentiles_equal_one_observer(self):
        union = MetricsRegistry()
        shards = [MetricsRegistry() for _ in range(4)]
        values = _samples(7, 2000)
        for index, value in enumerate(values):
            shards[index % 4].record_request("gbgcn", rows=1, seconds=float(value))
            union.record_request("gbgcn", rows=1, seconds=float(value))

        fleet = MetricsRegistry.merge_snapshots(
            [json.loads(json.dumps(shard.snapshot())) for shard in shards]
        )
        expected = union.snapshot()["models"]["gbgcn"]["request_latency"]
        got_model = fleet["models"]["gbgcn"]["request_latency"]
        got_totals = fleet["totals"]["request_latency"]
        for key in ("count", "p50", "p95", "p99", "min", "max"):
            assert got_model[key] == expected[key], key
            assert got_totals[key] == expected[key], key

    def test_totals_gain_fleet_latency_sections(self):
        fleet = MetricsRegistry.merge_snapshots([self._loaded_registry(0, 10).snapshot()])
        assert "request_latency" in fleet["totals"]
        assert "cold_start_latency" in fleet["totals"]
        assert fleet["totals"]["request_latency"]["count"] == 11

    def test_merging_zero_snapshots_is_empty_but_valid(self):
        fleet = MetricsRegistry.merge_snapshots([])
        assert fleet["workers"] == 0
        assert fleet["models"] == {}
        assert fleet["totals"]["requests"] == 0
