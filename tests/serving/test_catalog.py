"""ModelCatalog: scan, lazy cold-start, LRU budget, hot-swap, parity."""

import os

import numpy as np
import pytest

from repro.data import BeibeiLikeConfig, generate_dataset, leave_one_out_split
from repro.models import ModelSettings, build_model
from repro.persist import save_model
from repro.serving import (
    CatalogError,
    EmbeddingStore,
    ModelCatalog,
    TopKRecommender,
    UnknownCatalogModelError,
)

SETTINGS = ModelSettings(embedding_dim=8)
CATALOG_MODELS = {"gbgcn": "GBGCN", "gbgcn-pretrain": "GBGCN-pretrain", "mf": "MF"}


def write_artifacts(directory, split):
    for stem, model_name in CATALOG_MODELS.items():
        save_model(build_model(model_name, split.train, SETTINGS), directory / f"{stem}.npz")


@pytest.fixture()
def catalog_dir(small_split, tmp_path):
    directory = tmp_path / "models"
    write_artifacts(directory, small_split)
    return directory


@pytest.fixture()
def catalog(catalog_dir, small_split):
    return ModelCatalog(catalog_dir, small_split.train)


def some_users(split):
    return np.asarray(sorted(split.test))[:16]


class TestScan:
    def test_lists_all_servable_artifacts(self, catalog):
        assert catalog.names == sorted(CATALOG_MODELS)
        assert len(catalog) == 3
        assert "gbgcn" in catalog
        assert catalog.rejected == {}

    def test_nothing_is_loaded_before_first_request(self, catalog):
        assert catalog.resident_names == []
        assert catalog.stats.cold_starts == 0

    def test_unknown_name_error_lists_catalog(self, catalog):
        with pytest.raises(UnknownCatalogModelError, match=r"gbgcn.*mf"):
            catalog.entry("nope")

    def test_garbage_file_is_rejected_with_reason(self, catalog_dir, small_split):
        (catalog_dir / "junk.npz").write_bytes(b"zzz")
        catalog = ModelCatalog(catalog_dir, small_split.train)
        assert catalog.names == sorted(CATALOG_MODELS)
        assert "junk.npz" in catalog.rejected

    def test_wrong_dataset_artifact_is_rejected(self, catalog_dir, small_split):
        other = leave_one_out_split(
            generate_dataset(BeibeiLikeConfig(num_users=50, num_items=25, num_behaviors=220, seed=123))
        )
        save_model(build_model("MF", other.train, SETTINGS), catalog_dir / "foreign.npz")
        catalog = ModelCatalog(catalog_dir, small_split.train)
        assert "foreign" not in catalog.names
        assert "different dataset" in catalog.rejected["foreign.npz"]

    def test_unknown_model_name_is_rejected_with_registry_names(self, catalog_dir, small_split):
        model = build_model("MF", small_split.train, SETTINGS)
        save_model(model, catalog_dir / "fancy.npz", model_name="FancyNet")
        catalog = ModelCatalog(catalog_dir, small_split.train)
        assert "fancy" not in catalog.names
        assert "FancyNet" in catalog.rejected["fancy.npz"]
        assert "GBGCN" in catalog.rejected["fancy.npz"]

    def test_rescan_picks_up_new_artifact(self, catalog, catalog_dir, small_split):
        assert "itempop" not in catalog
        save_model(build_model("ItemPop", small_split.train, SETTINGS), catalog_dir / "itempop.npz")
        catalog.scan()
        assert "itempop" in catalog

    def test_rescan_drops_removed_artifact_and_evicts(self, catalog, catalog_dir, small_split):
        catalog.warm("mf")
        (catalog_dir / "mf.npz").unlink()
        catalog.scan()
        assert "mf" not in catalog
        assert "mf" not in catalog.resident_names


class TestLazyColdStartAndParity:
    def test_first_request_loads_only_that_model(self, catalog, small_split):
        users = some_users(small_split)
        catalog.recommender("mf").recommend(users)
        assert catalog.resident_names == ["mf"]
        assert catalog.stats.cold_starts == 1
        assert catalog.entry("mf").last_cold_start_seconds > 0.0

    @pytest.mark.parametrize("stem", sorted(CATALOG_MODELS))
    def test_results_bitwise_identical_to_per_model_store(
        self, stem, catalog, catalog_dir, small_split
    ):
        users = some_users(small_split)
        result = catalog.recommender(stem, k=10).recommend(users)
        reference_store = EmbeddingStore.from_artifact(catalog_dir / f"{stem}.npz", small_split.train)
        reference = TopKRecommender(reference_store, k=10, dataset=small_split.train).recommend(users)
        assert np.array_equal(result.items, reference.items)
        assert np.array_equal(result.scores, reference.scores)

    def test_recommender_is_reused_across_requests(self, catalog, small_split):
        first = catalog.recommender("mf")
        assert catalog.recommender("mf") is first
        assert catalog.stats.cold_starts == 1
        assert catalog.stats.hits >= 1

    def test_k_override_does_not_clobber_cached_recommender(self, catalog, small_split):
        users = some_users(small_split)
        cached = catalog.recommender("mf")
        assert cached.k == catalog.default_k
        override = catalog.recommender("mf", k=3)
        assert override is not cached
        assert override.k == 3
        assert override._observed_matrix is cached._observed_matrix  # still shared
        # Later k-less calls keep the catalog default, unaffected by the override.
        assert catalog.recommender("mf") is cached
        assert catalog.recommender("mf").recommend(users).items.shape[1] == catalog.default_k

    def test_observed_matrix_shared_across_models(self, catalog):
        first = catalog.recommender("mf")._observed_matrix
        second = catalog.recommender("gbgcn")._observed_matrix
        assert first is second


class TestResidencyBudget:
    def test_lru_eviction_over_budget(self, catalog_dir, small_split):
        catalog = ModelCatalog(catalog_dir, small_split.train, resident_budget=2)
        catalog.warm("gbgcn")
        catalog.warm("mf")
        catalog.warm("gbgcn-pretrain")  # budget 2: 'gbgcn' is LRU, evicted
        assert catalog.resident_names == ["mf", "gbgcn-pretrain"]
        assert catalog.stats.evictions == 1

    def test_access_refreshes_recency(self, catalog_dir, small_split):
        catalog = ModelCatalog(catalog_dir, small_split.train, resident_budget=2)
        users = some_users(small_split)
        catalog.warm("gbgcn")
        catalog.warm("mf")
        catalog.recommender("gbgcn").recommend(users)  # gbgcn now most recent
        catalog.warm("gbgcn-pretrain")
        assert catalog.resident_names == ["gbgcn", "gbgcn-pretrain"]

    def test_evicted_model_cold_starts_again_with_identical_results(
        self, catalog_dir, small_split
    ):
        catalog = ModelCatalog(catalog_dir, small_split.train, resident_budget=1)
        users = some_users(small_split)
        before = catalog.recommender("mf").recommend(users)
        catalog.recommender("gbgcn").recommend(users)  # evicts mf
        assert catalog.resident_names == ["gbgcn"]
        after = catalog.recommender("mf").recommend(users)
        assert np.array_equal(before.items, after.items)
        assert catalog.stats.cold_starts == 3

    def test_warm_returns_cold_start_seconds_once(self, catalog):
        first = catalog.warm("mf")
        assert first > 0.0
        assert catalog.warm("mf") == 0.0

    def test_explicit_evict(self, catalog):
        catalog.warm("mf")
        assert catalog.evict("mf")
        assert catalog.resident_names == []
        assert not catalog.evict("mf")  # already gone

    def test_warm_all_and_evict_all(self, catalog):
        seconds = catalog.warm_all()
        assert sorted(seconds) == sorted(CATALOG_MODELS)
        assert all(value > 0.0 for value in seconds.values())
        catalog.evict_all()
        assert catalog.resident_names == []

    def test_budget_must_be_positive(self, catalog_dir, small_split):
        with pytest.raises(ValueError, match="resident_budget"):
            ModelCatalog(catalog_dir, small_split.train, resident_budget=0)


class TestHotSwap:
    def test_replaced_artifact_is_reloaded_with_version_bump(
        self, catalog, catalog_dir, small_split
    ):
        users = some_users(small_split)
        before = catalog.recommender("mf").recommend(users)
        assert catalog.entry("mf").version == 1

        # Publish a differently-initialized MF into the same file (atomic
        # replace, exactly what ModelCheckpoint's catalog publishing does).
        replacement = build_model(
            "MF", small_split.train, SETTINGS, rng=np.random.default_rng(2024)
        )
        save_model(replacement, catalog_dir / "mf.npz")

        after = catalog.recommender("mf").recommend(users)
        assert catalog.entry("mf").version == 2
        assert catalog.stats.reloads == 1
        assert not np.array_equal(before.scores, after.scores)

        reference_store = EmbeddingStore.from_artifact(catalog_dir / "mf.npz", small_split.train)
        reference = TopKRecommender(reference_store, k=10, dataset=small_split.train).recommend(users)
        assert np.array_equal(after.items, reference.items)

    def test_vanished_artifact_raises_and_drops_entry(self, catalog, catalog_dir, small_split):
        catalog.warm("mf")
        (catalog_dir / "mf.npz").unlink()
        with pytest.raises(CatalogError, match="disappeared"):
            catalog.store("mf")
        assert "mf" not in catalog
        assert "mf" not in catalog.resident_names

    def test_swapped_in_unservable_artifact_fails_loudly(
        self, catalog, catalog_dir, small_split
    ):
        catalog.warm("mf")
        (catalog_dir / "mf.npz").write_bytes(b"corrupted by a partial copy")
        with pytest.raises(CatalogError):
            catalog.store("mf")
        assert "mf" not in catalog
        assert "mf.npz" in catalog.rejected

    def test_pinned_mtime_same_size_replacement_is_still_swapped(
        self, catalog, catalog_dir, small_split
    ):
        # Regression: the staleness check used to trust (st_size, st_mtime_ns)
        # alone, so a same-size replacement landing within one mtime tick
        # (coarse-mtime filesystems, fast CI) served stale weights forever.
        # The content token (npz CRC digest) must catch it.
        users = some_users(small_split)
        path = catalog_dir / "mf.npz"
        before = catalog.recommender("mf").recommend(users)
        stat = os.stat(path)

        replacement = build_model("MF", small_split.train, SETTINGS, rng=np.random.default_rng(77))
        save_model(replacement, path)
        os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns))  # pin the stat identity
        pinned = os.stat(path)
        assert (pinned.st_size, pinned.st_mtime_ns) == (stat.st_size, stat.st_mtime_ns)

        after = catalog.recommender("mf").recommend(users)
        assert catalog.entry("mf").version == 2
        assert catalog.stats.reloads == 1
        assert not np.array_equal(before.scores, after.scores)
        reference_store = EmbeddingStore.from_artifact(path, small_split.train)
        reference = TopKRecommender(reference_store, k=10, dataset=small_split.train).recommend(users)
        assert np.array_equal(after.items, reference.items)

    def test_rescan_detects_pinned_mtime_replacement(self, catalog, catalog_dir, small_split):
        # The warmer path: scan() itself must version-bump a stat-identical
        # replacement so the background cycle reloads it off the request path.
        catalog.warm("mf")
        path = catalog_dir / "mf.npz"
        stat = os.stat(path)
        replacement = build_model("MF", small_split.train, SETTINGS, rng=np.random.default_rng(78))
        save_model(replacement, path)
        os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns))
        catalog.scan()
        assert catalog.entry("mf").version == 2

    def test_stale_mtime_outside_grace_window_skips_token_but_scan_catches(
        self, catalog_dir, small_split
    ):
        # Steady state (mtime far in the past) is stat-only on access; a
        # back-dated pinned replacement is then invisible per-access but
        # still caught by scan() — the warmer's job.
        users = some_users(small_split)
        path = catalog_dir / "mf.npz"
        old_ns = os.stat(path).st_mtime_ns - int(300 * 1e9)  # 5 minutes ago
        os.utime(path, ns=(old_ns, old_ns))
        catalog = ModelCatalog(catalog_dir, small_split.train)
        before = catalog.recommender("mf").recommend(users)

        replacement = build_model("MF", small_split.train, SETTINGS, rng=np.random.default_rng(81))
        save_model(replacement, path)
        os.utime(path, ns=(old_ns, old_ns))  # back-date past the grace window
        assert np.array_equal(catalog.recommender("mf").recommend(users).items, before.items)
        assert catalog.entry("mf").version == 1  # access-time fast path trusted stat

        catalog.scan()  # the rescan always compares content tokens
        assert catalog.entry("mf").version == 2
        assert not np.array_equal(catalog.recommender("mf").recommend(users).scores, before.scores)

    def test_periodic_recheck_finds_idle_tail_swap_within_one_grace_period(
        self, catalog_dir, small_split
    ):
        # A same-tick swap whose first access comes long after the grace
        # window must still be found by the once-per-grace-period re-check
        # (simulated by expiring the entry's last verification time).
        users = some_users(small_split)
        path = catalog_dir / "mf.npz"
        old_ns = os.stat(path).st_mtime_ns - int(300 * 1e9)
        os.utime(path, ns=(old_ns, old_ns))
        catalog = ModelCatalog(catalog_dir, small_split.train)
        before = catalog.recommender("mf").recommend(users)

        replacement = build_model("MF", small_split.train, SETTINGS, rng=np.random.default_rng(82))
        save_model(replacement, path)
        os.utime(path, ns=(old_ns, old_ns))
        catalog.entry("mf").last_content_check_ns = 0  # a grace period elapses
        after = catalog.recommender("mf").recommend(users)
        assert catalog.entry("mf").version == 2
        assert not np.array_equal(after.scores, before.scores)

    def test_verify_content_off_trusts_stat_identity(self, catalog_dir, small_split):
        catalog = ModelCatalog(catalog_dir, small_split.train, verify_content=False)
        users = some_users(small_split)
        path = catalog_dir / "mf.npz"
        before = catalog.recommender("mf").recommend(users)
        stat = os.stat(path)
        replacement = build_model("MF", small_split.train, SETTINGS, rng=np.random.default_rng(79))
        save_model(replacement, path)
        os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns))
        # Documented blind spot of verify_content=False: stale results...
        assert np.array_equal(catalog.recommender("mf").recommend(users).items, before.items)
        assert catalog.entry("mf").version == 1
        # ...until the escape hatch forces the reload.
        assert catalog.reload("mf", force=True) == 2
        after = catalog.recommender("mf").recommend(users)
        assert not np.array_equal(after.scores, before.scores)

    def test_reload_scans_for_a_name_published_after_construction(
        self, catalog_dir, small_split, tmp_path
    ):
        # The on_publish wiring must work for a model's *first* publish:
        # reload of a never-indexed name scans the directory first.
        empty = tmp_path / "empty-fleet"
        empty.mkdir()
        catalog = ModelCatalog(empty, small_split.train)
        assert catalog.names == []
        save_model(build_model("MF", small_split.train, SETTINGS), empty / "mf.npz")
        assert catalog.reload("mf", force=True) == 2
        users = some_users(small_split)
        assert catalog.recommender("mf").recommend(users).items.shape[1] == catalog.default_k
        with pytest.raises(UnknownCatalogModelError):
            catalog.reload("never-published", force=True)

    def test_reload_without_force_runs_ordinary_freshness_check(
        self, catalog, catalog_dir, small_split
    ):
        catalog.warm("mf")
        assert catalog.reload("mf") == 1  # nothing changed
        replacement = build_model("MF", small_split.train, SETTINGS, rng=np.random.default_rng(80))
        save_model(replacement, catalog_dir / "mf.npz")
        assert catalog.reload("mf") == 2  # swap taken now, off the request path
        assert catalog.reload("mf", force=True) == 3  # force always re-reads

    def test_file_vanishing_during_cold_start_degrades_to_catalog_error(
        self, catalog, catalog_dir, small_split, monkeypatch
    ):
        # TOCTOU: freshness check passes, then the file is deleted before
        # load_model reads the weights.  The serving request must see a
        # CatalogError (entry dropped), never a raw FileNotFoundError.
        import repro.persist as persist

        real_load = persist.load_model

        def delete_then_load(path, dataset):
            os.unlink(path)
            return real_load(path, dataset)

        monkeypatch.setattr(persist, "load_model", delete_then_load)
        with pytest.raises(CatalogError, match="disappeared"):
            catalog.store("mf")
        assert "mf" not in catalog
        assert "mf" not in catalog.resident_names


class TestMetricsIntegration:
    def test_catalog_records_lifecycle_metrics(self, catalog_dir, small_split):
        catalog = ModelCatalog(catalog_dir, small_split.train, resident_budget=1)
        catalog.warm("mf")
        catalog.warm("gbgcn")  # evicts mf
        replacement = build_model("GBGCN", small_split.train, SETTINGS)
        save_model(replacement, catalog_dir / "gbgcn.npz")
        catalog.store("gbgcn")  # hot-swap reload

        snap = catalog.metrics.snapshot()
        assert snap["models"]["mf"]["cold_starts"] == 1
        assert snap["models"]["mf"]["evictions"] == 1
        assert snap["models"]["gbgcn"]["cold_starts"] == 2
        assert snap["models"]["gbgcn"]["reloads"] == 1
        assert snap["models"]["gbgcn"]["cold_start_latency"]["count"] == 2
        assert snap["models"]["gbgcn"]["cold_start_latency"]["p99"] > 0.0
        assert snap["totals"]["cold_starts"] == 3

    def test_disabled_registry_records_nothing(self, catalog_dir, small_split):
        from repro.serving import MetricsRegistry

        catalog = ModelCatalog(
            catalog_dir, small_split.train, metrics=MetricsRegistry(enabled=False)
        )
        catalog.warm("mf")
        snap = catalog.metrics.snapshot()
        assert snap["models"] == {}
        assert snap["enabled"] is False
        # The plain CatalogStats counters still work regardless.
        assert catalog.stats.cold_starts == 1
