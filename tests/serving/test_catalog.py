"""ModelCatalog: scan, lazy cold-start, LRU budget, hot-swap, parity."""

import numpy as np
import pytest

from repro.data import BeibeiLikeConfig, generate_dataset, leave_one_out_split
from repro.models import ModelSettings, build_model
from repro.persist import save_model
from repro.serving import (
    CatalogError,
    EmbeddingStore,
    ModelCatalog,
    TopKRecommender,
    UnknownCatalogModelError,
)

SETTINGS = ModelSettings(embedding_dim=8)
CATALOG_MODELS = {"gbgcn": "GBGCN", "gbgcn-pretrain": "GBGCN-pretrain", "mf": "MF"}


def write_artifacts(directory, split):
    for stem, model_name in CATALOG_MODELS.items():
        save_model(build_model(model_name, split.train, SETTINGS), directory / f"{stem}.npz")


@pytest.fixture()
def catalog_dir(small_split, tmp_path):
    directory = tmp_path / "models"
    write_artifacts(directory, small_split)
    return directory


@pytest.fixture()
def catalog(catalog_dir, small_split):
    return ModelCatalog(catalog_dir, small_split.train)


def some_users(split):
    return np.asarray(sorted(split.test))[:16]


class TestScan:
    def test_lists_all_servable_artifacts(self, catalog):
        assert catalog.names == sorted(CATALOG_MODELS)
        assert len(catalog) == 3
        assert "gbgcn" in catalog
        assert catalog.rejected == {}

    def test_nothing_is_loaded_before_first_request(self, catalog):
        assert catalog.resident_names == []
        assert catalog.stats.cold_starts == 0

    def test_unknown_name_error_lists_catalog(self, catalog):
        with pytest.raises(UnknownCatalogModelError, match=r"gbgcn.*mf"):
            catalog.entry("nope")

    def test_garbage_file_is_rejected_with_reason(self, catalog_dir, small_split):
        (catalog_dir / "junk.npz").write_bytes(b"zzz")
        catalog = ModelCatalog(catalog_dir, small_split.train)
        assert catalog.names == sorted(CATALOG_MODELS)
        assert "junk.npz" in catalog.rejected

    def test_wrong_dataset_artifact_is_rejected(self, catalog_dir, small_split):
        other = leave_one_out_split(
            generate_dataset(BeibeiLikeConfig(num_users=50, num_items=25, num_behaviors=220, seed=123))
        )
        save_model(build_model("MF", other.train, SETTINGS), catalog_dir / "foreign.npz")
        catalog = ModelCatalog(catalog_dir, small_split.train)
        assert "foreign" not in catalog.names
        assert "different dataset" in catalog.rejected["foreign.npz"]

    def test_unknown_model_name_is_rejected_with_registry_names(self, catalog_dir, small_split):
        model = build_model("MF", small_split.train, SETTINGS)
        save_model(model, catalog_dir / "fancy.npz", model_name="FancyNet")
        catalog = ModelCatalog(catalog_dir, small_split.train)
        assert "fancy" not in catalog.names
        assert "FancyNet" in catalog.rejected["fancy.npz"]
        assert "GBGCN" in catalog.rejected["fancy.npz"]

    def test_rescan_picks_up_new_artifact(self, catalog, catalog_dir, small_split):
        assert "itempop" not in catalog
        save_model(build_model("ItemPop", small_split.train, SETTINGS), catalog_dir / "itempop.npz")
        catalog.scan()
        assert "itempop" in catalog

    def test_rescan_drops_removed_artifact_and_evicts(self, catalog, catalog_dir, small_split):
        catalog.warm("mf")
        (catalog_dir / "mf.npz").unlink()
        catalog.scan()
        assert "mf" not in catalog
        assert "mf" not in catalog.resident_names


class TestLazyColdStartAndParity:
    def test_first_request_loads_only_that_model(self, catalog, small_split):
        users = some_users(small_split)
        catalog.recommender("mf").recommend(users)
        assert catalog.resident_names == ["mf"]
        assert catalog.stats.cold_starts == 1
        assert catalog.entry("mf").last_cold_start_seconds > 0.0

    @pytest.mark.parametrize("stem", sorted(CATALOG_MODELS))
    def test_results_bitwise_identical_to_per_model_store(
        self, stem, catalog, catalog_dir, small_split
    ):
        users = some_users(small_split)
        result = catalog.recommender(stem, k=10).recommend(users)
        reference_store = EmbeddingStore.from_artifact(catalog_dir / f"{stem}.npz", small_split.train)
        reference = TopKRecommender(reference_store, k=10, dataset=small_split.train).recommend(users)
        assert np.array_equal(result.items, reference.items)
        assert np.array_equal(result.scores, reference.scores)

    def test_recommender_is_reused_across_requests(self, catalog, small_split):
        first = catalog.recommender("mf")
        assert catalog.recommender("mf") is first
        assert catalog.stats.cold_starts == 1
        assert catalog.stats.hits >= 1

    def test_k_override_does_not_clobber_cached_recommender(self, catalog, small_split):
        users = some_users(small_split)
        cached = catalog.recommender("mf")
        assert cached.k == catalog.default_k
        override = catalog.recommender("mf", k=3)
        assert override is not cached
        assert override.k == 3
        assert override._observed_matrix is cached._observed_matrix  # still shared
        # Later k-less calls keep the catalog default, unaffected by the override.
        assert catalog.recommender("mf") is cached
        assert catalog.recommender("mf").recommend(users).items.shape[1] == catalog.default_k

    def test_observed_matrix_shared_across_models(self, catalog):
        first = catalog.recommender("mf")._observed_matrix
        second = catalog.recommender("gbgcn")._observed_matrix
        assert first is second


class TestResidencyBudget:
    def test_lru_eviction_over_budget(self, catalog_dir, small_split):
        catalog = ModelCatalog(catalog_dir, small_split.train, resident_budget=2)
        catalog.warm("gbgcn")
        catalog.warm("mf")
        catalog.warm("gbgcn-pretrain")  # budget 2: 'gbgcn' is LRU, evicted
        assert catalog.resident_names == ["mf", "gbgcn-pretrain"]
        assert catalog.stats.evictions == 1

    def test_access_refreshes_recency(self, catalog_dir, small_split):
        catalog = ModelCatalog(catalog_dir, small_split.train, resident_budget=2)
        users = some_users(small_split)
        catalog.warm("gbgcn")
        catalog.warm("mf")
        catalog.recommender("gbgcn").recommend(users)  # gbgcn now most recent
        catalog.warm("gbgcn-pretrain")
        assert catalog.resident_names == ["gbgcn", "gbgcn-pretrain"]

    def test_evicted_model_cold_starts_again_with_identical_results(
        self, catalog_dir, small_split
    ):
        catalog = ModelCatalog(catalog_dir, small_split.train, resident_budget=1)
        users = some_users(small_split)
        before = catalog.recommender("mf").recommend(users)
        catalog.recommender("gbgcn").recommend(users)  # evicts mf
        assert catalog.resident_names == ["gbgcn"]
        after = catalog.recommender("mf").recommend(users)
        assert np.array_equal(before.items, after.items)
        assert catalog.stats.cold_starts == 3

    def test_warm_returns_cold_start_seconds_once(self, catalog):
        first = catalog.warm("mf")
        assert first > 0.0
        assert catalog.warm("mf") == 0.0

    def test_explicit_evict(self, catalog):
        catalog.warm("mf")
        assert catalog.evict("mf")
        assert catalog.resident_names == []
        assert not catalog.evict("mf")  # already gone

    def test_warm_all_and_evict_all(self, catalog):
        seconds = catalog.warm_all()
        assert sorted(seconds) == sorted(CATALOG_MODELS)
        assert all(value > 0.0 for value in seconds.values())
        catalog.evict_all()
        assert catalog.resident_names == []

    def test_budget_must_be_positive(self, catalog_dir, small_split):
        with pytest.raises(ValueError, match="resident_budget"):
            ModelCatalog(catalog_dir, small_split.train, resident_budget=0)


class TestHotSwap:
    def test_replaced_artifact_is_reloaded_with_version_bump(
        self, catalog, catalog_dir, small_split
    ):
        users = some_users(small_split)
        before = catalog.recommender("mf").recommend(users)
        assert catalog.entry("mf").version == 1

        # Publish a differently-initialized MF into the same file (atomic
        # replace, exactly what ModelCheckpoint's catalog publishing does).
        replacement = build_model(
            "MF", small_split.train, SETTINGS, rng=np.random.default_rng(2024)
        )
        save_model(replacement, catalog_dir / "mf.npz")

        after = catalog.recommender("mf").recommend(users)
        assert catalog.entry("mf").version == 2
        assert catalog.stats.reloads == 1
        assert not np.array_equal(before.scores, after.scores)

        reference_store = EmbeddingStore.from_artifact(catalog_dir / "mf.npz", small_split.train)
        reference = TopKRecommender(reference_store, k=10, dataset=small_split.train).recommend(users)
        assert np.array_equal(after.items, reference.items)

    def test_vanished_artifact_raises_and_drops_entry(self, catalog, catalog_dir, small_split):
        catalog.warm("mf")
        (catalog_dir / "mf.npz").unlink()
        with pytest.raises(CatalogError, match="disappeared"):
            catalog.store("mf")
        assert "mf" not in catalog
        assert "mf" not in catalog.resident_names

    def test_swapped_in_unservable_artifact_fails_loudly(
        self, catalog, catalog_dir, small_split
    ):
        catalog.warm("mf")
        (catalog_dir / "mf.npz").write_bytes(b"corrupted by a partial copy")
        with pytest.raises(CatalogError):
            catalog.store("mf")
        assert "mf" not in catalog
        assert "mf.npz" in catalog.rejected
