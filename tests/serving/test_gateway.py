"""ServingGateway: routing, traffic splits, and mixed-model batching."""

import numpy as np
import pytest

from repro.models import ModelSettings, build_model
from repro.persist import save_model
from repro.serving import (
    ModelCatalog,
    ServingGateway,
    TrafficSplit,
    UnknownCatalogModelError,
)

SETTINGS = ModelSettings(embedding_dim=8)
CATALOG_MODELS = {"gbgcn": "GBGCN", "mf": "MF", "itempop": "ItemPop"}


@pytest.fixture()
def catalog(small_split, tmp_path):
    directory = tmp_path / "models"
    for stem, model_name in CATALOG_MODELS.items():
        save_model(build_model(model_name, small_split.train, SETTINGS), directory / f"{stem}.npz")
    return ModelCatalog(directory, small_split.train)


@pytest.fixture()
def gateway(catalog):
    return ServingGateway(catalog, default_model="gbgcn")


def some_users(split, count=24):
    return np.asarray(sorted(split.test))[:count]


class TestTrafficSplit:
    def test_rejects_empty_and_invalid_weights(self):
        with pytest.raises(ValueError):
            TrafficSplit({})
        with pytest.raises(ValueError):
            TrafficSplit({"a": -1.0, "b": 2.0})
        with pytest.raises(ValueError):
            TrafficSplit({"a": 0.0})

    def test_weights_are_normalized(self):
        split = TrafficSplit({"a": 3.0, "b": 1.0})
        assert split.weights == {"a": 0.75, "b": 0.25}

    def test_assignment_is_sticky_and_roughly_proportional(self):
        split = TrafficSplit({"a": 0.7, "b": 0.3}, seed=5)
        users = np.arange(4000)
        first = split.assign(users)
        assert (split.assign(users) == first).all()
        share = float(np.mean(first == "a"))
        assert 0.65 < share < 0.75

    def test_different_seeds_decorrelate(self):
        users = np.arange(2000)
        one = TrafficSplit({"a": 0.5, "b": 0.5}, seed=1).assign(users)
        two = TrafficSplit({"a": 0.5, "b": 0.5}, seed=2).assign(users)
        assert (one != two).any()

    def test_single_model_takes_all_traffic(self):
        split = TrafficSplit({"only": 1.0})
        assert (split.assign(np.arange(100)) == "only").all()


class TestZeroWeightArms:
    def test_zero_weight_arm_receives_exactly_zero_traffic(self):
        split = TrafficSplit({"keep": 1.0, "ramped_down": 0.0}, seed=3)
        assert (split.assign(np.arange(20000)) == "keep").all()

    def test_boundary_hash_never_routes_to_zero_weight_last_arm(self, monkeypatch):
        # Regression: the fp-edge guard `minimum(buckets, len(models) - 1)`
        # used to clamp the hash ≈ 1.0 boundary onto the *last declared*
        # arm — even a 0%-weight one.  Pin the hash to the worst case.
        import repro.serving.gateway as gateway_module

        monkeypatch.setattr(
            gateway_module, "_hash_unit_interval", lambda users, seed: np.full(users.shape, 1.0)
        )
        split = TrafficSplit({"a": 0.5, "b": 0.5, "ramped_down": 0.0}, seed=1)
        assert (split.assign(np.arange(8)) == "b").all()

    def test_zero_weight_arm_stays_listed_but_inactive(self):
        split = TrafficSplit({"a": 2.0, "z": 0.0}, seed=1)
        assert split.models == ["a", "z"]  # declared arms keep their order
        assert split.weights == {"a": 1.0, "z": 0.0}

    def test_property_degenerate_weight_maps(self):
        # Property: over random weight maps (including many zero arms and
        # wildly different scales), zero-weight arms get exactly zero
        # traffic and positive arms roughly their share.
        rng = np.random.default_rng(42)
        users = np.arange(6000)
        for trial in range(25):
            num_arms = int(rng.integers(1, 7))
            weights = {}
            for index in range(num_arms):
                if rng.random() < 0.4 and index != 0:
                    weights[f"m{index}"] = 0.0
                else:
                    weights[f"m{index}"] = float(rng.uniform(0.05, 10.0))
            if sum(weights.values()) == 0.0:
                weights["m0"] = 1.0
            split = TrafficSplit(weights, seed=trial)
            assignments = split.assign(users)
            served = set(str(name) for name in np.unique(assignments))
            zero_arms = {name for name, weight in weights.items() if weight == 0.0}
            assert served.isdisjoint(zero_arms), (weights, served)
            for name, share in split.weights.items():
                observed = float(np.mean(assignments == name))
                assert abs(observed - share) < 0.05, (weights, name, observed)


class TestRouting:
    def test_default_model_answers_unnamed_requests(self, gateway, catalog, small_split):
        users = some_users(small_split)
        result = gateway.top_k(users, k=5)
        reference = catalog.recommender("gbgcn").recommend(users, k=5)
        assert np.array_equal(result.items, reference.items)
        assert gateway.request_counts == {"gbgcn": users.size}

    def test_named_model_overrides_default(self, gateway, catalog, small_split):
        users = some_users(small_split)
        result = gateway.top_k(users, k=5, model="mf")
        reference = catalog.recommender("mf").recommend(users, k=5)
        assert np.array_equal(result.items, reference.items)

    def test_scores_block(self, gateway, small_split):
        users = some_users(small_split, count=4)
        items = np.arange(6)
        block = gateway.scores(users, items, model="mf")
        assert block.shape == (4, 6)

    def test_no_default_and_no_model_is_an_error(self, catalog, small_split):
        gateway = ServingGateway(catalog)
        with pytest.raises(ValueError, match="default_model"):
            gateway.top_k(some_users(small_split))

    def test_unknown_default_fails_at_construction(self, catalog):
        with pytest.raises(UnknownCatalogModelError):
            ServingGateway(catalog, default_model="nope")


class TestMixedBatch:
    def test_rows_align_with_requests_and_match_per_model_serving(
        self, gateway, catalog, small_split
    ):
        users = some_users(small_split, count=9)
        names = ["gbgcn", "mf", "itempop"]
        requests = [(names[i % 3], int(user)) for i, user in enumerate(users)]
        mixed = gateway.top_k_mixed(requests, k=5)

        assert mixed.models == [name for name, _ in requests]
        assert np.array_equal(mixed.users, users)
        for name in names:
            rows = np.asarray([i for i, (request_name, _) in enumerate(requests) if request_name == name])
            reference = catalog.recommender(name).recommend(users[rows], k=5)
            assert np.array_equal(mixed.items[rows], reference.items)
            assert np.array_equal(mixed.scores[rows], reference.scores)

    def test_each_model_scores_once_not_per_row(self, gateway, catalog, small_split):
        users = some_users(small_split, count=12)
        requests = [("mf", int(user)) for user in users]
        gateway.top_k_mixed(requests, k=3)
        # One cold start, and every subsequent access is a hit on the same
        # resident -- the 12 rows were served by a single recommend call.
        assert catalog.stats.cold_starts == 1

    def test_bad_row_fails_before_any_model_scores(self, gateway, catalog, small_split):
        users = some_users(small_split, count=3)
        requests = [("mf", int(users[0])), ("nope", int(users[1])), ("gbgcn", int(users[2]))]
        with pytest.raises(UnknownCatalogModelError):
            gateway.top_k_mixed(requests, k=3)
        assert gateway.request_counts == {}
        assert catalog.stats.cold_starts == 0

    def test_empty_requests_rejected(self, gateway):
        with pytest.raises(ValueError, match="at least one"):
            gateway.top_k_mixed([])

    def test_for_request_strips_padding(self, gateway, small_split):
        users = some_users(small_split, count=2)
        mixed = gateway.top_k_mixed([("mf", int(users[0])), ("gbgcn", int(users[1]))], k=5)
        for index in range(2):
            items = mixed.for_request(index)
            assert len(items) <= 5
            assert (items >= 0).all()


class TestTrafficSplitServing:
    def test_every_user_is_served_by_their_assigned_model(self, gateway, catalog, small_split):
        users = some_users(small_split)
        split = TrafficSplit({"gbgcn": 0.5, "mf": 0.5}, seed=3)
        result = gateway.top_k_split(split, users, k=5)

        assignments = split.assign(users)
        assert result.models == [str(name) for name in assignments]
        for name in ("gbgcn", "mf"):
            rows = np.flatnonzero(assignments == name)
            if rows.size == 0:
                continue
            reference = catalog.recommender(name).recommend(users[rows], k=5)
            assert np.array_equal(result.items[rows], reference.items)

    def test_request_counts_tally_split_traffic(self, gateway, small_split):
        users = some_users(small_split)
        split = TrafficSplit({"gbgcn": 0.5, "mf": 0.5}, seed=3)
        gateway.top_k_split(split, users, k=5)
        assert sum(gateway.request_counts.values()) == users.size

    def test_empty_user_batch(self, gateway):
        result = gateway.top_k_split(TrafficSplit({"mf": 1.0}), np.asarray([], dtype=np.int64), k=5)
        assert result.items.shape == (0, 5)
        assert result.models == []


class TestGatewayMetrics:
    def test_requests_rows_and_latency_recorded_per_model(self, gateway, small_split):
        users = some_users(small_split, count=12)
        gateway.top_k(users, k=5)                       # default model: gbgcn
        gateway.top_k(users[:4], k=5, model="mf")
        gateway.top_k_mixed([("mf", int(users[0])), ("itempop", int(users[1]))], k=3)

        snap = gateway.metrics.snapshot()
        assert snap["models"]["gbgcn"]["requests"] == 1
        assert snap["models"]["gbgcn"]["rows_served"] == 12
        assert snap["models"]["mf"]["requests"] == 2
        assert snap["models"]["mf"]["rows_served"] == 5
        assert snap["models"]["itempop"]["rows_served"] == 1
        latency = snap["models"]["gbgcn"]["request_latency"]
        assert latency["count"] == 1
        assert 0.0 < latency["p50"] <= latency["max"] * 1.5
        # request_counts (the quick A/B tally) agrees with the registry.
        assert gateway.request_counts["mf"] == 5

    def test_gateway_shares_the_catalog_registry_by_default(self, gateway, catalog, small_split):
        users = some_users(small_split, count=4)
        gateway.top_k(users, k=3, model="mf")
        snap = catalog.metrics.snapshot()
        # One snapshot covers both the gateway's request and the catalog's
        # cold start for the same model.
        assert snap["models"]["mf"]["requests"] == 1
        assert snap["models"]["mf"]["cold_starts"] == 1
