"""ServingGateway: routing, traffic splits, and mixed-model batching."""

import numpy as np
import pytest

from repro.models import ModelSettings, build_model
from repro.persist import save_model
from repro.serving import (
    ModelCatalog,
    ServingGateway,
    TrafficSplit,
    UnknownCatalogModelError,
)

SETTINGS = ModelSettings(embedding_dim=8)
CATALOG_MODELS = {"gbgcn": "GBGCN", "mf": "MF", "itempop": "ItemPop"}


@pytest.fixture()
def catalog(small_split, tmp_path):
    directory = tmp_path / "models"
    for stem, model_name in CATALOG_MODELS.items():
        save_model(build_model(model_name, small_split.train, SETTINGS), directory / f"{stem}.npz")
    return ModelCatalog(directory, small_split.train)


@pytest.fixture()
def gateway(catalog):
    return ServingGateway(catalog, default_model="gbgcn")


def some_users(split, count=24):
    return np.asarray(sorted(split.test))[:count]


class TestTrafficSplit:
    def test_rejects_empty_and_invalid_weights(self):
        with pytest.raises(ValueError):
            TrafficSplit({})
        with pytest.raises(ValueError):
            TrafficSplit({"a": -1.0, "b": 2.0})
        with pytest.raises(ValueError):
            TrafficSplit({"a": 0.0})

    def test_weights_are_normalized(self):
        split = TrafficSplit({"a": 3.0, "b": 1.0})
        assert split.weights == {"a": 0.75, "b": 0.25}

    def test_assignment_is_sticky_and_roughly_proportional(self):
        split = TrafficSplit({"a": 0.7, "b": 0.3}, seed=5)
        users = np.arange(4000)
        first = split.assign(users)
        assert (split.assign(users) == first).all()
        share = float(np.mean(first == "a"))
        assert 0.65 < share < 0.75

    def test_different_seeds_decorrelate(self):
        users = np.arange(2000)
        one = TrafficSplit({"a": 0.5, "b": 0.5}, seed=1).assign(users)
        two = TrafficSplit({"a": 0.5, "b": 0.5}, seed=2).assign(users)
        assert (one != two).any()

    def test_single_model_takes_all_traffic(self):
        split = TrafficSplit({"only": 1.0})
        assert (split.assign(np.arange(100)) == "only").all()


class TestRouting:
    def test_default_model_answers_unnamed_requests(self, gateway, catalog, small_split):
        users = some_users(small_split)
        result = gateway.top_k(users, k=5)
        reference = catalog.recommender("gbgcn").recommend(users, k=5)
        assert np.array_equal(result.items, reference.items)
        assert gateway.request_counts == {"gbgcn": users.size}

    def test_named_model_overrides_default(self, gateway, catalog, small_split):
        users = some_users(small_split)
        result = gateway.top_k(users, k=5, model="mf")
        reference = catalog.recommender("mf").recommend(users, k=5)
        assert np.array_equal(result.items, reference.items)

    def test_scores_block(self, gateway, small_split):
        users = some_users(small_split, count=4)
        items = np.arange(6)
        block = gateway.scores(users, items, model="mf")
        assert block.shape == (4, 6)

    def test_no_default_and_no_model_is_an_error(self, catalog, small_split):
        gateway = ServingGateway(catalog)
        with pytest.raises(ValueError, match="default_model"):
            gateway.top_k(some_users(small_split))

    def test_unknown_default_fails_at_construction(self, catalog):
        with pytest.raises(UnknownCatalogModelError):
            ServingGateway(catalog, default_model="nope")


class TestMixedBatch:
    def test_rows_align_with_requests_and_match_per_model_serving(
        self, gateway, catalog, small_split
    ):
        users = some_users(small_split, count=9)
        names = ["gbgcn", "mf", "itempop"]
        requests = [(names[i % 3], int(user)) for i, user in enumerate(users)]
        mixed = gateway.top_k_mixed(requests, k=5)

        assert mixed.models == [name for name, _ in requests]
        assert np.array_equal(mixed.users, users)
        for name in names:
            rows = np.asarray([i for i, (request_name, _) in enumerate(requests) if request_name == name])
            reference = catalog.recommender(name).recommend(users[rows], k=5)
            assert np.array_equal(mixed.items[rows], reference.items)
            assert np.array_equal(mixed.scores[rows], reference.scores)

    def test_each_model_scores_once_not_per_row(self, gateway, catalog, small_split):
        users = some_users(small_split, count=12)
        requests = [("mf", int(user)) for user in users]
        gateway.top_k_mixed(requests, k=3)
        # One cold start, and every subsequent access is a hit on the same
        # resident -- the 12 rows were served by a single recommend call.
        assert catalog.stats.cold_starts == 1

    def test_bad_row_fails_before_any_model_scores(self, gateway, catalog, small_split):
        users = some_users(small_split, count=3)
        requests = [("mf", int(users[0])), ("nope", int(users[1])), ("gbgcn", int(users[2]))]
        with pytest.raises(UnknownCatalogModelError):
            gateway.top_k_mixed(requests, k=3)
        assert gateway.request_counts == {}
        assert catalog.stats.cold_starts == 0

    def test_empty_requests_rejected(self, gateway):
        with pytest.raises(ValueError, match="at least one"):
            gateway.top_k_mixed([])

    def test_for_request_strips_padding(self, gateway, small_split):
        users = some_users(small_split, count=2)
        mixed = gateway.top_k_mixed([("mf", int(users[0])), ("gbgcn", int(users[1]))], k=5)
        for index in range(2):
            items = mixed.for_request(index)
            assert len(items) <= 5
            assert (items >= 0).all()


class TestTrafficSplitServing:
    def test_every_user_is_served_by_their_assigned_model(self, gateway, catalog, small_split):
        users = some_users(small_split)
        split = TrafficSplit({"gbgcn": 0.5, "mf": 0.5}, seed=3)
        result = gateway.top_k_split(split, users, k=5)

        assignments = split.assign(users)
        assert result.models == [str(name) for name in assignments]
        for name in ("gbgcn", "mf"):
            rows = np.flatnonzero(assignments == name)
            if rows.size == 0:
                continue
            reference = catalog.recommender(name).recommend(users[rows], k=5)
            assert np.array_equal(result.items[rows], reference.items)

    def test_request_counts_tally_split_traffic(self, gateway, small_split):
        users = some_users(small_split)
        split = TrafficSplit({"gbgcn": 0.5, "mf": 0.5}, seed=3)
        gateway.top_k_split(split, users, k=5)
        assert sum(gateway.request_counts.values()) == users.size

    def test_empty_user_batch(self, gateway):
        result = gateway.top_k_split(TrafficSplit({"mf": 1.0}), np.asarray([], dtype=np.int64), k=5)
        assert result.items.shape == (0, 5)
        assert result.models == []
