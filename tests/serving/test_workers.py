"""WorkerPool: multi-process serving over one artifact directory (``-m procs``).

Real spawn-context worker processes, real queues.  Covered here:

* result parity — the pool returns byte-identical top-k lists to a
  single-process :class:`~repro.serving.gateway.ServingGateway` over the
  same artifacts (routing through N processes must not change a single
  recommendation);
* routing: default model, named models, per-request ``k``;
* pipelined fan-out (:meth:`WorkerPool.top_k_many`) preserves order;
* worker-side validation errors re-raise in the parent with their
  original type, and the pool keeps serving afterwards;
* fleet metrics: one snapshot per worker, merged counters sum exactly;
* crash recovery — a SIGKILLed worker (killed at the nastiest moment:
  right after replying, when its queue locks are most likely to be held)
  is respawned and every slot serves again;
* lifecycle edges: double start, use-after-stop, idempotent stop, clean
  exit codes.
"""

import os
import signal

import numpy as np
import pytest

from repro.models import ModelSettings, build_model
from repro.persist import LAYOUT_DIR, save_model
from repro.serving import (
    ModelCatalog,
    ServingError,
    ServingGateway,
    WorkerPool,
    WorkerPoolError,
)

pytestmark = pytest.mark.procs

SETTINGS = ModelSettings(embedding_dim=8)


@pytest.fixture(scope="module")
def artifact_dir(small_split, tmp_path_factory):
    directory = tmp_path_factory.mktemp("worker-artifacts")
    train = small_split.train
    save_model(build_model("MF", train, SETTINGS), directory / "mf.npyd", layout=LAYOUT_DIR)
    save_model(build_model("ItemPop", train, SETTINGS), directory / "pop.npyd", layout=LAYOUT_DIR)
    return directory


@pytest.fixture(scope="module")
def pool(artifact_dir, small_split):
    with WorkerPool(
        artifact_dir,
        small_split.train,
        workers=2,
        default_model="mf",
        default_k=10,
        request_timeout=60.0,
    ) as running:
        yield running


@pytest.fixture(scope="module")
def reference_gateway(artifact_dir, small_split):
    catalog = ModelCatalog(artifact_dir, small_split.train, default_k=10)
    return ServingGateway(catalog, default_model="mf")


class TestServingParity:
    def test_pool_matches_single_process_gateway_bitwise(self, pool, reference_gateway):
        users = np.arange(12)
        expected = reference_gateway.top_k(users)
        got = pool.top_k(users)
        assert got.items.tobytes() == expected.items.tobytes()
        assert got.scores.tobytes() == expected.scores.tobytes()

    def test_named_model_and_k_route_through(self, pool, reference_gateway):
        users = np.arange(6)
        expected = reference_gateway.top_k(users, k=3, model="pop")
        got = pool.top_k(users, k=3, model="pop")
        assert got.items.shape == (6, 3)
        assert got.items.tobytes() == expected.items.tobytes()

    def test_every_worker_answers_identically(self, pool, reference_gateway):
        """Round-robin over all slots: each worker's answer is the same."""
        users = np.arange(5)
        expected = reference_gateway.top_k(users)
        for _ in range(2 * pool.workers):
            assert pool.top_k(users).items.tobytes() == expected.items.tobytes()

    def test_top_k_many_preserves_request_order(self, pool, reference_gateway):
        batches = [np.arange(3), np.arange(4, 9), np.array([0]), np.arange(10, 14)]
        results = pool.top_k_many(batches, k=4)
        assert len(results) == len(batches)
        for batch, result in zip(batches, results):
            expected = reference_gateway.top_k(batch, k=4)
            assert result.items.tobytes() == expected.items.tobytes()

    def test_model_names_visible_on_start(self, pool):
        assert sorted(pool.model_names) == ["mf", "pop"]


class TestErrors:
    def test_worker_side_validation_error_reraises_with_type(self, pool, small_split):
        bad_users = np.array([0, small_split.train.num_users + 7])
        with pytest.raises(ServingError, match="user"):
            pool.top_k(bad_users)

    def test_pool_serves_after_a_request_error(self, pool):
        result = pool.top_k(np.arange(4))
        assert result.items.shape == (4, 10)

    def test_unknown_model_reraises(self, pool):
        with pytest.raises(Exception, match="nope"):
            pool.top_k(np.arange(2), model="nope")


class TestFleetMetrics:
    def test_one_snapshot_per_worker_and_exact_totals(self, pool):
        pool.top_k_many([np.arange(3)] * 4)
        snapshots = pool.metrics_snapshots()
        assert len(snapshots) == pool.workers
        fleet = pool.fleet_metrics()
        assert fleet["workers"] == pool.workers
        per_worker = sum(
            snap["totals"]["requests"] for snap in pool.metrics_snapshots()
        )
        assert fleet["totals"]["requests"] <= per_worker  # fleet merged earlier
        assert fleet["totals"]["request_latency"]["count"] == fleet["totals"]["requests"]
        assert "p99" in fleet["totals"]["request_latency"]


class TestCrashRecovery:
    def test_sigkill_right_after_reply_respawns_and_every_slot_serves(
        self, artifact_dir, small_split
    ):
        """REGRESSION — the shared-reply-queue design wedges the whole fleet.

        SIGKILL lands immediately after a reply is received, the moment
        the dead worker's queue internals are most likely mid-lock.  With
        per-worker queues only the dead worker's pair is corrupted: the
        survivor keeps serving, the respawn serves, and in-flight requests
        complete.
        """
        with WorkerPool(
            artifact_dir,
            small_split.train,
            workers=2,
            default_model="mf",
            request_timeout=60.0,
        ) as pool:
            expected = pool.top_k(np.arange(3)).items.tobytes()

            victim = pool._handles[0].process
            os.kill(victim.pid, signal.SIGKILL)
            victim.join()

            # Both slots must serve: requests alternate 1, 0, 1, 0.
            for _ in range(4):
                assert pool.top_k(np.arange(3)).items.tobytes() == expected
            assert pool.respawns == 1
            assert pool.alive_workers == 2

            fleet = pool.fleet_metrics()
            assert fleet["workers"] == 2

    def test_in_flight_requests_survive_a_crash(self, artifact_dir, small_split):
        """Requests owned by the dead worker are resubmitted, not lost."""
        with WorkerPool(
            artifact_dir,
            small_split.train,
            workers=2,
            default_model="mf",
            request_timeout=60.0,
            simulate_io_seconds=0.2,
        ) as pool:
            users = np.arange(3)
            expected = pool.top_k(users).items.tobytes()
            # Fan out to both workers, then kill one while all are in flight.
            with pool._api_lock:
                rids = [pool._submit("top_k", (users, None, None, None)) for _ in range(4)]
                victim = pool._handles[0].process
                os.kill(victim.pid, signal.SIGKILL)
                results = [pool._collect(rid) for rid in rids]
            assert [r.items.tobytes() for r in results] == [expected] * 4
            assert pool.respawns == 1


class TestLifecycle:
    def test_single_worker_pool_works(self, artifact_dir, small_split):
        with WorkerPool(artifact_dir, small_split.train, workers=1, default_model="mf") as pool:
            assert pool.top_k(np.arange(2)).items.shape == (2, 10)
            assert pool.fleet_metrics()["workers"] == 1

    def test_start_twice_and_use_after_stop_raise(self, artifact_dir, small_split):
        pool = WorkerPool(artifact_dir, small_split.train, workers=1, default_model="mf")
        pool.start()
        with pytest.raises(WorkerPoolError, match="twice"):
            pool.start()
        codes = pool.stop()
        assert set(codes.values()) == {0}, f"workers exited dirty: {codes}"
        assert pool.stop() == codes  # idempotent
        with pytest.raises(WorkerPoolError, match="stopped"):
            pool.top_k(np.arange(2))

    def test_unstarted_pool_refuses_requests(self, artifact_dir, small_split):
        pool = WorkerPool(artifact_dir, small_split.train, workers=1)
        with pytest.raises(WorkerPoolError, match="not started"):
            pool.top_k(np.arange(2))

    def test_invalid_construction(self, artifact_dir, small_split):
        with pytest.raises(ValueError, match="workers"):
            WorkerPool(artifact_dir, small_split.train, workers=0)
        with pytest.raises(ValueError, match="simulate_io_seconds"):
            WorkerPool(artifact_dir, small_split.train, simulate_io_seconds=-1.0)
