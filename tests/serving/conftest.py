"""Shared fixtures for the serving test tree."""

import pytest

from repro.lint import LockOrderWatchdog


@pytest.fixture()
def lock_watchdog():
    """Runtime lock-order watchdog for stress/chaos storms.

    A test builds its catalog, then calls
    ``lock_watchdog.watch_stack(catalog)`` to swap the documented locks
    (``CatalogEntry.load_lock`` → ``ModelCatalog._lock`` →
    ``MetricsRegistry._lock``) for instrumented proxies.  Teardown
    restores the raw locks and fails the test if any thread ever
    *attempted* an acquisition that inverts the hierarchy — deadlock
    risks surface on every run, not only on the losing interleaving.
    """
    watchdog = LockOrderWatchdog()
    yield watchdog
    watchdog.unwatch_all()
    watchdog.assert_clean()
