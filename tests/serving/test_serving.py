"""Serving layer: EmbeddingStore lifecycle and TopKRecommender correctness."""

import numpy as np
import pytest

from repro.models import build_model
from repro.optim import Adam
from repro.serving import EmbeddingStore, TopKRecommender
from repro.training import Trainer, build_batch_iterator


@pytest.fixture()
def gbgcn(small_split):
    return build_model("GBGCN", small_split.train, rng=np.random.default_rng(0))


@pytest.fixture()
def store(gbgcn):
    return EmbeddingStore(gbgcn)


class TestEmbeddingStore:
    def test_starts_stale_and_refresh_bumps_version(self, store):
        assert not store.is_fresh
        assert store.version == 0
        assert store.refresh() == 1
        assert store.is_fresh
        assert store.version == 1

    def test_scores_auto_refresh(self, small_split, store):
        users = np.asarray([0, 1], dtype=np.int64)
        block = store.score_all_items(users)
        assert store.is_fresh
        assert block.shape == (2, small_split.train.num_items)

    def test_scores_subset(self, store):
        block = store.scores(np.asarray([2]), np.asarray([0, 3, 1]))
        assert block.shape == (1, 3)

    def test_invalidate_marks_stale(self, store):
        store.refresh()
        store.invalidate()
        assert not store.is_fresh
        assert store.model._eval_cache is None

    def test_stale_without_auto_refresh_raises(self, gbgcn):
        store = EmbeddingStore(gbgcn, auto_refresh=False)
        with pytest.raises(RuntimeError):
            store.score_all_items(np.asarray([0]))

    def test_training_step_invalidates_via_callback(self, small_split, gbgcn):
        store = EmbeddingStore(gbgcn)
        store.refresh()
        before = store.score_all_items(np.asarray([0]))

        iterator = build_batch_iterator(gbgcn, small_split.train, batch_size=64, seed=0)
        trainer = Trainer(
            gbgcn,
            Adam(gbgcn.parameters(), lr=0.05),
            iterator,
            callbacks=[store.callback()],
        )
        trainer.fit(num_epochs=1)

        # The callback refreshed after training: serving state reflects the
        # updated parameters, not the pre-training cache.
        assert store.is_fresh
        assert store.version >= 2
        after = store.score_all_items(np.asarray([0]))
        assert not np.allclose(before, after)

    def test_serving_runs_in_eval_mode_and_restores_state(self, gbgcn):
        store = EmbeddingStore(gbgcn)
        # A caller in train mode gets train mode back ...
        gbgcn.train()
        store.score_all_items(np.asarray([0]))
        assert gbgcn.training
        # ... and a caller in eval mode is not clobbered back to train.
        gbgcn.eval()
        store.refresh()
        store.score_all_items(np.asarray([0]))
        assert not gbgcn.training
        gbgcn.train()

    def test_epoch_end_hook_invalidates(self, store):
        store.refresh()
        callback = store.callback(refresh_on_train_end=False)
        callback.on_epoch_end(trainer=None, record=None)
        assert not store.is_fresh
        callback.on_train_end(trainer=None, history=None)
        assert not store.is_fresh  # refresh_on_train_end=False leaves it stale


class TestTopKRecommender:
    def test_requires_dataset_for_exclusion(self, store):
        with pytest.raises(ValueError):
            TopKRecommender(store, k=5)

    def test_invalid_k(self, small_split, store):
        with pytest.raises(ValueError):
            TopKRecommender(store, k=0, dataset=small_split.full)

    def test_agrees_with_full_argsort(self, small_split, store):
        k = 7
        recommender = TopKRecommender(store, k=k, exclude_observed=False)
        users = np.asarray(sorted(small_split.test), dtype=np.int64)[:12]
        result = recommender.recommend(users)
        assert result.items.shape == (users.size, k)

        scores = store.score_all_items(users)
        for row in range(users.size):
            full_order = np.argsort(-scores[row], kind="stable")[:k]
            # Set equality on the chosen items plus exact score ordering
            # (argpartition may tie-break differently than argsort).
            assert set(result.items[row].tolist()) == set(full_order.tolist()) or np.allclose(
                scores[row][result.items[row]], scores[row][full_order]
            )
            assert (np.diff(result.scores[row]) <= 1e-12).all()

    def test_observed_items_excluded(self, small_split, store):
        recommender = TopKRecommender(store, k=10, dataset=small_split.full)
        observed = small_split.full.user_item_set(include_participants=True)
        users = np.asarray([user for user in sorted(observed) if observed[user]][:8], dtype=np.int64)
        result = recommender.recommend(users)
        for row, user in enumerate(users):
            recommended = set(int(i) for i in result.items[row] if i >= 0)
            assert not recommended & observed[int(user)]

    def test_k_larger_than_catalog_pads(self, small_split, store):
        # The result keeps the requested width; the impossible tail is
        # explicit -1 / -inf padding, never a silently shrunk shape.
        num_items = small_split.full.num_items
        recommender = TopKRecommender(store, k=num_items + 5, exclude_observed=False)
        result = recommender.recommend(np.asarray([0], dtype=np.int64))
        assert result.items.shape == (1, num_items + 5)
        assert (result.items[0, num_items:] == -1).all()
        assert np.isneginf(result.scores[0, num_items:]).all()
        assert (result.items[0, :num_items] >= 0).all()

    def test_recommend_user_convenience(self, small_split, store):
        recommender = TopKRecommender(store, k=5, dataset=small_split.full)
        items = recommender.recommend_user(0)
        assert items.ndim == 1
        assert 0 < items.size <= 5

    def test_for_user_unknown_raises(self, small_split, store):
        recommender = TopKRecommender(store, k=3, exclude_observed=False)
        result = recommender.recommend(np.asarray([1], dtype=np.int64))
        with pytest.raises(KeyError):
            result.for_user(999)

    def test_chunked_recommendation_matches_single_block(self, small_split, store):
        users = np.asarray(sorted(small_split.test), dtype=np.int64)[:10]
        chunked = TopKRecommender(
            store, k=5, dataset=small_split.full, batch_size=3
        ).recommend(users)
        single = TopKRecommender(
            store, k=5, dataset=small_split.full, batch_size=1024
        ).recommend(users)
        assert np.array_equal(chunked.items, single.items)
        np.testing.assert_allclose(chunked.scores, single.scores)

    def test_invalid_batch_size(self, small_split, store):
        with pytest.raises(ValueError):
            TopKRecommender(store, k=3, dataset=small_split.full, batch_size=0)

    def test_empty_user_batch(self, small_split, store):
        recommender = TopKRecommender(store, k=4, dataset=small_split.full)
        result = recommender.recommend(np.zeros(0, dtype=np.int64))
        assert result.items.shape == (0, 4)
        assert result.scores.shape == (0, 4)

    def test_works_for_every_registry_model(self, small_split):
        # The serving layer is model-agnostic: spot-check a pure-CF, a
        # social, and a group model beyond GBGCN.
        for name in ("MF", "DiffNet", "SIGR"):
            model = build_model(name, small_split.train, rng=np.random.default_rng(1))
            store = EmbeddingStore(model)
            recommender = TopKRecommender(store, k=4, dataset=small_split.full)
            result = recommender.recommend(np.asarray([0, 1, 2], dtype=np.int64))
            assert result.items.shape == (3, 4)
