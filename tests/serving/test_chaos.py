"""Chaos suite: seeded fault injection against the full serving stack (``-m chaos``).

These tests *create* the failures the resilience layer claims to survive —
injected artifact errors, slow-IO stalls, corrupted header bytes, worker
SIGKILLs — and assert the system-level invariants that matter:

1. **No wrong result, ever.**  Every successful answer is byte-verified
   against a clean reference for exactly the users requested — degraded
   serving may switch models, never users or rows.
2. **Every request terminates**, in a result or a *typed* error
   (`ServingUnavailableError` family) — no deadlock, no hang past the
   deadline scale, no raw stack trace from deep inside the score path.
3. **Nothing fails silently.**  Sheds, deadline misses, breaker trips and
   fallback serves reconcile exactly against the number of requests the
   test submitted.

Everything is seeded (fault plans, request schedules), so a failure here
replays deterministically.
"""

import threading
import time
from random import Random

import numpy as np
import pytest

from repro.models import ModelSettings, build_model
from repro.persist import LAYOUT_DIR, save_model
from repro.serving import (
    CatalogWarmer,
    Deadline,
    DeadlineExceededError,
    FaultPlan,
    FaultRule,
    ModelCatalog,
    OverloadedError,
    ResiliencePolicy,
    ServingGateway,
    ServingUnavailableError,
    WorkerPool,
    WorkerPoolError,
    corrupt_artifact,
    inject,
)

pytestmark = pytest.mark.chaos

SETTINGS = ModelSettings(embedding_dim=8)
K = 5


@pytest.fixture(scope="module")
def chaos_dir(small_split, tmp_path_factory):
    directory = tmp_path_factory.mktemp("chaos-artifacts")
    train = small_split.train
    save_model(build_model("MF", train, SETTINGS), directory / "mf.npyd", layout=LAYOUT_DIR)
    save_model(build_model("ItemPop", train, SETTINGS), directory / "pop.npyd", layout=LAYOUT_DIR)
    return directory


@pytest.fixture(scope="module")
def reference(chaos_dir, small_split):
    """Clean per-user answers for every model — the ground truth successes must match."""
    catalog = ModelCatalog(chaos_dir, small_split.train, default_k=K)
    gateway = ServingGateway(catalog, default_model="mf")
    every_user = np.arange(small_split.train.num_users)
    return {
        name: gateway.top_k(every_user, k=K, model=name).items
        for name in ("mf", "pop")
    }


class TestThreadedChaos:
    """Concurrent traffic against a gateway while faults fire underneath it."""

    THREADS = 8
    REQUESTS_PER_THREAD = 25

    def run_storm(self, gateway, num_users, seed):
        outcomes = []          # (kind, payload) per request, in no particular order
        outcomes_lock = threading.Lock()

        def client(thread_index):
            rng = Random(seed * 1009 + thread_index)
            for _ in range(self.REQUESTS_PER_THREAD):
                start = rng.randrange(0, num_users - 4)
                users = np.arange(start, start + 4)
                try:
                    result = gateway.top_k(users, k=K)
                    record = ("ok", (users, result.items.copy()))
                except OverloadedError:
                    record = ("shed", None)
                except DeadlineExceededError:
                    record = ("deadline", None)
                except ServingUnavailableError:
                    record = ("unavailable", None)
                with outcomes_lock:
                    outcomes.append(record)

        threads = [
            threading.Thread(target=client, args=(index,)) for index in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            # Generous bound; a hang here is invariant 2 failing.
            thread.join(timeout=60.0)
            assert not thread.is_alive(), "request thread hung: termination invariant broken"
        return outcomes

    def test_storm_of_faults_holds_every_invariant(
        self, chaos_dir, small_split, reference, lock_watchdog
    ):
        num_users = small_split.train.num_users
        policy = ResiliencePolicy(
            deadline_seconds=5.0,
            max_inflight=6,
            breaker_failure_threshold=3,
            breaker_reset_seconds=0.02,
            serve_stale_on_failure=True,
            fallback_models=("pop",),
        )
        catalog = ModelCatalog(chaos_dir, small_split.train, default_k=K)
        lock_watchdog.watch_stack(catalog)
        gateway = ServingGateway(catalog, default_model="mf", policy=policy)
        gateway.top_k(np.arange(4), k=K)  # one clean serve seeds last-good
        catalog.evict_all()
        plan = FaultPlan(
            [
                # The primary model's cold starts fail ~40% of the time.
                FaultRule("catalog.cold_start", match="mf", probability=0.4, count=None),
                # Scoring occasionally stalls (deadline pressure, lock pressure).
                FaultRule(
                    "gateway.score", kind="stall", seconds=0.005, probability=0.2, count=None
                ),
                # Background rescans hit transient header IO errors.
                FaultRule(
                    "persist.read_header",
                    error_type=OSError,
                    error_message="injected EIO",
                    probability=0.2,
                    count=None,
                ),
            ],
            seed=1234,
        )
        warmer = CatalogWarmer(
            catalog, interval_seconds=0.02, resilience=gateway.resilience
        )
        with inject(plan):
            warmer.start()
            try:
                outcomes = self.run_storm(gateway, num_users, seed=99)
            finally:
                warmer.stop(raise_errors=False)

        submitted = self.THREADS * self.REQUESTS_PER_THREAD
        tally = {"ok": 0, "shed": 0, "deadline": 0, "unavailable": 0}
        for kind, payload in outcomes:
            tally[kind] += 1
            if kind != "ok":
                continue
            users, items = payload
            # Invariant 1: the answer is byte-exact for exactly these users,
            # from the primary or an allowed degraded source — never a
            # wrong user's rows, never a model outside the fallback chain.
            allowed = [reference["mf"][users], reference["pop"][users]]
            assert any(
                items.tobytes() == candidate.tobytes() for candidate in allowed
            ), "a served result matched no clean reference: wrong-row or wrong-model serve"
        # Invariant 2 is the join() above; invariant 3 is the reconciliation:
        assert sum(tally.values()) == submitted
        snap = gateway.metrics.snapshot()
        # +1 for the seeding request before the storm.
        assert snap["totals"]["requests"] == tally["ok"] + 1
        assert snap["totals"]["sheds"] == tally["shed"]
        assert snap["totals"]["deadline_exceeded"] == tally["deadline"]
        assert snap["totals"]["errors"] >= tally["unavailable"]
        assert plan.total_triggered() > 0, "the storm must actually have injected faults"
        # The stack still serves cleanly after the chaos (no wedged state).
        assert gateway.top_k(np.arange(6), k=K).items.shape == (6, K)

    def test_storm_is_livelock_free_without_fallbacks(
        self, chaos_dir, small_split, reference, lock_watchdog
    ):
        """Hard mode: a permanent fault, no stale copy, no fallback model.

        Every request must still terminate promptly with a *typed*
        unavailability — the breaker's open/half-open churn must never
        livelock, hang, or leak a raw loader exception."""
        policy = ResiliencePolicy(
            deadline_seconds=5.0,
            breaker_failure_threshold=2,
            breaker_reset_seconds=0.01,
            serve_stale_on_failure=False,
        )
        catalog = ModelCatalog(chaos_dir, small_split.train, default_k=K)
        lock_watchdog.watch_stack(catalog)
        gateway = ServingGateway(catalog, default_model="mf", policy=policy)
        plan = FaultPlan(
            [FaultRule("catalog.cold_start", match="mf", count=None)], seed=77
        )
        with inject(plan):
            outcomes = self.run_storm(gateway, small_split.train.num_users, seed=3)
        tally = {}
        for kind, _ in outcomes:
            tally[kind] = tally.get(kind, 0) + 1
        assert tally == {"unavailable": self.THREADS * self.REQUESTS_PER_THREAD}, (
            "a permanently broken model with no fallbacks must fail every "
            "request typed — nothing served, nothing hung, nothing raw"
        )
        assert plan.total_triggered() > 0


class TestCorruptedArtifacts:
    def test_corrupt_header_degrades_typed_then_recovers(self, tmp_path, small_split):
        """Corrupt bytes on disk → typed degradation; restored bytes → recovery."""
        path = tmp_path / "mf.npyd"
        save_model(build_model("MF", small_split.train, SETTINGS), path, layout=LAYOUT_DIR)
        pristine = (path / "header.json").read_bytes()
        policy = ResiliencePolicy(
            breaker_failure_threshold=1, breaker_reset_seconds=0.0,
            serve_stale_on_failure=False,
        )
        catalog = ModelCatalog(tmp_path, small_split.train, default_k=K)
        gateway = ServingGateway(catalog, default_model="mf", policy=policy)
        clean = gateway.top_k(np.arange(4), k=K)

        corrupt_artifact(path, seed=9)
        catalog.evict_all()
        with pytest.raises(ServingUnavailableError):
            # The corrupted publish surfaces as a typed unavailability —
            # never a wrong result, never a raw JSON/zip parse error.
            for _ in range(3):
                gateway.top_k(np.arange(4), k=K)

        (path / "header.json").write_bytes(pristine)
        warmer = CatalogWarmer(catalog, resilience=gateway.resilience)
        warmer.run_once()  # rescan picks the healed file up; probe closes the breaker
        recovered = gateway.top_k(np.arange(4), k=K)
        assert recovered.items.tobytes() == clean.items.tobytes()


class TestWorkerPoolChaos:
    """Process-level chaos: stalls, deadlines and SIGKILLs inside real workers."""

    def test_late_reply_after_timeout_is_discarded_by_request_id(
        self, chaos_dir, small_split
    ):
        """Satellite regression: a reply landing after its request timed out
        must never be delivered to a later request (and never resubmitted
        as a zombie by crash recovery)."""
        plan = FaultPlan(
            [FaultRule("worker.request", kind="stall", seconds=1.5, count=1)]
        )
        with WorkerPool(
            chaos_dir,
            small_split.train,
            workers=1,
            default_model="mf",
            request_timeout=1.0,
            fault_plan=plan,
        ) as pool:
            with pytest.raises(WorkerPoolError, match="no reply"):
                pool.top_k(np.arange(3), k=K)  # stalled past the timeout
            assert not pool._outstanding, "timed-out request must not leak"
            # The worker is still alive, finishing the stalled request; its
            # late reply must be dropped by id.  A different-shaped request
            # proves no cross-delivery: 5 users in, 5 rows out.
            result = pool.top_k(np.arange(10, 15), k=K)
            assert result.items.shape == (5, K)
            assert pool.respawns == 0, "a stall is not a crash; nothing respawned"

    def test_deadline_expires_while_worker_stalls(self, chaos_dir, small_split):
        plan = FaultPlan(
            [FaultRule("worker.request", kind="stall", seconds=2.0, count=1)]
        )
        with WorkerPool(
            chaos_dir,
            small_split.train,
            workers=1,
            default_model="mf",
            request_timeout=30.0,
            fault_plan=plan,
        ) as pool:
            started = time.perf_counter()
            with pytest.raises(DeadlineExceededError):
                pool.top_k(np.arange(3), k=K, deadline=0.3)
            elapsed = time.perf_counter() - started
            assert elapsed < 2.0, "the deadline, not the stall, must bound the wait"
            # Parent-side metric recorded; folded into the fleet view.
            fleet = pool.fleet_metrics()
            assert fleet["totals"]["deadline_exceeded"] == 1
            assert fleet["workers"] == 1
            assert pool.top_k(np.arange(2), k=K).items.shape == (2, K)

    def test_stashed_reply_is_refused_once_the_deadline_passed(
        self, chaos_dir, small_split
    ):
        """A reply drained into the parent's stash (while collecting another
        request in ``top_k_many``) must not be delivered after its request's
        deadline expired — the 'no silent late answers' invariant covers
        already-arrived replies too."""
        with WorkerPool(
            chaos_dir, small_split.train, workers=1, default_model="mf"
        ) as pool:
            with pool._api_lock:
                pool._replies[999] = ("value", "stale-result")
                with pytest.raises(DeadlineExceededError):
                    pool._collect(
                        999, deadline=Deadline(time.monotonic() - 1.0), label="mf"
                    )
                assert 999 not in pool._replies, "the late stashed reply is discarded"
            assert pool.metrics.snapshot()["totals"]["deadline_exceeded"] == 1
            # The pool still serves normally afterwards.
            assert pool.top_k(np.arange(2), k=K).items.shape == (2, K)

    def test_deadline_mid_serve_counts_exactly_once_fleet_wide(
        self, chaos_dir, small_split
    ):
        """A deadline expiring *after* the worker dequeued the request must
        land one ``deadline_exceeded`` in the fleet view, not one from the
        worker's gateway plus one from the parent."""
        with WorkerPool(
            chaos_dir,
            small_split.train,
            workers=1,
            default_model="mf",
            request_timeout=30.0,
            simulate_io_seconds=0.6,  # the worker dequeues live, then stalls
        ) as pool:
            with pytest.raises(DeadlineExceededError):
                pool.top_k(np.arange(3), k=K, deadline=0.2)
            # The metrics request queues behind the stalled serve, so by the
            # time the snapshot returns the worker has long finished — and
            # would have counted the expiry too, were it not parent-owned.
            fleet = pool.fleet_metrics()
            assert fleet["totals"]["deadline_exceeded"] == 1
            assert pool.top_k(np.arange(2), k=K).items.shape == (2, K)

    def test_sigkill_mid_request_respawns_and_serves_correctly(
        self, chaos_dir, small_split
    ):
        plan = FaultPlan([FaultRule("worker.request", kind="kill", start=2, count=1)])
        with WorkerPool(
            chaos_dir,
            small_split.train,
            workers=1,
            default_model="mf",
            request_timeout=60.0,
            fault_plan=plan,
        ) as pool:
            expected = pool.top_k(np.arange(4), k=K).items.tobytes()   # call 0
            assert pool.top_k(np.arange(4), k=K).items.tobytes() == expected  # call 1
            # Call 2 SIGKILLs the worker mid-request; the pool respawns the
            # slot and resubmits, and the answer is still byte-correct.
            assert pool.top_k(np.arange(4), k=K).items.tobytes() == expected
            assert pool.respawns == 1

    def test_pool_inflight_budget_sheds_typed_and_counted(self, chaos_dir, small_split):
        plan = FaultPlan(
            [FaultRule("worker.request", kind="stall", seconds=0.5, count=2)]
        )
        with WorkerPool(
            chaos_dir,
            small_split.train,
            workers=2,
            default_model="mf",
            request_timeout=30.0,
            max_inflight=2,
            fault_plan=plan,
        ) as pool:
            batches = [np.arange(3)] * 4
            with pytest.raises(OverloadedError, match="shed"):
                # Both workers stall on their first request, so the queue
                # holds 2 in-flight when batch 3 arrives: shed, typed.
                pool.top_k_many(batches, k=K)
            assert pool.metrics.snapshot()["totals"]["sheds"] >= 1
            fleet = pool.fleet_metrics()
            assert fleet["totals"]["sheds"] >= 1, "pool-side sheds reconcile fleet-wide"
