"""Cross-process hot-swap detection under a pinned stat identity (``-m procs``).

The catalog's stat check cannot see a republish whose size and
``mtime_ns`` are identical to the old artifact's — exactly what a *second
process* can produce (its own clock tick, ``os.utime`` replication, or a
same-tick copy).  The content-token grace window bounds how long such a
swap can stay invisible: a serving catalog re-reads the token at most one
``content_check_grace_seconds`` after the swap, whatever process wrote it.

Here a real writer subprocess republishes the artifact with different
weights and pins the original ``mtime_ns`` back onto the file, and the
serving catalog must be serving the *new* weights within ~one grace
period — while inside the window the stat fast path keeps the hot path
free of per-request file IO.
"""

import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.models import ModelSettings, build_model
from repro.serving import ModelCatalog

pytestmark = pytest.mark.procs

SETTINGS = ModelSettings(embedding_dim=8)
GRACE_SECONDS = 0.4

_WRITER_SCRIPT = """
import os, sys
import numpy as np
from repro.data import BeibeiLikeConfig, generate_dataset, leave_one_out_split
from repro.models import ModelSettings, build_model
from repro.persist import save_model

target, mtime_ns = sys.argv[1], int(sys.argv[2])
split = leave_one_out_split(generate_dataset(BeibeiLikeConfig.small(seed=99)), seed=5)
replacement = build_model("MF", split.train, ModelSettings(embedding_dim=8),
                          rng=np.random.default_rng(2024))
save_model(replacement, target)
# Pin the original stat identity: same path, same size (same shapes,
# uncompressed npz), same mtime_ns -> the stat fast path sees no change.
os.utime(target, ns=(mtime_ns, mtime_ns))
stat = os.stat(target)
assert stat.st_mtime_ns == mtime_ns, stat.st_mtime_ns
print("republished")
"""


def test_republish_from_another_process_is_served_within_one_grace_period(
    small_split, tmp_path
):
    directory = tmp_path / "models"
    target = directory / "mf.npz"
    original = build_model("MF", small_split.train, SETTINGS, rng=np.random.default_rng(1))
    from repro.persist import save_model

    save_model(original, target)
    # Age the artifact past the "recent mtime" fast-path window so only the
    # periodic grace re-check can find the swap (the adversarial case).
    aged_ns = time.time_ns() - int(3600 * 1e9)
    os.utime(target, ns=(aged_ns, aged_ns))
    original_mtime_ns = os.stat(target).st_mtime_ns

    catalog = ModelCatalog(directory, small_split.train)
    catalog.content_check_grace_seconds = GRACE_SECONDS
    users = np.arange(8)
    before = catalog.recommender("mf", k=5).recommend(users)

    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    writer = subprocess.run(
        [sys.executable, "-c", _WRITER_SCRIPT, str(target), str(original_mtime_ns)],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert writer.returncode == 0, f"writer failed:\n{writer.stderr}"
    assert os.stat(target).st_mtime_ns == original_mtime_ns  # stat identity pinned

    # The swap must be served no later than ~one grace period after the
    # republish, even though stat alone can never reveal it.
    swap_deadline = time.monotonic() + 2 * GRACE_SECONDS + 2.0
    swapped_at = None
    while time.monotonic() < swap_deadline:
        now = catalog.recommender("mf", k=5).recommend(users)
        if now.items.tobytes() != before.items.tobytes():
            swapped_at = time.monotonic()
            break
        time.sleep(0.02)
    assert swapped_at is not None, (
        "catalog never served the republished weights: the content-token "
        "grace re-check is not running for stat-identical replacements"
    )

    # And the swap is complete/consistent: the new weights keep being served.
    after = catalog.recommender("mf", k=5).recommend(users)
    assert after.items.tobytes() == now.items.tobytes()
    assert catalog.entries["mf"].version >= 2
