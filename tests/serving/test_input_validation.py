"""Request-boundary validation: user-ID bounds and the top-k shape contract.

Regression suite for two serving bugs:

* a **negative** user ID used to flow straight into numpy fancy indexing,
  which wraps around — user ``-1`` silently got the *last* user's
  recommendations (wrong results, no error);
* a **too-large** user ID used to surface as a raw ``IndexError`` from
  whichever model internal happened to index first — no model name, no
  offending ID, deep stack.

Both now raise :class:`repro.serving.ServingError` at the request boundary,
naming the offending IDs (and, at the gateway, the model).
"""

import numpy as np
import pytest

from repro.models import ModelSettings, build_model
from repro.persist import save_model
from repro.serving import (
    EmbeddingStore,
    ModelCatalog,
    ServingError,
    ServingGateway,
    TopKRecommender,
    validate_user_ids,
)

SETTINGS = ModelSettings(embedding_dim=8)


@pytest.fixture()
def store(small_split):
    return EmbeddingStore(build_model("MF", small_split.train, SETTINGS, rng=np.random.default_rng(0)))


@pytest.fixture()
def recommender(store, small_split):
    return TopKRecommender(store, k=5, dataset=small_split.full)


@pytest.fixture()
def gateway(small_split, tmp_path):
    directory = tmp_path / "fleet"
    for stem, name in {"mf": "MF", "gbgcn": "GBGCN"}.items():
        save_model(build_model(name, small_split.train, SETTINGS), directory / f"{stem}.npz")
    return ServingGateway(ModelCatalog(directory, small_split.train), default_model="mf")


class TestValidateUserIds:
    def test_valid_ids_pass_through_as_int64(self):
        out = validate_user_ids([0, 3, 7], num_users=10)
        assert out.dtype == np.int64
        assert np.array_equal(out, [0, 3, 7])

    def test_empty_batch_is_valid(self):
        assert validate_user_ids(np.asarray([], dtype=np.int64), num_users=10).size == 0

    def test_negative_ids_rejected_with_wraparound_explanation(self):
        with pytest.raises(ServingError, match=r"\[-1\].*wrap around"):
            validate_user_ids([0, -1], num_users=10)

    def test_too_large_ids_rejected_with_range(self):
        with pytest.raises(ServingError, match=r"\[12\] >= num_users \(10\)"):
            validate_user_ids([12, 3], num_users=10)

    def test_model_name_lands_in_message(self):
        with pytest.raises(ServingError, match="for model 'gbgcn'"):
            validate_user_ids([-5], num_users=10, model="gbgcn")

    def test_servingerror_is_a_value_error(self):
        # Callers that caught ValueError before this error type existed
        # keep working.
        assert issubclass(ServingError, ValueError)


class TestRecommenderBoundary:
    def test_negative_user_would_silently_wrap_without_validation(self, store, small_split):
        """The pre-fix failure mode, demonstrated one layer below the guard:
        numpy happily serves row -1 as the last user's row."""
        num_users = small_split.train.num_users
        wrapped = store.score_all_items(np.asarray([-1]))
        last = store.score_all_items(np.asarray([num_users - 1]))
        assert np.allclose(wrapped, last)  # identical rows — the silent bug

    def test_negative_user_now_raises_typed_error(self, recommender):
        with pytest.raises(ServingError, match=r"negative user IDs \[-1\]"):
            recommender.recommend(np.asarray([0, -1]))

    def test_too_large_user_now_raises_typed_error(self, recommender, small_split):
        bad = small_split.train.num_users + 3
        with pytest.raises(ServingError, match=rf"\[{bad}\]"):
            recommender.recommend(np.asarray([bad]))

    def test_recommend_user_convenience_is_guarded_too(self, recommender):
        with pytest.raises(ServingError):
            recommender.recommend_user(-2)

    def test_nothing_is_scored_when_any_id_is_bad(self, recommender):
        # The whole batch is rejected up front; a later valid row never
        # produces a partial result.
        with pytest.raises(ServingError):
            recommender.recommend(np.asarray([5, -1, 2]))


class TestGatewayBoundary:
    def test_top_k_negative_user_names_model_and_id(self, gateway):
        with pytest.raises(ServingError, match=r"for model 'mf'.*\[-1\]"):
            gateway.top_k(np.asarray([-1]), k=3)

    def test_top_k_too_large_user_is_typed_not_indexerror(self, gateway, small_split):
        bad = small_split.train.num_users + 10
        with pytest.raises(ServingError, match=rf"for model 'gbgcn'.*\[{bad}\]"):
            gateway.top_k(np.asarray([0, bad]), k=3, model="gbgcn")

    def test_scores_boundary_is_guarded(self, gateway):
        with pytest.raises(ServingError, match="for model 'mf'"):
            gateway.scores(np.asarray([-3]), np.asarray([0, 1]))

    def test_mixed_batch_error_names_the_offending_model(self, gateway, small_split):
        bad = small_split.train.num_users
        with pytest.raises(ServingError, match="for model 'gbgcn'"):
            gateway.top_k_mixed([("mf", 0), ("gbgcn", bad)], k=3)

    def test_valid_traffic_is_unaffected(self, gateway):
        result = gateway.top_k(np.asarray([0, 1, 2]), k=3)
        assert result.items.shape == (3, 3)


class TestTopKShapeContract:
    def test_k_beyond_catalog_pads_instead_of_clamping(self, recommender, small_split):
        num_items = small_split.train.num_items
        result = recommender.recommend(np.asarray([0, 1]), k=num_items + 7)
        assert result.items.shape == (2, num_items + 7)
        assert (result.items[:, num_items:] == -1).all()
        assert np.isneginf(result.scores[:, num_items:]).all()

    def test_for_user_strips_padding(self, recommender, small_split):
        num_items = small_split.train.num_items
        result = recommender.recommend(np.asarray([0]), k=num_items + 7)
        assert result.for_user(0).size <= num_items

    def test_gateway_result_keeps_requested_width(self, gateway, small_split):
        wide = small_split.train.num_items + 2
        result = gateway.top_k(np.asarray([0, 1]), k=wide)
        assert result.items.shape == (2, wide)

    def test_nonpositive_k_raises_typed_error(self, recommender):
        with pytest.raises(ServingError, match="k must be positive"):
            recommender.recommend(np.asarray([0]), k=0)
