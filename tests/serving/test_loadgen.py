"""Scenario-engine traffic half: stream generation and open-loop replay.

Unit tests drive the :class:`ReplayHarness` against an in-process stub
target so every outcome path (ok/shed/deadline/error) is exercised
deterministically; the ``chaos``-marked integration test then replays a
seeded flash-burst stream against a *real* gateway under a
``FaultPlan`` stall storm and checks the resilience ledger reconciles
exactly — the "replay-vs-resilience" contract of the scenario engine.
"""

import os
import subprocess
import sys
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.models import build_model
from repro.persist import save_model
from repro.serving import (
    BASELINE_PHASE,
    DeadlineExceededError,
    FaultPlan,
    FaultRule,
    FlashBurst,
    MetricsRegistry,
    ModelCatalog,
    OverloadedError,
    ReplayHarness,
    RequestStream,
    ResiliencePolicy,
    ServingGateway,
    TrafficConfig,
    TrafficModel,
    inject,
)

pytestmark = pytest.mark.scenario


def small_traffic(**overrides) -> TrafficConfig:
    defaults = dict(
        duration_seconds=4.0,
        base_rate_per_second=60.0,
        diurnal_amplitude=0.25,
        diurnal_period_seconds=4.0,
        bursts=(
            FlashBurst(
                start_seconds=1.5,
                multiplier=4.0,
                rise_seconds=0.25,
                hold_seconds=0.75,
                decay_seconds=0.25,
                name="flash",
                hot_item_fraction=0.9,
                hot_items=4,
                deadline_seconds=0.05,
            ),
        ),
        deadline_seconds=0.25,
        seed=13,
    )
    defaults.update(overrides)
    return TrafficConfig(**defaults)


class TestFlashBurst:
    def test_envelope_shape(self):
        burst = FlashBurst(start_seconds=10.0, multiplier=3.0,
                           rise_seconds=2.0, hold_seconds=4.0, decay_seconds=2.0)
        t = np.array([9.9, 10.0, 11.0, 12.0, 14.0, 16.0, 17.0, 18.0, 18.1])
        shape = burst.shape(t)
        assert shape[0] == 0.0          # before
        assert shape[2] == pytest.approx(0.5)   # mid-rise
        assert shape[3] == 1.0          # plateau start
        assert shape[4] == 1.0          # plateau
        assert shape[6] == pytest.approx(0.5)   # mid-decay
        assert shape[8] == 0.0          # after

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"start_seconds": -1.0, "multiplier": 2.0},
            {"start_seconds": 0.0, "multiplier": 0.5},
            {"start_seconds": 0.0, "multiplier": 2.0, "rise_seconds": -1.0},
            {"start_seconds": 0.0, "multiplier": 2.0, "rise_seconds": 0.0,
             "hold_seconds": 0.0, "decay_seconds": 0.0},
            {"start_seconds": 0.0, "multiplier": 2.0, "hot_item_fraction": 1.5},
            {"start_seconds": 0.0, "multiplier": 2.0, "hot_items": 0},
            {"start_seconds": 0.0, "multiplier": 2.0, "name": BASELINE_PHASE},
            {"start_seconds": 0.0, "multiplier": 2.0, "deadline_seconds": 0.0},
        ],
    )
    def test_invalid_bursts_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FlashBurst(**kwargs)


class TestTrafficConfig:
    def test_defaults_are_valid(self):
        TrafficConfig()

    def test_burst_beyond_duration_rejected(self):
        with pytest.raises(ValueError, match="beyond duration"):
            TrafficConfig(
                duration_seconds=10.0,
                bursts=(FlashBurst(start_seconds=8.0, multiplier=2.0),),
            )

    def test_duplicate_burst_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            TrafficConfig(
                duration_seconds=120.0,
                bursts=(
                    FlashBurst(start_seconds=0.0, multiplier=2.0, name="x"),
                    FlashBurst(start_seconds=60.0, multiplier=2.0, name="x"),
                ),
            )

    def test_nonpositive_model_weight_rejected(self):
        with pytest.raises(ValueError, match="weight"):
            TrafficConfig(model_weights=(("mf", 0.0),))

    def test_phases_order(self):
        config = small_traffic()
        assert config.phases == (BASELINE_PHASE, "flash")


class TestTrafficModel:
    @pytest.fixture(scope="class")
    def stream(self) -> RequestStream:
        return TrafficModel(small_traffic()).generate(num_users=500, num_items=100)

    def test_timestamps_sorted_within_duration(self, stream):
        assert (np.diff(stream.timestamps) >= 0.0).all()
        assert stream.timestamps[0] >= 0.0
        assert stream.timestamps[-1] < stream.config.duration_seconds

    def test_ids_in_range(self, stream):
        assert stream.users.min() >= 0 and stream.users.max() < 500
        assert stream.items.min() >= 0 and stream.items.max() < 100

    def test_burst_window_contains_multiplier(self, stream):
        # Offered rate during the burst plateau must reflect the multiplier.
        burst = stream.config.bursts[0]
        assert stream.offered_rate("flash") > 2.0 * stream.offered_rate(BASELINE_PHASE)
        counts = stream.phase_counts()
        assert counts["flash"] > 0 and counts[BASELINE_PHASE] > 0
        assert sum(counts.values()) == len(stream)
        # Phase labels cover exactly the burst window.
        flash = stream.phase_index == 1
        assert stream.timestamps[flash].min() >= burst.start_seconds
        assert stream.timestamps[flash].max() < burst.end_seconds

    def test_hot_key_skew_in_burst(self, stream):
        flash_items = stream.items[stream.phase_index == 1]
        hot_share = float(np.mean(flash_items < stream.config.bursts[0].hot_items))
        assert hot_share >= 0.8  # configured 0.9 fraction, allow sampling noise

    def test_deadlines_follow_phase(self, stream):
        deadline = stream.deadline_seconds
        assert (deadline[stream.phase_index == 1] == 0.05).all()
        assert (deadline[stream.phase_index == 0] == 0.25).all()
        assert stream.deadline_of(0) in (0.05, 0.25)

    def test_no_deadline_encodes_as_none(self):
        stream = TrafficModel(
            small_traffic(bursts=(), deadline_seconds=None)
        ).generate(num_users=50, num_items=10)
        assert np.isnan(stream.deadline_seconds).all()
        assert stream.deadline_of(0) is None

    def test_model_routing_by_weight(self):
        config = small_traffic(model_weights=(("a", 3.0), ("b", 1.0)))
        stream = TrafficModel(config).generate(num_users=200, num_items=50)
        names = [stream.model_name(i) for i in range(len(stream))]
        share_a = names.count("a") / len(names)
        assert share_a == pytest.approx(0.75, abs=0.08)
        assert None not in names

    def test_default_routing_without_weights(self, stream):
        assert (stream.model_index == -1).all()
        assert stream.model_name(0) is None

    def test_rate_curve_diurnal_and_burst(self):
        model = TrafficModel(small_traffic())
        base = model.config.base_rate_per_second
        # Plateau of the burst sits at multiplier x the diurnal-modulated base.
        plateau = float(model.rate_at(np.array([2.0]))[0])
        assert plateau > 2.5 * base
        trough = float(model.rate_at(np.array([3.0]))[0])
        assert trough < plateau

    def test_empty_stream_rejected(self):
        with pytest.raises(ValueError, match="empty stream"):
            TrafficModel(
                TrafficConfig(duration_seconds=0.01, base_rate_per_second=0.01,
                              bin_seconds=0.01)
            ).generate(num_users=10, num_items=10)


class TestStreamDeterminism:
    def test_same_config_same_digest(self):
        a = TrafficModel(small_traffic()).generate(300, 80)
        b = TrafficModel(small_traffic()).generate(300, 80)
        assert a.digest() == b.digest()
        assert np.array_equal(a.timestamps, b.timestamps)

    def test_seed_changes_digest(self):
        a = TrafficModel(small_traffic(seed=1)).generate(300, 80)
        b = TrafficModel(small_traffic(seed=2)).generate(300, 80)
        assert a.digest() != b.digest()

    def test_population_size_is_part_of_identity(self):
        a = TrafficModel(small_traffic()).generate(300, 80)
        b = TrafficModel(small_traffic()).generate(301, 80)
        assert a.digest() != b.digest()

    def test_digest_stable_across_subprocess_boundary(self):
        import repro

        local = TrafficModel(small_traffic()).generate(300, 80).digest()
        code = (
            "from tests.serving.test_loadgen import small_traffic;"
            "from repro.serving import TrafficModel;"
            "print(TrafficModel(small_traffic()).generate(300, 80).digest())"
        )
        env = dict(os.environ)
        src = Path(repro.__file__).resolve().parent.parent
        repo = src.parent
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src), str(repo), env.get("PYTHONPATH", "")]
        )
        remote = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
            timeout=120,
            env=env,
        ).stdout.strip()
        assert remote == local


class _StubTarget:
    """A scripted serving target: outcome chosen per request user id."""

    def __init__(self):
        self.calls = 0
        self.lock = threading.Lock()
        self.seen_models = set()
        self.seen_deadlines = set()

    def top_k(self, users, k=None, model=None, deadline=None):
        with self.lock:
            self.calls += 1
            self.seen_models.add(model)
            self.seen_deadlines.add(deadline)
        user = int(users[0])
        if user % 10 == 0:
            raise OverloadedError("stub shed")
        if user % 10 == 1:
            raise DeadlineExceededError("stub deadline")
        if user % 10 == 2:
            raise RuntimeError("stub fault")
        return {"user": user, "k": k}


class TestReplayHarness:
    @pytest.fixture()
    def stream(self) -> RequestStream:
        return TrafficModel(
            small_traffic(duration_seconds=2.0, base_rate_per_second=120.0,
                          bursts=(), model_weights=(("mf", 1.0),))
        ).generate(num_users=200, num_items=40)

    def test_full_ledger_reconciliation(self, stream):
        target = _StubTarget()
        report = ReplayHarness(target, stream, k=5, speed=20.0, concurrency=4).run()
        assert target.calls == len(stream)
        assert report.total_requests == len(stream)
        assert report.ledger_reconciles
        outcome = report.phase(BASELINE_PHASE)
        users = stream.users
        assert outcome.sheds == int(np.sum(users % 10 == 0))
        assert outcome.deadline_exceeded == int(np.sum(users % 10 == 1))
        assert outcome.errors == int(np.sum(users % 10 == 2))
        assert outcome.ok == len(stream) - outcome.sheds - outcome.deadline_exceeded - outcome.errors

    def test_routing_and_deadline_reach_target(self, stream):
        target = _StubTarget()
        ReplayHarness(target, stream, k=5, speed=20.0, concurrency=2).run()
        assert target.seen_models == {"mf"}
        assert target.seen_deadlines == {0.25}

    def test_single_shot(self, stream):
        harness = ReplayHarness(_StubTarget(), stream, speed=20.0)
        harness.run()
        with pytest.raises(RuntimeError, match="single-shot"):
            harness.run()

    def test_open_loop_wall_clock(self, stream):
        # At speed 10 a 2s stream replays in ~0.2s regardless of target speed.
        report = ReplayHarness(_StubTarget(), stream, speed=10.0, concurrency=4).run()
        assert 0.15 <= report.wall_seconds < 2.0

    def test_bench_section_shape(self, stream):
        report = ReplayHarness(_StubTarget(), stream, speed=20.0).run()
        section = report.as_bench_section()
        assert section["total_requests"] == len(stream)
        assert section["ledger_reconciles"] is True
        assert section["stream_digest"] == stream.digest()
        for phase in section["phases"]:
            for key in ("phase", "requests", "ok", "sheds", "deadline_exceeded",
                        "errors", "ok_p50_ms", "ok_p95_ms", "ok_p99_ms",
                        "offered_rps", "achieved_rps"):
                assert key in phase

    def test_failure_latencies_kept_out_of_ok_percentiles(self, stream):
        metrics = MetricsRegistry()
        failures = MetricsRegistry()
        ReplayHarness(
            _StubTarget(), stream, speed=20.0, metrics=metrics, failure_metrics=failures
        ).run()
        ok_count = metrics.snapshot()["models"][BASELINE_PHASE]["request_latency"]["count"]
        failure_count = failures.snapshot()["models"][BASELINE_PHASE]["request_latency"]["count"]
        users = stream.users
        expected_failures = int(np.sum(np.isin(users % 10, (0, 1, 2))))
        assert failure_count == expected_failures
        assert ok_count == len(stream) - expected_failures

    def test_invalid_parameters_rejected(self, stream):
        with pytest.raises(ValueError):
            ReplayHarness(_StubTarget(), stream, speed=0.0)
        with pytest.raises(ValueError):
            ReplayHarness(_StubTarget(), stream, concurrency=0)
        with pytest.raises(ValueError):
            ReplayHarness(_StubTarget(), stream, k=0)


@pytest.mark.chaos
class TestReplayVersusResilience:
    """A seeded flash burst against a real gateway under a stall storm."""

    STALL_SECONDS = 0.08
    DEADLINE_SECONDS = 0.04

    @pytest.fixture()
    def gateway(self, tmp_path, small_split):
        save_model(build_model("MF", small_split.train), tmp_path / "mf.npz")
        catalog = ModelCatalog(tmp_path, small_split.train)
        gateway = ServingGateway(
            catalog,
            default_model="mf",
            policy=ResiliencePolicy(max_inflight=3),
        )
        gateway.top_k(np.array([0]), k=5)  # absorb the cold start
        return gateway

    def test_ledger_reconciles_and_p99_bounded(self, gateway, small_split):
        stream = TrafficModel(
            TrafficConfig(
                duration_seconds=3.0,
                base_rate_per_second=50.0,
                diurnal_amplitude=0.0,
                bursts=(
                    FlashBurst(
                        start_seconds=1.0,
                        multiplier=5.0,
                        rise_seconds=0.25,
                        hold_seconds=1.0,
                        decay_seconds=0.25,
                        name="storm",
                        deadline_seconds=self.DEADLINE_SECONDS,
                    ),
                ),
                deadline_seconds=0.5,
                seed=29,
            )
        ).generate(num_users=small_split.train.num_users, num_items=8)
        plan = FaultPlan(
            [
                FaultRule(
                    "gateway.score",
                    kind="stall",
                    seconds=self.STALL_SECONDS,
                    probability=0.25,
                    count=None,
                )
            ],
            seed=41,
        )
        before = gateway.metrics.snapshot()["totals"]
        with inject(plan):
            report = ReplayHarness(gateway, stream, k=5, speed=2.0, concurrency=3).run()

        # The replay-side ledger balances per phase ...
        assert report.ledger_reconciles
        assert report.total_requests == len(stream)
        storm = report.phase("storm")
        assert storm.deadline_exceeded > 0, "the storm must break some deadlines"

        # ... and agrees exactly with the gateway's own PR-8 accounting.
        after = gateway.metrics.snapshot()["totals"]
        harness_totals = {
            "sheds": sum(p.sheds for p in report.phases),
            "deadline_exceeded": sum(p.deadline_exceeded for p in report.phases),
            "errors": sum(p.errors for p in report.phases),
        }
        for key, harness_value in harness_totals.items():
            gateway_value = int(after[key]) - int(before[key])
            assert gateway_value == harness_value, (
                f"{key}: gateway counted {gateway_value}, replay saw {harness_value}"
            )

        # Ok requests never wait out a stall: their p99 stays bounded by the
        # deadline budget (log-bucket overshoot <= 12%), not by the fault.
        assert storm.ok_p99_ms < self.DEADLINE_SECONDS * 1e3 * 1.5
