"""Table II statistics."""

from repro.data import compute_statistics


class TestStatistics:
    def test_counts(self, tiny_dataset):
        stats = compute_statistics(tiny_dataset)
        assert stats.num_users == 6
        assert stats.num_items == 4
        assert stats.num_behaviors == 6
        assert stats.num_successful == 4
        assert stats.num_failed == 2
        assert stats.num_social_interactions == 5

    def test_success_ratio(self, tiny_dataset):
        stats = compute_statistics(tiny_dataset)
        assert abs(stats.success_ratio - 4 / 6) < 1e-9

    def test_mean_participants(self, tiny_dataset):
        stats = compute_statistics(tiny_dataset)
        expected = sum(len(b.participants) for b in tiny_dataset.behaviors) / 6
        assert abs(stats.mean_participants - expected) < 1e-9

    def test_as_dict_and_format(self, tiny_dataset):
        stats = compute_statistics(tiny_dataset)
        table = stats.format()
        assert "#Users" in table and "6" in table
        assert stats.as_dict()["#Items"] == 4
