"""Training and evaluation negative samplers."""

import numpy as np
import pytest

from repro.data import EvaluationCandidateSampler, TrainingNegativeSampler


class TestTrainingSampler:
    def test_negatives_not_observed(self, small_dataset):
        sampler = TrainingNegativeSampler(small_dataset, seed=0)
        interactions = small_dataset.user_item_set()
        for user in list(interactions)[:20]:
            negatives = sampler.sample(user, count=5)
            assert len(negatives) == 5
            assert not set(negatives.tolist()) & interactions[user]

    def test_unknown_user_samples_freely(self, small_dataset):
        sampler = TrainingNegativeSampler(small_dataset, seed=0)
        negatives = sampler.sample(small_dataset.num_users - 1, count=3)
        assert negatives.shape == (3,)

    def test_batch_shape(self, small_dataset):
        sampler = TrainingNegativeSampler(small_dataset, seed=0)
        users = [b.initiator for b in small_dataset.behaviors[:8]]
        assert sampler.sample_batch(users, count=2).shape == (8, 2)

    def test_exhausted_user_raises(self, tiny_dataset):
        sampler = TrainingNegativeSampler(tiny_dataset, num_items=2, seed=0)
        # User 0 interacted with items 0, 1 and 2; with only 2 items declared
        # there is nothing left to sample.
        with pytest.raises(ValueError):
            sampler.sample(0, count=1)

    def test_observed_items_accessor(self, tiny_dataset):
        sampler = TrainingNegativeSampler(tiny_dataset, seed=0)
        assert sampler.observed_items(0) == {0, 1, 2}

    def test_batch_negatives_not_observed(self, small_dataset):
        sampler = TrainingNegativeSampler(small_dataset, seed=0)
        interactions = small_dataset.user_item_set()
        users = [b.initiator for b in small_dataset.behaviors]
        negatives = sampler.sample_batch(users, count=3)
        assert negatives.shape == (len(users), 3)
        for user, row in zip(users, negatives):
            assert not set(row.tolist()) & interactions.get(user, set())

    def test_batch_seeded_determinism(self, small_dataset):
        users = [b.initiator for b in small_dataset.behaviors[:16]]
        a = TrainingNegativeSampler(small_dataset, seed=7).sample_batch(users, count=2)
        b = TrainingNegativeSampler(small_dataset, seed=7).sample_batch(users, count=2)
        assert np.array_equal(a, b)

    def test_batch_empty_users(self, small_dataset):
        sampler = TrainingNegativeSampler(small_dataset, seed=0)
        assert sampler.sample_batch([], count=4).shape == (0, 4)

    def test_batch_exhausted_user_raises(self, tiny_dataset):
        sampler = TrainingNegativeSampler(tiny_dataset, num_items=2, seed=0)
        with pytest.raises(ValueError):
            sampler.sample_batch([0, 3], count=1)

    def test_batch_with_larger_item_universe(self, small_dataset):
        # A num_items override above the dataset's catalog must not break
        # the vectorized membership lookup.
        sampler = TrainingNegativeSampler(small_dataset, num_items=small_dataset.num_items + 10, seed=0)
        users = [b.initiator for b in small_dataset.behaviors[:8]]
        negatives = sampler.sample_batch(users, count=2)
        assert negatives.shape == (8, 2)
        assert negatives.max() < small_dataset.num_items + 10
        interactions = small_dataset.user_item_set()
        for user, row in zip(users, negatives):
            assert not set(row.tolist()) & interactions.get(user, set())

    def test_sample_and_batch_agree_on_exhaustion(self, tiny_dataset):
        # Both paths use the clipped criterion: items outside the declared
        # universe do not count towards exhaustion.
        sampler = TrainingNegativeSampler(tiny_dataset, num_items=2, seed=0)
        # User 3 observed {3, 0}; only item 0 lies inside the universe.
        single = sampler.sample(3, count=3)
        batch = sampler.sample_batch([3], count=3)
        assert set(single.tolist()) == {1}
        assert set(batch.ravel().tolist()) == {1}

    def test_batch_unknown_users_sample_freely(self, small_dataset):
        # Out-of-universe user ids behave like sample(): no observed items.
        sampler = TrainingNegativeSampler(small_dataset, seed=0)
        negatives = sampler.sample_batch([-5, small_dataset.num_users, small_dataset.num_users + 3], count=2)
        assert negatives.shape == (3, 2)
        assert (negatives >= 0).all() and (negatives < small_dataset.num_items).all()

    def test_batch_repeated_users(self, small_dataset):
        sampler = TrainingNegativeSampler(small_dataset, seed=0)
        user = small_dataset.behaviors[0].initiator
        negatives = sampler.sample_batch([user] * 10, count=2)
        observed = small_dataset.user_item_set().get(user, set())
        assert negatives.shape == (10, 2)
        assert not set(negatives.ravel().tolist()) & observed


class TestEvaluationSampler:
    def test_positive_first_and_excluded_from_negatives(self, small_dataset):
        sampler = EvaluationCandidateSampler(small_dataset, num_negatives=50, seed=1)
        interactions = small_dataset.user_item_set()
        user = next(iter(interactions))
        positive = next(iter(interactions[user]))
        candidates = sampler.candidates_for(user, positive)
        assert candidates[0] == positive
        assert positive not in candidates[1:]
        assert not set(candidates[1:].tolist()) & interactions[user]

    def test_candidate_count(self, small_dataset):
        sampler = EvaluationCandidateSampler(small_dataset, num_negatives=30, seed=1)
        user = small_dataset.behaviors[0].initiator
        candidates = sampler.candidates_for(user, small_dataset.behaviors[0].item)
        observed = len(small_dataset.user_item_set()[user])
        expected = 1 + min(30, small_dataset.num_items - observed - 1)
        assert len(candidates) == expected
        assert len(set(candidates.tolist())) == len(candidates)

    def test_cached_candidates_are_stable(self, small_dataset):
        sampler = EvaluationCandidateSampler(small_dataset, num_negatives=20, seed=1)
        user = small_dataset.behaviors[0].initiator
        item = small_dataset.behaviors[0].item
        first = sampler.candidates_for(user, item)
        second = sampler.candidates_for(user, item)
        assert np.array_equal(first, second)

    def test_different_seed_changes_candidates(self, small_dataset):
        user = small_dataset.behaviors[0].initiator
        item = small_dataset.behaviors[0].item
        a = EvaluationCandidateSampler(small_dataset, num_negatives=20, seed=1).candidates_for(user, item)
        b = EvaluationCandidateSampler(small_dataset, num_negatives=20, seed=2).candidates_for(user, item)
        assert not np.array_equal(a, b)

    def test_caps_at_available_items(self, tiny_dataset):
        sampler = EvaluationCandidateSampler(tiny_dataset, num_negatives=999, seed=0)
        candidates = sampler.candidates_for(0, 0)
        assert len(candidates) <= tiny_dataset.num_items
        assert len(set(candidates.tolist())) == len(candidates)
