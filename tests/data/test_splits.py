"""Leave-one-out splitting."""

import pytest

from repro.data import BeibeiLikeConfig, generate_dataset, leave_one_out_split


class TestLeaveOneOut:
    def test_holdout_count_removed_from_training(self, small_dataset, small_split):
        original = small_dataset.behaviors_of_initiator()
        remaining = small_split.train.behaviors_of_initiator()
        for user in small_split.test:
            held_out = 2 if user in small_split.validation else 1
            assert len(remaining.get(user, [])) == len(original[user]) - held_out

    def test_holdouts_come_from_the_users_behaviors(self, small_dataset, small_split):
        original = small_dataset.behaviors_of_initiator()
        for user, behavior in small_split.test.items():
            assert behavior in original[user]
        for user, behavior in small_split.validation.items():
            assert behavior in original[user]

    def test_total_behaviors_preserved(self, small_dataset, small_split):
        total = (
            small_split.train.num_behaviors
            + len(small_split.test)
            + len(small_split.validation)
        )
        assert total == small_dataset.num_behaviors

    def test_every_test_user_also_has_validation(self, small_split):
        assert set(small_split.test) == set(small_split.validation)

    def test_holdout_behaviors_are_successful(self, small_split):
        assert all(b.is_successful for b in small_split.test.values())
        assert all(b.is_successful for b in small_split.validation.values())

    def test_holdout_user_is_the_initiator(self, small_split):
        assert all(user == b.initiator for user, b in small_split.test.items())

    def test_users_with_few_behaviors_stay_in_training(self, small_dataset, small_split):
        counts = {u: len(bs) for u, bs in small_dataset.behaviors_of_initiator().items()}
        for user in small_split.test:
            assert counts[user] >= 3

    def test_deterministic_given_seed(self, small_dataset):
        a = leave_one_out_split(small_dataset, seed=5)
        b = leave_one_out_split(small_dataset, seed=5)
        assert a.test == b.test and a.validation == b.validation

    def test_describe(self, small_split):
        description = small_split.describe()
        assert description["test_users"] == len(small_split.test)
        assert description["train_behaviors"] == small_split.train.num_behaviors

    def test_allow_failed_holdouts(self, small_dataset):
        split = leave_one_out_split(small_dataset, seed=2, holdout_successful_only=False)
        assert len(split.test) >= len(leave_one_out_split(small_dataset, seed=2).test)
