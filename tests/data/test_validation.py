"""Semantic dataset validation."""

import pytest

from repro.data import (
    GroupBuyingBehavior,
    GroupBuyingDataset,
    SocialEdge,
    assert_valid,
    validate_dataset,
)


def make_dataset(behaviors, edges, num_users=6, num_items=4):
    return GroupBuyingDataset(num_users, num_items, behaviors, edges, name="validation-test")


class TestValidateDataset:
    def test_clean_dataset_is_ok(self, tiny_dataset):
        report = validate_dataset(tiny_dataset)
        assert report.ok
        assert not report.errors

    def test_participant_not_friend_is_error(self):
        behaviors = [GroupBuyingBehavior(0, 0, participants=(3,), threshold=1)]
        edges = [SocialEdge(0, 1)]
        report = validate_dataset(make_dataset(behaviors, edges))
        assert not report.ok
        assert any(issue.code == "participant-not-friend" for issue in report.errors)

    def test_participant_check_can_be_disabled(self):
        behaviors = [GroupBuyingBehavior(0, 0, participants=(3,), threshold=1)]
        edges = [SocialEdge(0, 1)]
        report = validate_dataset(make_dataset(behaviors, edges), require_participants_are_friends=False)
        assert all(issue.code != "participant-not-friend" for issue in report.issues)

    def test_empty_social_network_is_error(self):
        behaviors = [GroupBuyingBehavior(0, 0, participants=(), threshold=1)]
        report = validate_dataset(make_dataset(behaviors, []))
        assert any(issue.code == "empty-social-network" for issue in report.errors)

    def test_duplicate_behaviors_are_warnings(self):
        behavior = GroupBuyingBehavior(0, 0, participants=(1,), threshold=1)
        edges = [SocialEdge(0, 1)]
        report = validate_dataset(make_dataset([behavior, behavior], edges))
        assert report.ok
        assert any(issue.code == "duplicate-behavior" for issue in report.warnings)

    def test_all_successful_warns_about_loss(self):
        behaviors = [GroupBuyingBehavior(0, 0, participants=(1,), threshold=1)]
        edges = [SocialEdge(0, 1)]
        report = validate_dataset(make_dataset(behaviors, edges))
        assert any(issue.code == "no-failed-behaviors" for issue in report.warnings)

    def test_isolated_initiator_warning(self):
        behaviors = [GroupBuyingBehavior(5, 0, participants=(), threshold=1)]
        edges = [SocialEdge(0, 1)]
        report = validate_dataset(make_dataset(behaviors, edges))
        assert any(issue.code == "isolated-initiator" for issue in report.warnings)

    def test_unused_item_range_warning(self):
        behaviors = [GroupBuyingBehavior(0, 0, participants=(1,), threshold=1)]
        edges = [SocialEdge(0, 1)]
        report = validate_dataset(make_dataset(behaviors, edges, num_items=100))
        assert any(issue.code == "unused-item-range" for issue in report.warnings)

    def test_issue_truncation(self):
        edges = [SocialEdge(0, 1)]
        behaviors = [
            GroupBuyingBehavior(0, 0, participants=(2 + (i % 3),), threshold=1) for i in range(30)
        ]
        report = validate_dataset(make_dataset(behaviors, edges, num_users=10), max_reported_per_code=5)
        not_friend = [i for i in report.errors if i.code == "participant-not-friend"]
        assert len(not_friend) == 5
        assert any("more" in issue.message for issue in report.warnings)

    def test_summary_mentions_counts(self):
        behaviors = [GroupBuyingBehavior(0, 0, participants=(3,), threshold=1)]
        report = validate_dataset(make_dataset(behaviors, [SocialEdge(0, 1)]))
        assert "error" in report.summary()

    def test_summary_for_clean_dataset(self, tiny_dataset):
        assert "OK" in validate_dataset(tiny_dataset).summary()


class TestAssertValid:
    def test_passes_on_clean_dataset(self, tiny_dataset):
        assert_valid(tiny_dataset)

    def test_raises_on_errors(self):
        behaviors = [GroupBuyingBehavior(0, 0, participants=(3,), threshold=1)]
        dataset = make_dataset(behaviors, [SocialEdge(0, 1)])
        with pytest.raises(ValueError, match="participant-not-friend"):
            assert_valid(dataset)
