"""Dataset serialization round trip."""

import pytest

from repro.data import load_dataset, save_dataset


class TestRoundTrip:
    def test_save_then_load_preserves_everything(self, tiny_dataset, tmp_path):
        directory = save_dataset(tiny_dataset, tmp_path / "export")
        loaded = load_dataset(directory)
        assert loaded.num_users == tiny_dataset.num_users
        assert loaded.num_items == tiny_dataset.num_items
        assert loaded.behaviors == tiny_dataset.behaviors
        assert loaded.social_edges == tiny_dataset.social_edges
        assert loaded.name == tiny_dataset.name

    def test_generated_dataset_round_trip(self, small_dataset, tmp_path):
        directory = save_dataset(small_dataset, tmp_path / "generated")
        loaded = load_dataset(directory)
        assert loaded.num_behaviors == small_dataset.num_behaviors
        assert loaded.num_social_edges == small_dataset.num_social_edges

    def test_expected_files_exist(self, tiny_dataset, tmp_path):
        directory = save_dataset(tiny_dataset, tmp_path / "files")
        assert (directory / "meta.json").exists()
        assert (directory / "behaviors.tsv").exists()
        assert (directory / "social.tsv").exists()

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dataset(tmp_path / "does-not-exist")
