"""GroupBuyingBehavior and SocialEdge validation."""

import pytest

from repro.data import GroupBuyingBehavior, SocialEdge


class TestGroupBuyingBehavior:
    def test_success_depends_on_threshold(self):
        assert GroupBuyingBehavior(0, 1, (2, 3), threshold=2).is_successful
        assert not GroupBuyingBehavior(0, 1, (2,), threshold=2).is_successful

    def test_empty_participants_fails_with_threshold_one(self):
        assert not GroupBuyingBehavior(0, 1, (), threshold=1).is_successful

    def test_participants_sorted_and_deduplicated(self):
        behavior = GroupBuyingBehavior(0, 1, (5, 3, 5), threshold=1)
        assert behavior.participants == (3, 5)

    def test_initiator_cannot_participate(self):
        with pytest.raises(ValueError):
            GroupBuyingBehavior(2, 1, (2,), threshold=1)

    def test_negative_ids_rejected(self):
        with pytest.raises(ValueError):
            GroupBuyingBehavior(-1, 0, ())
        with pytest.raises(ValueError):
            GroupBuyingBehavior(0, -2, ())
        with pytest.raises(ValueError):
            GroupBuyingBehavior(0, 0, (-3,))

    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            GroupBuyingBehavior(0, 0, (), threshold=0)

    def test_group_size_and_members(self):
        behavior = GroupBuyingBehavior(7, 0, (1, 2), threshold=1)
        assert behavior.group_size == 3
        assert behavior.members == (7, 1, 2)

    def test_with_participants_creates_copy(self):
        behavior = GroupBuyingBehavior(0, 1, (2,), threshold=2)
        updated = behavior.with_participants((2, 3))
        assert updated.participants == (2, 3)
        assert updated.is_successful
        assert behavior.participants == (2,)

    def test_frozen(self):
        behavior = GroupBuyingBehavior(0, 1, ())
        with pytest.raises(Exception):
            behavior.item = 5


class TestSocialEdge:
    def test_normalized_ordering(self):
        edge = SocialEdge(5, 2)
        assert edge.as_tuple() == (2, 5)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            SocialEdge(3, 3)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SocialEdge(-1, 2)

    def test_involves(self):
        edge = SocialEdge(1, 4)
        assert edge.involves(1) and edge.involves(4) and not edge.involves(2)

    def test_equality_after_normalization(self):
        assert SocialEdge(1, 2) == SocialEdge(2, 1)
