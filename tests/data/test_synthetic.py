"""Beibei-like synthetic dataset generator."""

import numpy as np
import pytest

from repro.data import BeibeiLikeConfig, BeibeiLikeGenerator, compute_statistics, generate_dataset
from repro.data.synthetic import calibrate_join_bias, success_probability


class TestConfig:
    def test_defaults_are_valid(self):
        BeibeiLikeConfig()

    def test_too_few_users_rejected(self):
        with pytest.raises(ValueError):
            BeibeiLikeConfig(num_users=5)

    def test_invalid_threshold_range_rejected(self):
        with pytest.raises(ValueError):
            BeibeiLikeConfig(min_threshold=3, max_threshold=1)

    def test_invalid_mean_friends_rejected(self):
        with pytest.raises(ValueError):
            BeibeiLikeConfig(num_users=20, mean_friends=25)

    def test_paper_scale_matches_table2(self):
        config = BeibeiLikeConfig.paper_scale()
        assert config.num_users == 190_080
        assert config.num_items == 30_782
        assert config.num_behaviors == 932_896

    def test_scaled(self):
        config = BeibeiLikeConfig().scaled(0.5)
        assert config.num_users == 300
        assert config.num_behaviors == 1500

    def test_scaled_preserves_intensive_knobs(self):
        base = BeibeiLikeConfig.paper_scale()
        scaled = base.scaled(0.1)
        assert scaled.mean_friends == base.mean_friends
        assert scaled.max_invited == base.max_invited
        assert scaled.min_threshold == base.min_threshold
        assert scaled.max_threshold == base.max_threshold

    def test_scaled_rejects_factor_below_floors(self):
        # Regression: scaled() used to clamp to 10 users / 2 items / 1
        # behavior silently, returning a config unrelated to the original.
        with pytest.raises(ValueError, match="floors"):
            BeibeiLikeConfig().scaled(0.001)

    def test_scaled_rejects_distorting_mean_friends(self):
        # Regression: scaled() used to keep mean_friends=8 while shrinking
        # to a dozen users — a near-clique, not a scaled-down population.
        with pytest.raises(ValueError, match="mean_friends"):
            BeibeiLikeConfig().scaled(0.02)

    def test_scaled_rejects_nonpositive_factor(self):
        with pytest.raises(ValueError, match="positive"):
            BeibeiLikeConfig().scaled(0.0)
        with pytest.raises(ValueError, match="positive"):
            BeibeiLikeConfig().scaled(-2.0)

    def test_scaled_smallest_accepted_factor_is_exact(self):
        # The smallest valid scale is still an exact uniform scale, not a
        # clamped one.
        config = BeibeiLikeConfig().scaled(0.1)
        assert config.num_users == 60
        assert config.num_items == 20
        assert config.num_behaviors == 300


class TestGeneration:
    def test_deterministic_for_same_seed(self):
        a = generate_dataset(BeibeiLikeConfig.small(seed=3))
        b = generate_dataset(BeibeiLikeConfig.small(seed=3))
        assert a.behaviors == b.behaviors
        assert a.social_edges == b.social_edges

    def test_different_seeds_differ(self):
        a = generate_dataset(BeibeiLikeConfig.small(seed=3))
        b = generate_dataset(BeibeiLikeConfig.small(seed=4))
        assert a.behaviors != b.behaviors

    def test_sizes_match_config(self, small_dataset):
        config = BeibeiLikeConfig.small(seed=99)
        assert small_dataset.num_users == config.num_users
        assert small_dataset.num_items == config.num_items
        assert small_dataset.num_behaviors == config.num_behaviors

    def test_no_isolated_users(self, small_dataset):
        degrees = [len(f) for f in small_dataset.friend_lists()]
        assert min(degrees) >= 1

    def test_participants_are_friends_of_initiator(self, small_dataset):
        friends = small_dataset.friend_lists()
        for behavior in small_dataset.behaviors[:200]:
            for participant in behavior.participants:
                assert participant in friends[behavior.initiator]

    def test_contains_both_successful_and_failed(self, small_dataset):
        stats = compute_statistics(small_dataset)
        assert stats.num_successful > 0
        assert stats.num_failed > 0
        assert 0.4 < stats.success_ratio < 0.98

    def test_mean_friends_near_target(self):
        config = BeibeiLikeConfig(num_users=500, num_items=100, num_behaviors=500, mean_friends=10.0, seed=1)
        dataset = generate_dataset(config)
        stats = compute_statistics(dataset)
        assert 7.0 < stats.mean_friends < 12.0

    def test_thresholds_within_configured_range(self, small_dataset):
        config = BeibeiLikeConfig.small(seed=99)
        for behavior in small_dataset.behaviors:
            assert config.min_threshold <= behavior.threshold <= config.max_threshold

    def test_generator_wrapper(self):
        generator = BeibeiLikeGenerator(BeibeiLikeConfig.small(seed=11))
        dataset = generator.generate()
        assert dataset.num_behaviors == generator.config.num_behaviors


class TestSuccessRatioCalibration:
    def test_invalid_target_rejected(self):
        with pytest.raises(ValueError):
            BeibeiLikeConfig(target_success_ratio=1.5)

    def test_success_probability_certain_and_impossible(self):
        assert success_probability(np.array([10.0, 10.0]), threshold=1) == pytest.approx(1.0, abs=1e-3)
        assert success_probability(np.array([0.0]), threshold=2) == 0.0
        assert success_probability(np.zeros(0), threshold=0) == 1.0

    def test_success_probability_matches_binomial(self):
        # Equal logits of 0 -> each invitee joins with probability 0.5, so
        # P(>=1 of 2 join) = 0.75 and P(>=2 of 2 join) = 0.25.
        logits = np.zeros(2)
        assert success_probability(logits, threshold=1) == pytest.approx(0.75)
        assert success_probability(logits, threshold=2) == pytest.approx(0.25)

    def test_calibrate_reaches_target(self):
        rng = np.random.default_rng(0)
        logit_sets = [rng.normal(size=rng.integers(1, 8)) for _ in range(300)]
        thresholds = [int(rng.integers(1, 4)) for _ in range(300)]
        bias = calibrate_join_bias(logit_sets, thresholds, target_success_ratio=0.7)
        expected = np.mean(
            [success_probability(l, t, bias) for l, t in zip(logit_sets, thresholds)]
        )
        assert expected == pytest.approx(0.7, abs=0.01)

    def test_calibrate_unreachable_target_clamps(self):
        # One invitee, threshold of three: no bias can make the group clinch.
        bias = calibrate_join_bias([np.zeros(1)], [3], target_success_ratio=0.9)
        assert bias == pytest.approx(10.0)

    def test_generated_ratio_near_target(self):
        config = BeibeiLikeConfig(
            num_users=300, num_items=80, num_behaviors=1500, seed=7, target_success_ratio=0.774
        )
        stats = compute_statistics(generate_dataset(config))
        assert 0.68 < stats.success_ratio < 0.86

    def test_small_config_has_clear_failure_minority(self):
        stats = compute_statistics(generate_dataset(BeibeiLikeConfig.small(seed=99)))
        assert stats.num_failed >= 20
        assert 0.55 < stats.success_ratio < 0.95

    def test_target_none_uses_raw_join_bias(self):
        def with_bias(bias):
            return BeibeiLikeConfig(
                num_users=80, num_items=40, num_behaviors=400, mean_friends=6.0,
                seed=5, target_success_ratio=None, join_bias=bias,
            )

        low = compute_statistics(generate_dataset(with_bias(-3.0))).success_ratio
        high = compute_statistics(generate_dataset(with_bias(3.0))).success_ratio
        assert low < high
