"""Popularity-weighted negative sampling."""

import numpy as np
import pytest

from repro.data import (
    PopularityNegativeSampler,
    TrainingNegativeSampler,
    item_popularity,
    to_user_item_interactions,
)
from repro.training import InteractionBatchIterator


class TestItemPopularity:
    def test_counts_include_participants(self, tiny_dataset):
        counts = item_popularity(tiny_dataset)
        # Item 0: behaviors (0,(1,2)) and (4,(3,5)) -> 2 initiators + 4 participants.
        assert counts[0] == 6

    def test_counts_without_participants(self, tiny_dataset):
        counts = item_popularity(tiny_dataset, include_participants=False)
        assert counts[0] == 2

    def test_shape(self, small_dataset):
        assert item_popularity(small_dataset).shape == (small_dataset.num_items,)


class TestPopularityNegativeSampler:
    def test_invalid_parameters(self, small_dataset):
        with pytest.raises(ValueError):
            PopularityNegativeSampler(small_dataset, exponent=-1)
        with pytest.raises(ValueError):
            PopularityNegativeSampler(small_dataset, smoothing=-1)

    def test_never_samples_observed_items(self, small_dataset):
        sampler = PopularityNegativeSampler(small_dataset, seed=0)
        for user in range(0, small_dataset.num_users, 7):
            observed = sampler.observed_items(user)
            negatives = sampler.sample(user, count=20)
            assert not set(negatives.tolist()) & observed

    def test_sample_batch_shape(self, small_dataset):
        sampler = PopularityNegativeSampler(small_dataset, seed=1)
        batch = sampler.sample_batch([0, 1, 2], count=4)
        assert batch.shape == (3, 4)

    def test_popular_items_sampled_more_often(self, small_dataset):
        counts = item_popularity(small_dataset)
        popular = int(np.argmax(counts))
        # Sample from a user who never interacted with the most popular item.
        sampler = PopularityNegativeSampler(small_dataset, exponent=1.0, seed=2)
        user = next(
            u for u in range(small_dataset.num_users) if popular not in sampler.observed_items(u)
        )
        draws = sampler.sample(user, count=2000)
        frequency = np.mean(draws == popular)
        assert frequency > 1.0 / small_dataset.num_items

    def test_exponent_zero_behaves_like_uniform(self, small_dataset):
        sampler = PopularityNegativeSampler(small_dataset, exponent=0.0, seed=3)
        draws = sampler.sample(0, count=3000)
        _, counts = np.unique(draws, return_counts=True)
        # With a uniform distribution no single unobserved item should hog the draws.
        assert counts.max() / draws.size < 0.1

    def test_drop_in_replacement_for_batch_iterator(self, small_split):
        train = small_split.train
        conversion = to_user_item_interactions(train, mode="both")
        uniform = TrainingNegativeSampler(train, seed=0)
        popularity = PopularityNegativeSampler(train, seed=0)
        for sampler in (uniform, popularity):
            batch = next(iter(InteractionBatchIterator(conversion, sampler, batch_size=64, seed=0)))
            assert len(batch) == 64
            assert np.isfinite(batch.negative_items).all()
