"""Scenario-engine population generator: structure, slicing, determinism.

The golden-seed class pins exact digests across runs and across a real
subprocess boundary — the contract the ``WorkerPool`` replay path
(spawn-context workers regenerating identical streams) depends on.
"""

import subprocess
import sys

import numpy as np
import pytest

from repro.data import (
    GroupBuyingDataset,
    PopulationGenerator,
    ScenarioConfig,
    SyntheticPopulation,
    fit_zipf_exponent,
    generate_population,
)

pytestmark = pytest.mark.scenario


@pytest.fixture(scope="module")
def population() -> SyntheticPopulation:
    return generate_population(ScenarioConfig.small(seed=11))


class TestScenarioConfig:
    def test_defaults_are_valid(self):
        ScenarioConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_users": 1},
            {"num_items": 0},
            {"num_behaviors": 0},
            {"num_communities": 0},
            {"num_communities": 101, "num_users": 100},
            {"mean_friends": -1.0},
            {"community_mix": 1.5},
            {"initiator_fraction": -0.1},
            {"item_exponent": -0.5},
            {"latent_dim": 0},
            {"join_probability": 0.0},
            {"join_probability": 1.0},
            {"min_threshold": 0},
            {"max_threshold": 0, "min_threshold": 1},
            {"max_invited": 0},
            {"block_size": 0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ScenarioConfig(**kwargs)

    def test_mean_friends_must_stay_below_population(self):
        with pytest.raises(ValueError):
            ScenarioConfig(num_users=10, mean_friends=10.0)

    def test_scaled_preserves_intensive_structure(self):
        base = ScenarioConfig.million_users()
        half = base.scaled(0.5)
        assert half.num_users == 500_000
        assert half.num_items == 25_000
        assert half.num_behaviors == 1_000_000
        assert half.mean_friends == base.mean_friends
        assert half.community_mix == base.community_mix
        assert half.block_size == base.block_size

    def test_scaled_rejects_floor_violations(self):
        with pytest.raises(ValueError, match="floors"):
            ScenarioConfig.small().scaled(1e-4)

    def test_scaled_rejects_nonpositive_factor(self):
        with pytest.raises(ValueError):
            ScenarioConfig().scaled(0.0)

    def test_scaled_rejects_distorting_mean_friends(self):
        config = ScenarioConfig(num_users=1000, mean_friends=50.0)
        with pytest.raises(ValueError, match="mean_friends"):
            config.scaled(0.02)


class TestPopulationStructure:
    def test_shapes_and_dtypes(self, population):
        cfg = population.config
        assert population.roles.shape == (cfg.num_users,)
        assert population.roles.dtype == np.int8
        assert population.edges.ndim == 2 and population.edges.shape[1] == 2
        assert population.initiators.shape == (cfg.num_behaviors,)
        assert population.items.shape == (cfg.num_behaviors,)
        assert population.thresholds.shape == (cfg.num_behaviors,)
        assert population.participants_indptr.shape == (cfg.num_behaviors + 1,)
        assert population.participants_flat.size == population.participants_indptr[-1]

    def test_edges_are_canonical(self, population):
        edges = population.edges
        # No self-loops, canonical low<high ordering, globally unique.
        assert (edges[:, 0] < edges[:, 1]).all()
        keys = edges[:, 0] * population.num_users + edges[:, 1]
        assert np.unique(keys).size == keys.size
        assert edges.min() >= 0 and edges.max() < population.num_users

    def test_mean_degree_tracks_config(self, population):
        assert population.mean_degree() == pytest.approx(
            population.config.mean_friends, rel=0.25
        )

    def test_role_mix_tracks_config(self, population):
        assert population.roles.mean() == pytest.approx(
            population.config.initiator_fraction, abs=0.08
        )

    def test_only_initiators_launch(self, population):
        assert population.roles[population.initiators].all()

    def test_participants_in_range_and_bounded(self, population):
        flat = population.participants_flat
        assert flat.min() >= 0 and flat.max() < population.num_users
        counts = population.participant_counts()
        assert counts.max() <= population.config.max_invited

    def test_participants_are_friends_of_initiator(self, population):
        edges = population.edges
        friend_keys = set(
            (edges[:, 0] * population.num_users + edges[:, 1]).tolist()
        )
        indptr = population.participants_indptr
        for index in range(min(population.num_behaviors, 200)):
            initiator = int(population.initiators[index])
            for p in population.participants_flat[indptr[index] : indptr[index + 1]]:
                low, high = min(initiator, int(p)), max(initiator, int(p))
                assert low * population.num_users + high in friend_keys

    def test_thresholds_in_configured_range(self, population):
        cfg = population.config
        assert population.thresholds.min() >= cfg.min_threshold
        assert population.thresholds.max() <= cfg.max_threshold

    def test_item_popularity_is_rank_ordered_zipf(self):
        population = generate_population(
            ScenarioConfig(
                num_users=4000,
                num_items=1500,
                num_behaviors=50_000,
                num_communities=16,
                block_size=20_000,
                seed=5,
            )
        )
        frequencies = population.item_frequencies()
        fitted = fit_zipf_exponent(frequencies)
        assert fitted == pytest.approx(population.config.item_exponent, abs=0.25)
        # Rank order: the most popular decile dominates the least popular.
        assert frequencies[:150].sum() > 10 * frequencies[-150:].sum()

    def test_community_assignment_is_modular(self, population):
        cfg = population.config
        expected = np.arange(cfg.num_users) % cfg.num_communities
        assert np.array_equal(population.community, expected)

    def test_edges_prefer_communities(self):
        population = generate_population(
            ScenarioConfig(
                num_users=3000,
                num_items=100,
                num_behaviors=100,
                num_communities=30,
                community_mix=0.9,
                block_size=1000,
                seed=9,
            )
        )
        cfg = population.config
        same = (
            population.edges[:, 0] % cfg.num_communities
            == population.edges[:, 1] % cfg.num_communities
        )
        # Random wiring would land ~1/30 intra-community; planted partition
        # must sit near the configured 0.9 mix.
        assert same.mean() > 0.6

    def test_zero_initiator_fraction_still_launches(self):
        population = generate_population(
            ScenarioConfig(
                num_users=50,
                num_items=20,
                num_behaviors=40,
                num_communities=5,
                initiator_fraction=0.0,
                block_size=16,
                seed=1,
            )
        )
        assert population.roles.sum() == 1  # deterministic promotion of user 0
        assert (population.initiators == 0).all()


class TestBlockStreaming:
    def test_block_size_does_not_change_blocks_needed(self):
        config = ScenarioConfig.small(seed=3)
        generator = PopulationGenerator(config)
        generator.generate()
        expected_user_blocks = -(-config.num_users // config.block_size)
        assert generator.user_blocks_generated == expected_user_blocks
        expected_behavior_blocks = -(-config.num_behaviors // config.block_size)
        assert generator.behavior_blocks_generated == expected_behavior_blocks

    def test_single_block_equivalent_structure(self):
        # Different block sizes give different (but equally valid) draws;
        # aggregate structure must match across blockings.
        small = generate_population(
            ScenarioConfig(num_users=2000, num_items=200, num_behaviors=4000,
                           num_communities=10, block_size=256, seed=17)
        )
        one = generate_population(
            ScenarioConfig(num_users=2000, num_items=200, num_behaviors=4000,
                           num_communities=10, block_size=1_000_000, seed=17)
        )
        assert small.mean_degree() == pytest.approx(one.mean_degree(), rel=0.1)
        assert small.roles.mean() == pytest.approx(one.roles.mean(), abs=0.05)


class TestToDataset:
    def test_full_population_roundtrip(self, population):
        dataset = population.to_dataset()
        assert isinstance(dataset, GroupBuyingDataset)
        assert dataset.num_users == population.num_users
        assert dataset.num_items == population.num_items
        assert dataset.num_behaviors == population.num_behaviors

    def test_subscale_slice_is_valid(self, population):
        dataset = population.to_dataset(num_users=120, num_items=50)
        assert dataset.num_users == 120
        assert dataset.num_items == 50
        for behavior in dataset.behaviors:
            assert behavior.initiator < 120
            assert behavior.item < 50
            assert all(p < 120 for p in behavior.participants)
        for edge in dataset.social_edges:
            assert edge.user_b < 120

    def test_max_behaviors_caps_slice(self, population):
        dataset = population.to_dataset(num_users=200, num_items=60, max_behaviors=25)
        assert dataset.num_behaviors <= 25

    def test_out_of_range_slice_rejected(self, population):
        with pytest.raises(ValueError):
            population.to_dataset(num_users=population.num_users + 1)
        with pytest.raises(ValueError):
            population.to_dataset(num_items=0)

    def test_slice_is_trainable_shape(self, population):
        from repro.data import leave_one_out_split

        dataset = population.to_dataset(num_users=200, num_items=80)
        split = leave_one_out_split(dataset, seed=3)
        assert split.train.num_behaviors > 0


class TestGoldenSeedDeterminism:
    def test_same_seed_same_digest(self):
        a = generate_population(ScenarioConfig.small(seed=23)).digest()
        b = generate_population(ScenarioConfig.small(seed=23)).digest()
        assert a == b

    def test_different_seed_different_digest(self):
        a = generate_population(ScenarioConfig.small(seed=23)).digest()
        b = generate_population(ScenarioConfig.small(seed=24)).digest()
        assert a != b

    def test_block_size_is_part_of_identity(self):
        base = ScenarioConfig.small(seed=23)
        rebatched = ScenarioConfig(
            **{**base.__dict__, "block_size": base.block_size * 2}
        )
        assert (
            generate_population(base).digest()
            != generate_population(rebatched).digest()
        )

    def test_digest_stable_across_subprocess_boundary(self):
        # A fresh interpreter (what spawn-context workers get) must
        # regenerate the byte-identical population.
        import os
        from pathlib import Path

        import repro

        local = generate_population(ScenarioConfig.small(seed=77)).digest()
        code = (
            "from repro.data import ScenarioConfig, generate_population;"
            "print(generate_population(ScenarioConfig.small(seed=77)).digest())"
        )
        env = dict(os.environ)
        src = str(Path(repro.__file__).resolve().parent.parent)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        remote = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
            timeout=120,
            env=env,
        ).stdout.strip()
        assert remote == local
