"""JSON-lines dataset layout mirroring the authors' released dump."""

import json

import pytest

from repro.data import (
    GroupBuyingBehavior,
    GroupBuyingDataset,
    SocialEdge,
    compute_statistics,
    load_beibei_format,
    save_beibei_format,
)
from repro.data.beibei_format import BEHAVIORS_FILENAME, SOCIAL_FILENAME


class TestRoundTrip:
    def test_roundtrip_preserves_behaviors_and_edges(self, tiny_dataset, tmp_path):
        save_beibei_format(tiny_dataset, tmp_path)
        loaded = load_beibei_format(tmp_path, num_users=tiny_dataset.num_users, num_items=tiny_dataset.num_items)
        assert loaded.behaviors == tiny_dataset.behaviors
        assert loaded.social_edges == tiny_dataset.social_edges

    def test_roundtrip_statistics_match(self, small_dataset, tmp_path):
        save_beibei_format(small_dataset, tmp_path)
        loaded = load_beibei_format(
            tmp_path, num_users=small_dataset.num_users, num_items=small_dataset.num_items
        )
        assert compute_statistics(loaded).as_dict() == compute_statistics(small_dataset).as_dict()

    def test_universe_inferred_from_ids(self, tmp_path):
        dataset = GroupBuyingDataset(
            num_users=10,
            num_items=8,
            behaviors=[GroupBuyingBehavior(2, 5, participants=(7,), threshold=1)],
            social_edges=[SocialEdge(2, 7)],
        )
        save_beibei_format(dataset, tmp_path)
        loaded = load_beibei_format(tmp_path)
        assert loaded.num_users == 8  # largest seen user is 7
        assert loaded.num_items == 6  # largest seen item is 5


class TestLoading:
    def test_missing_behavior_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_beibei_format(tmp_path)

    def test_threshold_reconstructed_from_success_flag(self, tmp_path):
        lines = [
            json.dumps({"initiator": 0, "item": 0, "participants": [1], "success": True}),
            json.dumps({"initiator": 1, "item": 1, "participants": [0], "success": False}),
            json.dumps({"initiator": 2, "item": 2, "participants": [], "success": False}),
        ]
        (tmp_path / BEHAVIORS_FILENAME).write_text("\n".join(lines) + "\n")
        (tmp_path / SOCIAL_FILENAME).write_text(json.dumps({"user": 0, "friends": [1, 2]}) + "\n")
        loaded = load_beibei_format(tmp_path)
        assert loaded.behaviors[0].is_successful
        assert not loaded.behaviors[1].is_successful
        assert not loaded.behaviors[2].is_successful

    def test_blank_lines_ignored(self, tmp_path):
        record = json.dumps({"initiator": 0, "item": 0, "participants": []})
        (tmp_path / BEHAVIORS_FILENAME).write_text(f"\n{record}\n\n")
        loaded = load_beibei_format(tmp_path)
        assert loaded.num_behaviors == 1

    def test_invalid_json_reports_line_number(self, tmp_path):
        (tmp_path / BEHAVIORS_FILENAME).write_text("not json\n")
        with pytest.raises(ValueError, match="line 1"):
            load_beibei_format(tmp_path)

    def test_missing_keys_rejected(self, tmp_path):
        (tmp_path / BEHAVIORS_FILENAME).write_text(json.dumps({"item": 3}) + "\n")
        with pytest.raises(ValueError, match="initiator"):
            load_beibei_format(tmp_path)

    def test_invalid_social_record_rejected(self, tmp_path):
        (tmp_path / BEHAVIORS_FILENAME).write_text(
            json.dumps({"initiator": 0, "item": 0, "participants": []}) + "\n"
        )
        (tmp_path / SOCIAL_FILENAME).write_text(json.dumps({"friends": [1]}) + "\n")
        with pytest.raises(ValueError, match="user"):
            load_beibei_format(tmp_path)

    def test_explicit_invalid_threshold_rejected(self, tmp_path):
        (tmp_path / BEHAVIORS_FILENAME).write_text(
            json.dumps({"initiator": 0, "item": 0, "participants": [], "threshold": 0}) + "\n"
        )
        with pytest.raises(ValueError, match="threshold"):
            load_beibei_format(tmp_path)

    def test_self_friendships_are_skipped(self, tmp_path):
        (tmp_path / BEHAVIORS_FILENAME).write_text(
            json.dumps({"initiator": 0, "item": 0, "participants": []}) + "\n"
        )
        (tmp_path / SOCIAL_FILENAME).write_text(json.dumps({"user": 0, "friends": [0, 1]}) + "\n")
        loaded = load_beibei_format(tmp_path)
        assert loaded.num_social_edges == 1


class TestSaving:
    def test_every_behavior_becomes_one_line(self, tiny_dataset, tmp_path):
        save_beibei_format(tiny_dataset, tmp_path)
        lines = (tmp_path / BEHAVIORS_FILENAME).read_text().strip().splitlines()
        assert len(lines) == tiny_dataset.num_behaviors

    def test_success_flag_written(self, tiny_dataset, tmp_path):
        save_beibei_format(tiny_dataset, tmp_path)
        records = [
            json.loads(line)
            for line in (tmp_path / BEHAVIORS_FILENAME).read_text().strip().splitlines()
        ]
        assert all("success" in record for record in records)
        assert any(record["success"] for record in records)
        assert any(not record["success"] for record in records)

    def test_friendless_users_omitted_from_social_file(self, tmp_path):
        dataset = GroupBuyingDataset(
            num_users=5,
            num_items=2,
            behaviors=[GroupBuyingBehavior(0, 0, participants=(), threshold=1)],
            social_edges=[SocialEdge(0, 1)],
        )
        save_beibei_format(dataset, tmp_path)
        lines = (tmp_path / SOCIAL_FILENAME).read_text().strip().splitlines()
        users = {json.loads(line)["user"] for line in lines}
        assert users == {0, 1}
