"""Conversions to CF interactions and fixed groups."""

import numpy as np
import pytest

from repro.data import to_fixed_groups, to_user_item_interactions


class TestInteractionConversion:
    def test_oi_keeps_only_initiator_pairs(self, tiny_dataset):
        conversion = to_user_item_interactions(tiny_dataset, mode="oi")
        expected = {(b.initiator, b.item) for b in tiny_dataset.behaviors}
        assert set(map(tuple, conversion.pairs.tolist())) == expected

    def test_both_adds_participant_pairs(self, tiny_dataset):
        oi = to_user_item_interactions(tiny_dataset, mode="oi")
        both = to_user_item_interactions(tiny_dataset, mode="both")
        assert both.num_interactions > oi.num_interactions
        assert (2, 0) in set(map(tuple, both.pairs.tolist()))  # participant pair

    def test_invalid_mode(self, tiny_dataset):
        with pytest.raises(ValueError):
            to_user_item_interactions(tiny_dataset, mode="bogus")

    def test_matrix_shape_and_binary(self, tiny_dataset):
        conversion = to_user_item_interactions(tiny_dataset, mode="both")
        matrix = conversion.matrix()
        assert matrix.shape == (tiny_dataset.num_users, tiny_dataset.num_items)
        assert set(np.unique(matrix.toarray())) <= {0.0, 1.0}

    def test_user_items_mapping(self, tiny_dataset):
        conversion = to_user_item_interactions(tiny_dataset, mode="both")
        mapping = conversion.user_items()
        assert mapping[0] == {0, 1, 2}


class TestFixedGroups:
    def test_groups_defined_by_initiators(self, tiny_dataset):
        groups = to_fixed_groups(tiny_dataset)
        initiators = {b.initiator for b in tiny_dataset.behaviors}
        assert groups.num_groups == len(initiators)
        for user in initiators:
            assert groups.group_for_user(user) >= 0

    def test_group_members_include_companions(self, tiny_dataset):
        groups = to_fixed_groups(tiny_dataset)
        group_of_zero = groups.group_for_user(0)
        members = set(groups.members_of(group_of_zero).tolist())
        assert members == {0, 1, 2}

    def test_first_member_is_initiator(self, tiny_dataset):
        groups = to_fixed_groups(tiny_dataset)
        for user, group in groups.group_of_user.items():
            assert groups.group_members[group][0] == user

    def test_successful_only_activities(self, tiny_dataset):
        successful_only = to_fixed_groups(tiny_dataset, successful_only=True)
        including_failed = to_fixed_groups(tiny_dataset, successful_only=False)
        assert including_failed.group_item_pairs.shape[0] >= successful_only.group_item_pairs.shape[0]

    def test_unknown_user_maps_to_minus_one(self, tiny_dataset):
        groups = to_fixed_groups(tiny_dataset)
        assert groups.group_for_user(5) == -1  # user 5 never initiated
