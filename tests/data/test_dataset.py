"""GroupBuyingDataset container."""

import numpy as np
import pytest

from repro.data import GroupBuyingBehavior, GroupBuyingDataset, SocialEdge


class TestValidation:
    def test_out_of_range_initiator(self):
        with pytest.raises(ValueError):
            GroupBuyingDataset(2, 2, [GroupBuyingBehavior(5, 0, ())], [])

    def test_out_of_range_item(self):
        with pytest.raises(ValueError):
            GroupBuyingDataset(2, 2, [GroupBuyingBehavior(0, 5, ())], [])

    def test_out_of_range_participant(self):
        with pytest.raises(ValueError):
            GroupBuyingDataset(2, 2, [GroupBuyingBehavior(0, 0, (9,))], [])

    def test_out_of_range_social_edge(self):
        with pytest.raises(ValueError):
            GroupBuyingDataset(2, 2, [], [SocialEdge(0, 7)])

    def test_empty_universe_rejected(self):
        with pytest.raises(ValueError):
            GroupBuyingDataset(0, 1, [], [])


class TestDerivedViews:
    def test_success_failure_split(self, tiny_dataset):
        assert len(tiny_dataset.successful_behaviors) == 4
        assert len(tiny_dataset.failed_behaviors) == 2
        assert tiny_dataset.num_behaviors == 6

    def test_social_matrix_symmetric_binary(self, tiny_dataset):
        matrix = tiny_dataset.social_matrix().toarray()
        assert np.allclose(matrix, matrix.T)
        assert set(np.unique(matrix)) <= {0.0, 1.0}
        assert matrix[0, 1] == 1.0 and matrix[0, 5] == 0.0

    def test_friend_lists(self, tiny_dataset):
        friends = tiny_dataset.friend_lists()
        assert set(friends[0]) == {1, 2}
        assert set(friends[4]) == {3, 5}
        assert tiny_dataset.friends_of(5).tolist() == [4]

    def test_initiator_item_pairs(self, tiny_dataset):
        pairs = tiny_dataset.initiator_item_pairs()
        assert pairs.shape == (6, 2)
        assert [0, 0] in pairs.tolist()

    def test_participant_item_pairs(self, tiny_dataset):
        pairs = tiny_dataset.participant_item_pairs()
        total_participants = sum(len(b.participants) for b in tiny_dataset.behaviors)
        assert pairs.shape == (total_participants, 2)

    def test_user_item_set_includes_participants(self, tiny_dataset):
        with_participants = tiny_dataset.user_item_set(include_participants=True)
        only_initiators = tiny_dataset.user_item_set(include_participants=False)
        assert 0 in with_participants[2]  # user 2 joined item 0
        assert 5 not in only_initiators  # user 5 never initiated

    def test_items_of_initiator(self, tiny_dataset):
        assert tiny_dataset.items_of_initiator(0) == {0, 2}

    def test_behaviors_of_initiator(self, tiny_dataset):
        grouped = tiny_dataset.behaviors_of_initiator()
        assert len(grouped[0]) == 2
        assert len(grouped[2]) == 1


class TestSubsetting:
    def test_with_behaviors_keeps_universe(self, tiny_dataset):
        subset = tiny_dataset.with_behaviors(tiny_dataset.behaviors[:2], name="subset")
        assert subset.num_users == tiny_dataset.num_users
        assert subset.num_behaviors == 2
        assert subset.num_social_edges == tiny_dataset.num_social_edges
        assert subset.name == "subset"

    def test_len_and_repr(self, tiny_dataset):
        assert len(tiny_dataset) == 6
        assert "GroupBuyingDataset" in repr(tiny_dataset)

    def test_from_arrays_round_trip(self, tiny_dataset):
        rebuilt = GroupBuyingDataset.from_arrays(
            num_users=tiny_dataset.num_users,
            num_items=tiny_dataset.num_items,
            initiators=[b.initiator for b in tiny_dataset.behaviors],
            items=[b.item for b in tiny_dataset.behaviors],
            participant_lists=[b.participants for b in tiny_dataset.behaviors],
            thresholds=[b.threshold for b in tiny_dataset.behaviors],
            social_pairs=[e.as_tuple() for e in tiny_dataset.social_edges],
        )
        assert rebuilt.num_behaviors == tiny_dataset.num_behaviors
        assert rebuilt.behaviors == tiny_dataset.behaviors
