"""Dataset transforms: filtering, remapping, subsampling, restriction."""

import numpy as np
import pytest

from repro.data import (
    GroupBuyingBehavior,
    GroupBuyingDataset,
    SocialEdge,
    compute_statistics,
    filter_min_interactions,
    remap_ids,
    restrict_to_users,
    subsample_behaviors,
)


class TestFilterMinInteractions:
    def test_no_op_with_zero_thresholds(self, small_dataset):
        filtered = filter_min_interactions(small_dataset, 0, 0)
        assert filtered.num_behaviors == small_dataset.num_behaviors

    def test_removes_rare_users(self):
        behaviors = [
            GroupBuyingBehavior(0, 0, participants=(1,), threshold=1),
            GroupBuyingBehavior(0, 1, participants=(1,), threshold=1),
            GroupBuyingBehavior(2, 0, participants=(), threshold=1),  # user 2 appears once
        ]
        dataset = GroupBuyingDataset(4, 3, behaviors, [SocialEdge(0, 1)])
        filtered = filter_min_interactions(dataset, min_user_interactions=2, min_item_interactions=0)
        assert all(b.initiator == 0 for b in filtered.behaviors)

    def test_cascading_removal_reaches_fixed_point(self):
        # Dropping item 1's only behavior leaves user 1 with a single
        # behavior, which must then be dropped too.
        behaviors = [
            GroupBuyingBehavior(0, 0, participants=(), threshold=1),
            GroupBuyingBehavior(0, 0, participants=(), threshold=1),
            GroupBuyingBehavior(1, 1, participants=(), threshold=1),
            GroupBuyingBehavior(1, 0, participants=(), threshold=1),
        ]
        dataset = GroupBuyingDataset(3, 3, behaviors, [SocialEdge(0, 1)])
        filtered = filter_min_interactions(dataset, min_user_interactions=2, min_item_interactions=2)
        assert {b.initiator for b in filtered.behaviors} == {0}

    def test_negative_threshold_rejected(self, tiny_dataset):
        with pytest.raises(ValueError):
            filter_min_interactions(tiny_dataset, min_user_interactions=-1)

    def test_keeps_universe_sizes(self, small_dataset):
        filtered = filter_min_interactions(small_dataset, 3, 3)
        assert filtered.num_users == small_dataset.num_users
        assert filtered.num_items == small_dataset.num_items


class TestRemapIds:
    def test_ids_are_contiguous(self):
        behaviors = [GroupBuyingBehavior(10, 7, participants=(20,), threshold=1)]
        edges = [SocialEdge(10, 20), SocialEdge(20, 33)]
        dataset = GroupBuyingDataset(50, 9, behaviors, edges)
        remapped, mapping = remap_ids(dataset)
        assert remapped.num_users == 3
        assert remapped.num_items == 1
        assert set(mapping.user_map) == {10, 20, 33}
        assert remapped.behaviors[0].initiator == mapping.user_map[10]
        assert remapped.behaviors[0].item == mapping.item_map[7]

    def test_mapping_is_order_preserving(self):
        behaviors = [
            GroupBuyingBehavior(5, 2, participants=(), threshold=1),
            GroupBuyingBehavior(9, 4, participants=(), threshold=1),
        ]
        dataset = GroupBuyingDataset(20, 10, behaviors, [SocialEdge(5, 9)])
        _, mapping = remap_ids(dataset)
        assert mapping.user_map[5] < mapping.user_map[9]
        assert mapping.item_map[2] < mapping.item_map[4]

    def test_inverse_lookup(self):
        behaviors = [GroupBuyingBehavior(3, 1, participants=(), threshold=1)]
        dataset = GroupBuyingDataset(10, 5, behaviors, [SocialEdge(3, 4)])
        _, mapping = remap_ids(dataset)
        assert mapping.original_user(mapping.user_map[3]) == 3
        assert mapping.original_item(mapping.item_map[1]) == 1
        with pytest.raises(KeyError):
            mapping.original_user(999)

    def test_roundtrip_preserves_structure(self, small_dataset):
        remapped, _ = remap_ids(small_dataset)
        original = compute_statistics(small_dataset)
        new = compute_statistics(remapped)
        assert new.num_behaviors == original.num_behaviors
        assert new.num_successful == original.num_successful
        assert new.num_social_interactions == original.num_social_interactions


class TestSubsampleBehaviors:
    def test_fraction_one_keeps_everything(self, small_dataset):
        assert subsample_behaviors(small_dataset, 1.0).num_behaviors == small_dataset.num_behaviors

    def test_invalid_fraction(self, small_dataset):
        with pytest.raises(ValueError):
            subsample_behaviors(small_dataset, 0.0)
        with pytest.raises(ValueError):
            subsample_behaviors(small_dataset, 1.5)

    def test_half_keeps_roughly_half(self, small_dataset):
        subsampled = subsample_behaviors(small_dataset, 0.5, seed=3)
        assert abs(subsampled.num_behaviors - small_dataset.num_behaviors / 2) <= 2

    def test_success_ratio_preserved(self, small_dataset):
        original = compute_statistics(small_dataset).success_ratio
        subsampled = compute_statistics(subsample_behaviors(small_dataset, 0.4, seed=1)).success_ratio
        assert abs(original - subsampled) < 0.05

    def test_deterministic_per_seed(self, small_dataset):
        a = subsample_behaviors(small_dataset, 0.3, seed=7)
        b = subsample_behaviors(small_dataset, 0.3, seed=7)
        assert a.behaviors == b.behaviors

    def test_social_network_untouched(self, small_dataset):
        subsampled = subsample_behaviors(small_dataset, 0.2, seed=0)
        assert subsampled.social_edges == small_dataset.social_edges


class TestRestrictToUsers:
    def test_keeps_only_allowed_initiators(self, tiny_dataset):
        restricted = restrict_to_users(tiny_dataset, [0, 1, 2])
        assert {b.initiator for b in restricted.behaviors} <= {0, 1, 2}

    def test_outside_participants_dropped(self, tiny_dataset):
        restricted = restrict_to_users(tiny_dataset, [0, 1])
        for behavior in restricted.behaviors:
            assert set(behavior.participants) <= {0, 1}

    def test_outside_participants_kept_when_requested(self, tiny_dataset):
        restricted = restrict_to_users(tiny_dataset, [0, 1], drop_outside_participants=False)
        participants = {p for b in restricted.behaviors for p in b.participants}
        assert 2 in participants

    def test_social_edges_restricted(self, tiny_dataset):
        restricted = restrict_to_users(tiny_dataset, [0, 1])
        for edge in restricted.social_edges:
            assert edge.user_a in {0, 1} and edge.user_b in {0, 1}

    def test_out_of_range_user_rejected(self, tiny_dataset):
        with pytest.raises(ValueError):
            restrict_to_users(tiny_dataset, [999])
