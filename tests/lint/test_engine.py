"""Engine semantics: pragma grammar, suppression coverage, rule selection,
reporters, and the PRAGMA-001 meta-rule."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lint import (
    ALL_RULES,
    LintUsageError,
    lint_text,
    render_json,
    render_text,
    run_lint,
)
from repro.lint.engine import Finding, parse_pragmas
from repro.lint.report import JSON_SCHEMA_VERSION

pytestmark = pytest.mark.lint


class TestPragmaParsing:
    def test_inline_pragma_with_reason(self):
        pragmas = parse_pragmas("x = 1  # repro: allow(RNG-001) -- because physics\n")
        assert len(pragmas) == 1
        pragma = pragmas[0]
        assert pragma.rules == ("RNG-001",)
        assert pragma.reason == "because physics"
        assert not pragma.own_line
        assert pragma.covers(1) and not pragma.covers(2)

    def test_own_line_pragma_covers_next_line(self):
        pragmas = parse_pragmas("# repro: allow(IO-001, CLOCK-001) -- why\nx = 1\n")
        pragma = pragmas[0]
        assert pragma.rules == ("IO-001", "CLOCK-001")
        assert pragma.own_line
        assert pragma.covers(2) and not pragma.covers(1)

    def test_reasonless_pragma_parses_with_empty_reason(self):
        (pragma,) = parse_pragmas("x  # repro: allow(RNG-001)\n")
        assert pragma.reason == ""

    def test_prose_describing_the_grammar_is_not_a_pragma(self):
        assert parse_pragmas("# repro: allow(RULE-ID) -- reason goes here\n") == []
        assert parse_pragmas("use repro: allow(...) to suppress\n") == []


class TestSuppression:
    SNIPPET = "import time\n\n\ndef f():\n    return time.time()  # repro: allow(CLOCK-001) -- wall-clock wanted\n"

    def test_valid_pragma_suppresses(self):
        assert lint_text(ALL_RULES, self.SNIPPET, rel="serving/x.py") == []

    def test_reasonless_pragma_does_not_suppress_and_is_flagged(self):
        snippet = self.SNIPPET.replace(" -- wall-clock wanted", "")
        findings = lint_text(ALL_RULES, snippet, rel="serving/x.py")
        assert {f.rule for f in findings} == {"CLOCK-001", "PRAGMA-001"}

    def test_unknown_rule_id_does_not_suppress_and_is_flagged(self):
        snippet = self.SNIPPET.replace("CLOCK-001", "ZZZ-999")
        findings = lint_text(ALL_RULES, snippet, rel="serving/x.py")
        assert {f.rule for f in findings} == {"CLOCK-001", "PRAGMA-001"}

    def test_pragma_for_a_different_rule_does_not_suppress(self):
        snippet = self.SNIPPET.replace("CLOCK-001", "RNG-001")
        findings = lint_text(ALL_RULES, snippet, rel="serving/x.py")
        assert [f.rule for f in findings] == ["CLOCK-001"]

    def test_scope_matters_outside_scoped_packages_clock_is_silent(self):
        findings = lint_text(ALL_RULES, "import time\nx = time.time()\n", rel="eval/x.py")
        assert findings == []


class TestRunLint:
    def test_unknown_select_raises_usage_error(self, tmp_path):
        (tmp_path / "m.py").write_text("x = 1\n")
        with pytest.raises(LintUsageError):
            run_lint(ALL_RULES, [tmp_path], select=["NOPE-123"])

    def test_missing_path_raises_usage_error(self, tmp_path):
        with pytest.raises(LintUsageError):
            run_lint(ALL_RULES, [tmp_path / "absent"])

    def test_select_narrows_rules(self, tmp_path):
        (tmp_path / "serving").mkdir()
        bad = tmp_path / "serving" / "x.py"
        bad.write_text("import time\nimport numpy as np\nnp.random.seed(1)\nx = time.time()\n")
        full = run_lint(ALL_RULES, [tmp_path], root=tmp_path)
        assert {f.rule for f in full.findings} == {"RNG-001", "CLOCK-001"}
        narrowed = run_lint(ALL_RULES, [tmp_path], root=tmp_path, select=["RNG-001"])
        assert {f.rule for f in narrowed.findings} == {"RNG-001"}
        assert narrowed.rules_run == ["RNG-001"]

    def test_findings_sorted_and_counted(self, tmp_path):
        (tmp_path / "serving").mkdir()
        (tmp_path / "serving" / "x.py").write_text("import time\na = time.time()\nb = time.time()\n")
        report = run_lint(ALL_RULES, [tmp_path], root=tmp_path)
        assert [f.line for f in report.findings] == [2, 3]
        assert report.files_scanned == 1
        assert not report.clean


class TestReporters:
    def _report(self, tmp_path):
        (tmp_path / "serving").mkdir()
        (tmp_path / "serving" / "x.py").write_text("import time\na = time.time()\n")
        return run_lint(ALL_RULES, [tmp_path], root=tmp_path)

    def test_text_report_names_rule_path_line_and_hint(self, tmp_path):
        text = render_text(self._report(tmp_path))
        assert "[CLOCK-001]" in text
        assert "serving/x.py:2" in text
        assert "hint:" in text
        assert "1 finding in 1 files" in text

    def test_json_report_round_trips(self, tmp_path):
        payload = json.loads(render_json(self._report(tmp_path)))
        assert payload["version"] == JSON_SCHEMA_VERSION
        assert payload["clean"] is False
        assert payload["files_scanned"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "CLOCK-001"
        assert finding["line"] == 2
        assert set(finding) == {"path", "line", "rule", "message", "hint"}

    def test_clean_report_says_clean(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        report = run_lint(ALL_RULES, [tmp_path], root=tmp_path)
        assert report.clean
        assert render_text(report).startswith("clean: 0 findings")


class TestFindingOrdering:
    def test_findings_sort_by_path_then_line(self):
        findings = [
            Finding("b.py", 3, "RNG-001", "m"),
            Finding("a.py", 9, "IO-001", "m"),
            Finding("a.py", 2, "RNG-001", "m"),
        ]
        ordered = sorted(findings)
        assert [(f.path, f.line) for f in ordered] == [("a.py", 2), ("a.py", 9), ("b.py", 3)]
