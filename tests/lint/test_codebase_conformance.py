"""Tier-1 conformance: the committed ``src/`` tree passes every rule.

This is the test that turns the unwritten rules into CI policy — a
violation anywhere in ``src/`` fails a bare ``python -m pytest -x -q``,
naming the file, line, rule and fix hint.  Legitimate exceptions live
next to the code as ``# repro: allow(RULE-ID) -- reason`` pragmas; the
engine rejects reason-less ones, and this module additionally pins the
current exemption ledger so a new pragma shows up in review as a diff
here, not just in the suppressed count.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import ALL_RULES, render_text, run_lint
from repro.lint.engine import parse_pragmas

pytestmark = pytest.mark.lint

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def _report():
    assert SRC.is_dir(), f"cannot locate the source tree at {SRC}"
    return run_lint(ALL_RULES, [SRC])


def test_src_tree_is_conformant():
    report = _report()
    assert report.clean, "\n" + render_text(report)


def test_src_tree_scan_covers_the_whole_package():
    report = _report()
    # Guard against a silently-empty scan passing vacuously.
    assert report.files_scanned > 100
    assert set(report.rules_run) == {rule.id for rule in ALL_RULES}


def test_every_pragma_in_src_carries_a_reason():
    reasonless = []
    for path in sorted(SRC.rglob("*.py")):
        for pragma in parse_pragmas(path.read_text(encoding="utf-8")):
            if not pragma.reason:
                reasonless.append(f"{path}:{pragma.line}")
    assert reasonless == [], f"reason-less pragmas: {reasonless}"


def test_exemption_ledger_is_exactly_the_reviewed_set():
    """Every committed pragma, by file and rule — update deliberately."""
    ledger = {}
    for path in sorted(SRC.rglob("*.py")):
        rel = path.relative_to(SRC).as_posix()
        for pragma in parse_pragmas(path.read_text(encoding="utf-8")):
            for rule in pragma.rules:
                ledger.setdefault(rel, []).append(rule)
    # Prose pragmas in repro.lint's own docs parse as valid pragmas;
    # they suppress nothing but are listed for honesty.
    assert ledger == {
        "persist/artifact.py": ["CLOCK-001"],
        "persist/index.py": ["RNG-001"],
        "serving/catalog.py": ["FORK-001"],
        "lint/__init__.py": ["CLOCK-001"],
        "lint/rules/clock.py": ["CLOCK-001"],
    }
