"""CLI contract: ``python -m repro.lint`` exit codes and reporters.

Exit codes are script-friendly and stable: 0 clean / 1 findings / 2 usage.
"""

from __future__ import annotations

import json

import pytest

from repro.lint.__main__ import EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE, main

pytestmark = pytest.mark.lint


@pytest.fixture()
def dirty_tree(tmp_path):
    (tmp_path / "serving").mkdir()
    (tmp_path / "serving" / "x.py").write_text("import time\na = time.time()\n")
    return tmp_path


@pytest.fixture()
def clean_tree(tmp_path):
    (tmp_path / "ok.py").write_text("x = 1\n")
    return tmp_path


def test_clean_tree_exits_zero(clean_tree, capsys):
    assert main([str(clean_tree)]) == EXIT_CLEAN
    assert "clean" in capsys.readouterr().out


def test_findings_exit_one_with_text_report(dirty_tree, capsys):
    assert main([str(dirty_tree)]) == EXIT_FINDINGS
    out = capsys.readouterr().out
    assert "[CLOCK-001]" in out and "hint:" in out


def test_json_reporter_parses_and_carries_findings(dirty_tree, capsys):
    assert main(["--json", str(dirty_tree)]) == EXIT_FINDINGS
    payload = json.loads(capsys.readouterr().out)
    assert payload["clean"] is False
    assert payload["findings"][0]["rule"] == "CLOCK-001"


def test_missing_path_is_usage_error(tmp_path, capsys):
    assert main([str(tmp_path / "absent")]) == EXIT_USAGE
    assert "usage error" in capsys.readouterr().err


def test_unknown_rule_is_usage_error(clean_tree, capsys):
    assert main(["--rules", "NOPE-001", str(clean_tree)]) == EXIT_USAGE
    assert "unknown rule" in capsys.readouterr().err


def test_unparseable_source_is_usage_error(tmp_path, capsys):
    (tmp_path / "broken.py").write_text("def broken(:\n")
    assert main([str(tmp_path)]) == EXIT_USAGE
    assert "cannot parse" in capsys.readouterr().err


def test_rules_filter_runs_only_selected(dirty_tree, capsys):
    assert main(["--rules", "RNG-001", str(dirty_tree)]) == EXIT_CLEAN
    out = capsys.readouterr().out
    assert "rules" not in out or "CLOCK-001" not in out


def test_list_rules_names_all_seven(capsys):
    assert main(["--list-rules"]) == EXIT_CLEAN
    out = capsys.readouterr().out
    for rule_id in (
        "RNG-001",
        "CLOCK-001",
        "LOCK-001",
        "FORK-001",
        "RAISE-001",
        "IO-001",
        "EXPORT-001",
    ):
        assert rule_id in out
