"""Fixture-based coverage for every rule: each bad fixture produces exactly
its annotated findings, each good fixture (including pragma'd code) is clean.

Bad fixtures self-describe their expectations:

* ``# expect: RULE-ID`` trailing a line expects that rule *on that line*;
* ``# expects: RULE-ID@LINE, ...`` in the module docstring declares
  absolute expectations, for lines (like suppression pragmas) that cannot
  carry a trailing comment without changing their meaning.

The fixture trees masquerade as package code: ``fixtures/bad`` is passed
as the scan root, so ``fixtures/bad/serving/x.py`` checks under the
logical path ``serving/x.py`` and scoped rules (CLOCK, FORK, RAISE, IO)
apply exactly as they would in ``src/repro``.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Set, Tuple

import pytest

from repro.lint import ALL_RULES, run_lint

pytestmark = pytest.mark.lint

FIXTURES = Path(__file__).parent / "fixtures"
BAD = FIXTURES / "bad"
GOOD = FIXTURES / "good"

_EXPECT_INLINE = re.compile(r"#\s*expect:\s*(?P<rules>[A-Z]+-\d{3}(?:\s*,\s*[A-Z]+-\d{3})*)")
_EXPECT_ABS = re.compile(r"#\s*expects:\s*(?P<pairs>[A-Z]+-\d{3}@\d+(?:\s*,\s*[A-Z]+-\d{3}@\d+)*)")


def _expected(path: Path) -> Set[Tuple[int, str]]:
    expected: Set[Tuple[int, str]] = set()
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        inline = _EXPECT_INLINE.search(line)
        if inline:
            for rule in inline.group("rules").split(","):
                expected.add((number, rule.strip()))
        absolute = _EXPECT_ABS.search(line)
        if absolute:
            for pair in absolute.group("pairs").split(","):
                rule, _, at = pair.strip().partition("@")
                expected.add((int(at), rule))
    return expected


def _bad_files():
    return sorted(BAD.rglob("*.py"))


@pytest.mark.parametrize("path", _bad_files(), ids=lambda p: p.relative_to(BAD).as_posix())
def test_bad_fixture_produces_exactly_its_expected_findings(path):
    # Support files (e.g. pkg/real.py backing the __init__ fixture) carry
    # no annotations and must stay finding-free themselves.
    expected = _expected(path)
    report = run_lint(ALL_RULES, [BAD], root=BAD)
    display = path.as_posix()
    actual = {(f.line, f.rule) for f in report.findings if f.path == display}
    assert actual == expected


def test_every_rule_has_at_least_one_firing_bad_fixture():
    """The acceptance bar: each registered rule provably fires."""
    report = run_lint(ALL_RULES, [BAD], root=BAD)
    fired = {f.rule for f in report.findings}
    for rule in ALL_RULES:
        assert rule.id in fired, f"no bad fixture exercises {rule.id}"
    assert "PRAGMA-001" in fired  # the engine's own rule fires too


def test_good_fixtures_are_clean_and_pragmas_suppress():
    report = run_lint(ALL_RULES, [GOOD], root=GOOD)
    assert report.findings == []
    # The justified-pragma fixture suppresses both placements.
    assert report.suppressed == 2


def test_expect_annotations_and_fixture_tree_are_nontrivial():
    assert len(_bad_files()) >= 8
    assert len(sorted(GOOD.rglob("*.py"))) >= 8
