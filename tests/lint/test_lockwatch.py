"""Unit coverage for the runtime lock-order watchdog — including the
deliberate-inversion test the acceptance criteria call for."""

from __future__ import annotations

import threading

import pytest

from repro.lint import DEFAULT_HIERARCHY, LockOrderViolation, LockOrderWatchdog
from repro.lint.lockwatch import WatchedLock

pytestmark = pytest.mark.lint


@pytest.fixture()
def watchdog():
    return LockOrderWatchdog()


def _pair(watchdog):
    outer = watchdog.wrap(threading.Lock(), "ModelCatalog._lock")
    inner = watchdog.wrap(threading.Lock(), "MetricsRegistry._lock")
    return outer, inner


class TestOrdering:
    def test_documented_order_is_clean(self, watchdog):
        outer, inner = _pair(watchdog)
        with outer:
            with inner:
                pass
        watchdog.assert_clean()
        assert watchdog.checked == 2

    def test_deliberate_inversion_is_detected_and_raised(self, watchdog):
        outer, inner = _pair(watchdog)
        with inner:
            with pytest.raises(LockOrderViolation, match="inversion"):
                with outer:
                    pass  # pragma: no cover - never reached
        assert len(watchdog.violations) == 1
        message = watchdog.violations[0]
        assert "ModelCatalog._lock" in message and "MetricsRegistry._lock" in message
        with pytest.raises(LockOrderViolation, match="1 lock-order inversion"):
            watchdog.assert_clean()

    def test_record_only_mode_collects_without_raising(self):
        watchdog = LockOrderWatchdog(raise_on_violation=False)
        outer, inner = _pair(watchdog)
        with inner:
            with outer:
                pass
        assert len(watchdog.violations) == 1

    def test_same_rank_different_instances_is_a_violation(self, watchdog):
        first = watchdog.wrap(threading.Lock(), "CatalogEntry.load_lock[a]", 10)
        second = watchdog.wrap(threading.Lock(), "CatalogEntry.load_lock[b]", 10)
        with first:
            with pytest.raises(LockOrderViolation):
                second.acquire()

    def test_rlock_reentry_of_same_instance_is_legal(self, watchdog):
        lock = watchdog.wrap(threading.RLock(), "ModelCatalog._lock")
        with lock:
            with lock:
                pass
        watchdog.assert_clean()

    def test_chains_are_per_thread(self, watchdog):
        outer, inner = _pair(watchdog)
        errors = []

        def hold_inner():
            # This thread holds only the inner lock; the main thread's
            # chain must not leak into it.
            try:
                with inner:
                    barrier.wait(timeout=5)
                    barrier.wait(timeout=5)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        barrier = threading.Barrier(2)
        thread = threading.Thread(target=hold_inner)
        thread.start()
        barrier.wait(timeout=5)
        with outer:  # other thread holds rank-30; this thread holds nothing
            pass
        barrier.wait(timeout=5)
        thread.join(timeout=5)
        assert errors == []
        watchdog.assert_clean()

    def test_failed_timeout_acquire_is_not_counted_as_held(self, watchdog):
        raw = threading.Lock()
        lock = watchdog.wrap(raw, "ModelCatalog._lock")
        raw_inner = watchdog.wrap(threading.Lock(), "MetricsRegistry._lock")

        raw.acquire()  # simulate another owner
        try:
            assert lock.acquire(timeout=0.01) is False
            # Had the failed acquire been pushed, taking rank-30 then
            # rank-20 below would *not* flag (chain thinks 20 is held).
            with raw_inner:
                with pytest.raises(LockOrderViolation):
                    lock.acquire(timeout=0.01)
        finally:
            raw.release()


class TestInstrumentation:
    class Stack:
        def __init__(self):
            self._lock = threading.Lock()

    def test_instrument_and_unwatch_restore_raw_lock(self, watchdog):
        stack = self.Stack()
        raw = stack._lock
        watched = watchdog.instrument(stack, "_lock", "MetricsRegistry._lock")
        assert isinstance(stack._lock, WatchedLock)
        assert stack._lock is watched
        with stack._lock:
            pass
        watchdog.unwatch_all()
        assert stack._lock is raw

    def test_instrument_is_idempotent(self, watchdog):
        stack = self.Stack()
        first = watchdog.instrument(stack, "_lock", "MetricsRegistry._lock")
        second = watchdog.instrument(stack, "_lock", "MetricsRegistry._lock")
        assert first is second

    def test_wrap_defaults_rank_from_documented_hierarchy(self, watchdog):
        for label, rank in DEFAULT_HIERARCHY.items():
            assert watchdog.wrap(threading.Lock(), label).rank == rank

    def test_context_manager_unwatches_on_exit(self):
        stack = self.Stack()
        raw = stack._lock
        with LockOrderWatchdog() as watchdog:
            watchdog.instrument(stack, "_lock", "MetricsRegistry._lock")
            assert isinstance(stack._lock, WatchedLock)
        assert stack._lock is raw


class TestServingStackIntegration:
    def test_watch_stack_covers_catalog_entries_and_metrics(self, tmp_path, small_split):
        # A real catalog over a real artifact directory: watch, serve,
        # assert the documented hierarchy held on the live cold-start path.
        from repro.models import ModelSettings, build_model
        from repro.persist import save_model
        from repro.serving import ModelCatalog

        model = build_model("MF", small_split.train, ModelSettings(embedding_dim=8))
        save_model(model, tmp_path / "mf.npz")

        catalog = ModelCatalog(tmp_path, small_split.train)
        watchdog = LockOrderWatchdog()
        watchdog.watch_stack(catalog)
        try:
            store = catalog.store("mf")  # cold start: load_lock -> _lock path
            assert store is not None
            catalog.evict("mf")  # _lock -> metrics._lock path
        finally:
            watchdog.unwatch_all()
        watchdog.assert_clean()
        assert watchdog.checked > 0
