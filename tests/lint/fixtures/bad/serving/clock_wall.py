"""CLOCK-001: wall-clock duration measurement inside serving/."""

import time


def timed(fn):
    start = time.time()  # expect: CLOCK-001
    fn()
    return time.time() - start  # expect: CLOCK-001
