"""FORK-001: a serving class storing a lock without the fork-safety protocol."""

import threading


class SheddingCounter:  # expect: FORK-001
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0

    def bump(self):
        with self._lock:
            self.count += 1


class HalfProtected:  # expect: FORK-001
    """Has the re-init hook but never registers it — the hook never runs."""

    def __init__(self):
        self._cv = threading.Condition()

    def _reinit_after_fork_in_child(self):
        self._cv = threading.Condition()
