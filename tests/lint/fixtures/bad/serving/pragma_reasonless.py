"""A reason-less pragma is itself rejected AND does not suppress.

Expectations cannot ride the pragma line (a trailing comment would stop
it parsing as a pragma), so this fixture declares them absolutely:

# expects: PRAGMA-001@13, CLOCK-001@14
"""

import time


def stamp():
    # repro: allow(CLOCK-001)
    return time.time()
