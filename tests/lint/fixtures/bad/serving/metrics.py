"""LOCK-001: a lexically nested inversion against the documented hierarchy.

This fixture masquerades as ``serving/metrics.py`` so ``self._lock``
resolves as MetricsRegistry._lock (rank 30, innermost).
"""


class Registry:
    def __init__(self, lock, entry):
        self._lock = lock
        self._entry = entry

    def snapshot_with_cold_start(self):
        with self._lock:
            with self._entry.load_lock:  # expect: LOCK-001
                return dict(self._entry.stats)

    def try_cold_start(self):
        with self._lock:
            self._entry.load_lock.acquire()  # expect: LOCK-001
            try:
                return dict(self._entry.stats)
            finally:
                self._entry.load_lock.release()
