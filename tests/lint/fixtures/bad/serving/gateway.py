"""RAISE-001: a public gateway entry point raising a bare builtin."""


class Gateway:
    def __init__(self, models):
        self._models = models

    def top_k(self, name, users, k):
        if name not in self._models:
            raise KeyError(name)  # expect: RAISE-001
        if k < 1:
            raise IndexError("k out of range")  # expect: RAISE-001
        return self._models[name](users, k)

    def _lookup(self, name):
        # Private helpers may raise whatever they like; the public
        # boundary is responsible for translation.
        raise KeyError(name)
