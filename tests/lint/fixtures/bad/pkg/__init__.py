"""EXPORT-001: stale ``__all__`` entry + re-export of a dropped name."""

from .real import build_index, purge_cache  # expect: EXPORT-001

__all__ = [
    "build_index",
    "purge_cache",
    "rebuild_everything",  # expect: EXPORT-001
]
