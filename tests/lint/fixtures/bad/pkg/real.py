"""Submodule that no longer defines ``purge_cache`` (it was refactored away)."""


def build_index(rows):
    return sorted(rows)
