"""IO-001: artifact bytes written without tmp+fsync+os.replace."""

import json
import os


def publish_header(path, payload):
    with open(path, "w") as handle:  # expect: IO-001
        json.dump(payload, handle)  # expect: IO-001


def publish_raw(path, blob):
    descriptor = os.open(path, os.O_CREAT | os.O_WRONLY)  # expect: IO-001
    with os.fdopen(descriptor, "wb") as handle:
        handle.write(blob)


def publish_text(path, text):
    path.write_text(text)  # expect: IO-001
