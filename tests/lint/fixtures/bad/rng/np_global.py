"""RNG-001: numpy legacy global-state API draws are banned everywhere."""

import numpy as np


def shuffled_indices(n):
    np.random.seed(13)  # expect: RNG-001
    order = np.random.permutation(n)  # expect: RNG-001
    noise = np.random.rand(n)  # expect: RNG-001
    return order, noise
