"""RNG-001: module-level stdlib ``random.*`` functions are hidden global state."""

import random
from random import shuffle  # expect: RNG-001


def pick(items):
    random.shuffle(items)  # expect: RNG-001
    return random.choice(items)  # expect: RNG-001
