"""Clean persist IO: writes only inside the atomic helpers (and reads anywhere)."""

import json
import os


def _atomic_replace_write(path, write):
    tmp = str(path) + ".tmp"
    descriptor = os.open(tmp, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o666)
    with os.fdopen(descriptor, "wb") as handle:
        write(handle)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def _write_dir_artifact(path, payload):
    def build(tmp):
        with open(tmp / "header.json", "w") as handle:
            json.dump(payload, handle)

    build(path)


def read_header(path):
    with open(path, "rb") as handle:
        return handle.read()
