"""A justified pragma suppresses its finding — both placements."""

import time


def sweep_age(mtime):
    # repro: allow(CLOCK-001) -- compares against a file mtime, which is wall-clock
    return time.time() - mtime


def sweep_age_inline(mtime):
    return time.time() - mtime  # repro: allow(CLOCK-001) -- mtime comparison is wall-clock by definition
