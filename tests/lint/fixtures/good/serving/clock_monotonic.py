"""Clean clocks: monotonic for durations, perf_counter for latency."""

import time


def timed(fn):
    start = time.monotonic()
    fn()
    return time.monotonic() - start


def latency(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
