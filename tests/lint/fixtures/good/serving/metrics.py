"""Clean lock usage: nesting in documented order, re-entry, unknown locks."""


class Registry:
    def __init__(self, lock, entry, aux):
        self._lock = lock
        self._entry = entry
        self._aux_lock = aux

    def cold_start_then_record(self):
        # Ascending rank: load_lock (10) outside, _lock (30, this file
        # masquerades as metrics.py) inside — the documented order.
        with self._entry.load_lock:
            with self._lock:
                return dict(self._entry.stats)

    def record(self):
        with self._lock:
            # Locks outside the hierarchy table are never checked.
            with self._aux_lock:
                return 1

    def deferred(self):
        with self._lock:
            def later():
                # A nested def body runs at call time, not under the
                # enclosing with — no inversion here.
                with self._entry.load_lock:
                    return 0
            return later
