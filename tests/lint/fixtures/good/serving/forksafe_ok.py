"""Clean fork-safety: the full protocol, and lock-free classes."""

import threading

from repro.serving import forksafe


class SafeCounter:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0
        forksafe.protect(self)

    def _reinit_after_fork_in_child(self):
        self._lock = threading.Lock()

    def bump(self):
        with self._lock:
            self.count += 1


class NoLocks:
    """No lock attributes — no protocol required."""

    def __init__(self, lock):
        # Borrowing someone else's lock is not *storing* a lock factory.
        self._borrowed = lock
