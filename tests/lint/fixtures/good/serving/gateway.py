"""Clean raises: the typed taxonomy at public entry points."""


class UnknownModelError(LookupError):
    pass


class Gateway:
    def __init__(self, models):
        self._models = models

    def top_k(self, name, users, k):
        if name not in self._models:
            raise UnknownModelError(name)
        return self._models[name](users, k)
