"""Submodule backing the clean package fixture."""


def build_index(rows):
    return sorted(rows)
