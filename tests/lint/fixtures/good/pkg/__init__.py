"""Clean exports: everything in ``__all__`` resolves, submodule re-export included."""

from . import real
from .real import build_index

__all__ = ["build_index", "real", "LOCAL_CONSTANT"]

LOCAL_CONSTANT = 7
