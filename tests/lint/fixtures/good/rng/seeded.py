"""Clean randomness: owned, seeded streams only."""

import random
from typing import Optional

import numpy as np


def shuffled_indices(n, seed):
    rng = np.random.default_rng(seed)
    return rng.permutation(n)


def spawn(seed, count):
    root = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(count)]


def jitter_stream(seed):
    # Instance-based stdlib randomness owns its state — allowed.
    return random.Random(seed)


def annotated(rng: Optional[np.random.Generator] = None) -> np.random.Generator:
    return rng or np.random.default_rng()
