"""Row-restricted cross-view propagation: compact rows == full-table rows."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import CrossViewPropagation, GBGCN, GBGCNConfig, InViewPropagation
from repro.graph import build_hetero_graph
from repro.models import ModelSettings, build_model
from repro.training.factory import build_batch_iterator


@pytest.fixture(scope="module")
def graph(small_split):
    return build_hetero_graph(small_split.train)


@pytest.fixture(scope="module")
def stages(graph, small_split):
    rng = np.random.default_rng(0)
    train = small_split.train
    in_view = InViewPropagation(graph, num_layers=2)
    cross_view = CrossViewPropagation(graph, feature_dim=3 * 8, rng=rng)
    users = Tensor(rng.normal(size=(train.num_users, 8)))
    items = Tensor(rng.normal(size=(train.num_items, 8)))
    return cross_view, in_view(users, items)


def test_restricted_rows_match_full_output(stages, small_split):
    cross_view, in_view_out = stages
    train = small_split.train
    user_rows = np.array(sorted({0, 2, train.num_users - 1}))
    item_rows = np.array(sorted({1, train.num_items - 1}))
    full = cross_view(in_view_out)
    restricted = cross_view(in_view_out, user_initiator_rows=user_rows, item_rows=item_rows)
    assert restricted.user_initiator.shape == (user_rows.size, full.user_initiator.shape[1])
    np.testing.assert_allclose(
        restricted.user_initiator.data, full.user_initiator.data[user_rows], rtol=1e-12, atol=1e-14
    )
    np.testing.assert_allclose(
        restricted.item_initiator.data, full.item_initiator.data[item_rows], rtol=1e-12, atol=1e-14
    )
    np.testing.assert_allclose(
        restricted.item_participant.data, full.item_participant.data[item_rows], rtol=1e-12, atol=1e-14
    )
    # The participant-view users feed the friend average and stay full-width.
    assert restricted.user_participant.shape == full.user_participant.shape
    np.testing.assert_allclose(
        restricted.user_participant.data, full.user_participant.data, rtol=0, atol=0
    )


@pytest.mark.parametrize(
    "share_user_roles, share_item_roles",
    [(True, False), (False, True), (True, True)],
)
def test_shared_role_ablations_still_train(small_split, share_user_roles, share_item_roles):
    train = small_split.train
    config = GBGCNConfig(
        embedding_dim=8,
        share_user_roles=share_user_roles,
        share_item_roles=share_item_roles,
    )
    model = GBGCN(
        train.num_users,
        train.num_items,
        graph=build_hetero_graph(train),
        config=config,
        rng=np.random.default_rng(0),
    )
    batch = next(iter(build_batch_iterator(model, train, batch_size=32, seed=0)))
    loss = model.batch_loss(batch)
    loss.backward()
    assert np.isfinite(float(loss.data))
    assert model.user_embedding.weight.grad is not None


def test_gbgcn_training_matches_unrestricted_scores(small_split):
    """The restricted training path scores the same pairs as full propagation."""
    train = small_split.train
    model = build_model("GBGCN", train, ModelSettings(embedding_dim=8))
    batch = next(iter(build_batch_iterator(model, train, batch_size=32, seed=1)))
    loss_restricted = float(model.batch_loss(batch).data)

    # Reference: full propagation + the predictor's unfused pairwise scores.
    embeddings = model.propagate()
    friend_average = model.predictor.friend_average(embeddings.user_participant)

    def score_pairs(users, items):
        return model.predictor.score_pairs(
            users,
            items,
            embeddings.user_initiator,
            embeddings.item_initiator,
            friend_average,
            embeddings.item_participant,
        )

    reference_loss = model.loss_function(batch, score_pairs)
    touched_users = np.unique(
        np.concatenate([batch.initiators, batch.participants, batch.failed_friends])
    )
    touched_items = np.unique(np.concatenate([batch.items, batch.negative_items]))
    from repro.nn import social_regularization

    reference = float(
        (
            reference_loss
            + model.regularization(
                [model.user_embedding(touched_users), model.item_embedding(touched_items)]
            )
            * (1.0 / len(batch))
            + social_regularization(
                model.user_embedding.weight,
                model._social_normalized,
                weight=model.config.social_weight,
                user_indices=batch.initiators,
            )
            * (1.0 / len(batch))
        ).data
    )
    assert loss_restricted == pytest.approx(reference, rel=1e-12)
