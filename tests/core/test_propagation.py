"""In-view and cross-view propagation against hand-computed expectations."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import CrossViewPropagation, InViewPropagation
from repro.data import GroupBuyingBehavior, GroupBuyingDataset, SocialEdge
from repro.graph import build_hetero_graph


@pytest.fixture(scope="module")
def two_behavior_graph():
    """Two behaviors with known neighborhoods for manual verification."""
    behaviors = [
        GroupBuyingBehavior(initiator=0, item=0, participants=(1,), threshold=1),
        GroupBuyingBehavior(initiator=1, item=1, participants=(2,), threshold=1),
    ]
    dataset = GroupBuyingDataset(3, 2, behaviors, [SocialEdge(0, 1), SocialEdge(1, 2)])
    return build_hetero_graph(dataset)


class TestInViewPropagation:
    def test_output_dimension_is_concatenation_of_layers(self, two_behavior_graph):
        layer = InViewPropagation(two_behavior_graph, num_layers=2)
        users = Tensor(np.random.default_rng(0).normal(size=(3, 4)))
        items = Tensor(np.random.default_rng(1).normal(size=(2, 4)))
        out = layer(users, items)
        assert out.user_initiator.shape == (3, 12)
        assert out.item_participant.shape == (2, 12)

    def test_first_layer_matches_manual_mean(self, two_behavior_graph):
        layer = InViewPropagation(two_behavior_graph, num_layers=1)
        users = Tensor(np.arange(6, dtype=float).reshape(3, 2))
        items = Tensor(np.array([[10.0, 20.0], [30.0, 40.0]]))
        out = layer(users, items)
        # Initiator view: user 0 interacted (as initiator) only with item 0.
        layer_one = out.user_initiator.data[:, 2:]
        assert np.allclose(layer_one[0], [10.0, 20.0])
        # User 2 never initiated anything -> zero vector after propagation.
        assert np.allclose(layer_one[2], [0.0, 0.0])
        # Item 0 in initiator view saw only user 0.
        item_layer_one = out.item_initiator.data[:, 2:]
        assert np.allclose(item_layer_one[0], users.data[0])

    def test_participant_view_differs_from_initiator_view(self, two_behavior_graph):
        layer = InViewPropagation(two_behavior_graph, num_layers=1)
        users = Tensor(np.random.default_rng(2).normal(size=(3, 3)))
        items = Tensor(np.random.default_rng(3).normal(size=(2, 3)))
        out = layer(users, items)
        assert not np.allclose(out.user_initiator.data, out.user_participant.data)

    def test_share_user_roles_pools_views(self, two_behavior_graph):
        layer = InViewPropagation(two_behavior_graph, num_layers=2, share_user_roles=True)
        users = Tensor(np.random.default_rng(4).normal(size=(3, 3)))
        items = Tensor(np.random.default_rng(5).normal(size=(2, 3)))
        out = layer(users, items)
        assert np.allclose(out.user_initiator.data, out.user_participant.data)
        assert not np.allclose(out.item_initiator.data, out.item_participant.data)

    def test_share_item_roles_pools_items(self, two_behavior_graph):
        layer = InViewPropagation(two_behavior_graph, num_layers=1, share_item_roles=True)
        users = Tensor(np.random.default_rng(6).normal(size=(3, 3)))
        items = Tensor(np.random.default_rng(7).normal(size=(2, 3)))
        out = layer(users, items)
        assert np.allclose(out.item_initiator.data, out.item_participant.data)

    def test_requires_at_least_one_layer(self, two_behavior_graph):
        with pytest.raises(ValueError):
            InViewPropagation(two_behavior_graph, num_layers=0)


class TestCrossViewPropagation:
    def test_output_dimension_doubles(self, two_behavior_graph):
        in_view = InViewPropagation(two_behavior_graph, num_layers=1)
        cross = CrossViewPropagation(two_behavior_graph, feature_dim=6, rng=np.random.default_rng(8))
        users = Tensor(np.random.default_rng(9).normal(size=(3, 3)))
        items = Tensor(np.random.default_rng(10).normal(size=(2, 3)))
        out = cross(in_view(users, items))
        assert out.user_initiator.shape == (3, 12)
        assert out.item_participant.shape == (2, 12)

    def test_input_is_prefix_of_output(self, two_behavior_graph):
        in_view = InViewPropagation(two_behavior_graph, num_layers=1)
        cross = CrossViewPropagation(two_behavior_graph, feature_dim=6, rng=np.random.default_rng(11))
        users = Tensor(np.random.default_rng(12).normal(size=(3, 3)))
        items = Tensor(np.random.default_rng(13).normal(size=(2, 3)))
        stage_one = in_view(users, items)
        out = cross(stage_one)
        assert np.allclose(out.user_initiator.data[:, :6], stage_one.user_initiator.data)
        assert np.allclose(out.item_participant.data[:, :6], stage_one.item_participant.data)

    def test_gradients_reach_transforms(self, two_behavior_graph):
        in_view = InViewPropagation(two_behavior_graph, num_layers=1)
        cross = CrossViewPropagation(two_behavior_graph, feature_dim=6, rng=np.random.default_rng(14))
        users = Tensor(np.random.default_rng(15).normal(size=(3, 3)), requires_grad=True)
        items = Tensor(np.random.default_rng(16).normal(size=(2, 3)), requires_grad=True)
        out = cross(in_view(users, items))
        (out.user_initiator.sum() + out.item_participant.sum()).backward()
        assert cross.transform_vi_ui.weight.grad is not None
        assert users.grad is not None

    def test_role_pooling_flag(self, two_behavior_graph):
        in_view = InViewPropagation(two_behavior_graph, num_layers=1)
        cross = CrossViewPropagation(
            two_behavior_graph, feature_dim=6, share_user_roles=True, share_item_roles=True,
            rng=np.random.default_rng(17),
        )
        users = Tensor(np.random.default_rng(18).normal(size=(3, 3)))
        items = Tensor(np.random.default_rng(19).normal(size=(2, 3)))
        out = cross(in_view(users, items))
        # Only the newly generated halves are pooled.
        assert np.allclose(out.user_initiator.data[:, 6:], out.user_participant.data[:, 6:])
        assert np.allclose(out.item_initiator.data[:, 6:], out.item_participant.data[:, 6:])
