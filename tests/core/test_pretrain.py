"""Pre-training model and embedding transfer."""

import numpy as np
import pytest

from repro.core import GBGCN, GBGCNConfig, GBGCNPretrainModel, transfer_pretrained_embeddings
from repro.data import TrainingNegativeSampler
from repro.training import GroupBuyingBatchIterator


@pytest.fixture(scope="module")
def pretrain_model(small_split, small_graph):
    train = small_split.train
    return GBGCNPretrainModel(
        train.num_users, train.num_items, small_graph,
        config=GBGCNConfig(embedding_dim=8), rng=np.random.default_rng(0),
    )


class TestPretrainModel:
    def test_has_no_propagation_parameters(self, pretrain_model):
        names = [name for name, _ in pretrain_model.named_parameters()]
        assert all("transform" not in name for name in names)
        assert len(names) == 2

    def test_batch_loss_finite(self, pretrain_model, small_split):
        train = small_split.train
        sampler = TrainingNegativeSampler(train, seed=0)
        batch = next(iter(GroupBuyingBatchIterator(train, sampler, batch_size=32, seed=0)))
        loss = pretrain_model.batch_loss(batch)
        assert np.isfinite(loss.data)

    def test_rank_scores(self, pretrain_model):
        scores = pretrain_model.rank_scores(0, np.arange(5))
        assert scores.shape == (5,)

    def test_normalize_embeddings(self, pretrain_model):
        pretrain_model.normalize_embeddings()
        assert np.allclose(np.linalg.norm(pretrain_model.user_embedding.weight.data, axis=1), 1.0)
        assert np.allclose(np.linalg.norm(pretrain_model.item_embedding.weight.data, axis=1), 1.0)


class TestTransfer:
    def test_transfer_copies_raw_embeddings(self, small_split, small_graph, pretrain_model):
        train = small_split.train
        full = GBGCN(train.num_users, train.num_items, small_graph,
                     config=GBGCNConfig(embedding_dim=8), rng=np.random.default_rng(1))
        before = full.cross_view.transform_vi_ui.weight.data.copy()
        transfer_pretrained_embeddings(pretrain_model, full)
        assert np.allclose(full.user_embedding.weight.data, pretrain_model.user_embedding.weight.data)
        assert np.allclose(full.item_embedding.weight.data, pretrain_model.item_embedding.weight.data)
        # FC layers are untouched by the transfer.
        assert np.allclose(full.cross_view.transform_vi_ui.weight.data, before)

    def test_transfer_is_a_copy_not_a_view(self, small_split, small_graph, pretrain_model):
        train = small_split.train
        full = GBGCN(train.num_users, train.num_items, small_graph,
                     config=GBGCNConfig(embedding_dim=8), rng=np.random.default_rng(2))
        transfer_pretrained_embeddings(pretrain_model, full)
        full.user_embedding.weight.data[0, 0] = 123.0
        assert pretrain_model.user_embedding.weight.data[0, 0] != 123.0
