"""The double-pairwise fine-grained loss (Eq. 10-12)."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import DoublePairwiseLoss
from repro.training.batches import GroupBuyingBatch


def make_batch():
    """One successful behavior (row 0) and one failed behavior (row 1)."""
    return GroupBuyingBatch(
        initiators=np.array([0, 1]),
        items=np.array([0, 1]),
        negative_items=np.array([2, 3]),
        success=np.array([True, False]),
        participants=np.array([2, 3]),          # both belong to the successful row 0
        participant_segment=np.array([0, 0]),
        failed_friends=np.array([4, 5]),         # friends of the failed row 1
        failed_friend_segment=np.array([1, 1]),
    )


def scorer_from_table(table):
    """Build a score function from a {(user, item): score} dict."""
    def score(users, items):
        return Tensor(np.array([table[(int(u), int(i))] for u, i in zip(users, items)]))
    return score


def log_sigmoid(x):
    return float(np.log(1.0 / (1.0 + np.exp(-x))))


class TestDoublePairwiseLoss:
    def setup_method(self):
        self.table = {
            (0, 0): 2.0, (0, 2): -1.0,   # initiator of successful behavior
            (1, 1): 1.0, (1, 3): 0.5,    # initiator of failed behavior
            (2, 0): 1.5, (2, 2): 0.0,    # participants of successful behavior
            (3, 0): 0.5, (3, 2): 1.0,
            (4, 1): 0.2, (4, 3): 0.1,    # friends of failed initiator
            (5, 1): -0.3, (5, 3): 0.4,
        }

    def manual_loss(self, beta):
        value = 0.0
        # Initiator BPR terms of both behaviors.
        value += -log_sigmoid(2.0 - (-1.0))
        value += -log_sigmoid(1.0 - 0.5)
        # Participant terms of the successful behavior.
        value += -log_sigmoid(1.5 - 0.0)
        value += -log_sigmoid(0.5 - 1.0)
        # Reversed friend terms of the failed behavior.
        value += beta * (-log_sigmoid(0.1 - 0.2))
        value += beta * (-log_sigmoid(0.4 - (-0.3)))
        return value / 2  # mean over the two behaviors

    def test_matches_manual_computation(self):
        loss = DoublePairwiseLoss(beta=0.05)(make_batch(), scorer_from_table(self.table))
        assert np.isclose(float(loss.data), self.manual_loss(0.05), rtol=1e-8)

    def test_beta_zero_drops_friend_term(self):
        loss = DoublePairwiseLoss(beta=0.0)(make_batch(), scorer_from_table(self.table))
        assert np.isclose(float(loss.data), self.manual_loss(0.0), rtol=1e-8)

    def test_larger_beta_increases_loss_when_friends_prefer_item(self):
        table = dict(self.table)
        table[(4, 1)] = 5.0  # friend strongly likes the failed item -> penalized more
        small = DoublePairwiseLoss(beta=0.01)(make_batch(), scorer_from_table(table))
        large = DoublePairwiseLoss(beta=0.5)(make_batch(), scorer_from_table(table))
        assert float(large.data) > float(small.data)

    def test_negative_beta_rejected(self):
        with pytest.raises(ValueError):
            DoublePairwiseLoss(beta=-0.1)

    def test_empty_participants_and_friends(self):
        batch = GroupBuyingBatch(
            initiators=np.array([0]),
            items=np.array([0]),
            negative_items=np.array([2]),
            success=np.array([True]),
            participants=np.array([], dtype=np.int64),
            participant_segment=np.array([], dtype=np.int64),
            failed_friends=np.array([], dtype=np.int64),
            failed_friend_segment=np.array([], dtype=np.int64),
        )
        loss = DoublePairwiseLoss(beta=0.05)(batch, scorer_from_table(self.table))
        assert np.isclose(float(loss.data), -log_sigmoid(2.0 - (-1.0)), rtol=1e-8)

    def test_gradients_flow_through_score_function(self):
        scores = Tensor(np.linspace(-1.0, 1.0, 12), requires_grad=True)
        counter = {"next": 0}

        def score(users, items):
            start = counter["next"]
            counter["next"] += len(users)
            return scores[np.arange(start, start + len(users))]

        loss = DoublePairwiseLoss(beta=0.1)(make_batch(), score)
        loss.backward()
        assert scores.grad is not None
        assert np.any(scores.grad != 0)
