"""The role-weighted prediction function (Eq. 9)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.autograd import Tensor
from repro.autograd.sparse import row_normalize
from repro.core import RoleWeightedPredictor


@pytest.fixture
def setup():
    # 3 users: 0-1 friends, 2 isolated; 2 items; 2-d embeddings.
    social = row_normalize(sp.csr_matrix(np.array([[0, 1, 0], [1, 0, 0], [0, 0, 0]], dtype=float)))
    user_i = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
    item_i = np.array([[2.0, 0.0], [0.0, 2.0]])
    user_p = np.array([[0.5, 0.5], [1.0, 0.0], [0.0, 1.0]])
    item_p = np.array([[1.0, 1.0], [2.0, 2.0]])
    return social, user_i, item_i, user_p, item_p


class TestScoring:
    def test_alpha_zero_uses_only_initiator_view(self, setup):
        social, user_i, item_i, user_p, item_p = setup
        predictor = RoleWeightedPredictor(social, alpha=0.0)
        friend_avg = social @ user_p
        scores = predictor.score_candidates(0, np.array([0, 1]), user_i, item_i, friend_avg, item_p)
        assert np.allclose(scores, item_i @ user_i[0])

    def test_alpha_one_uses_only_friends(self, setup):
        social, user_i, item_i, user_p, item_p = setup
        predictor = RoleWeightedPredictor(social, alpha=1.0)
        friend_avg = social @ user_p
        scores = predictor.score_candidates(0, np.array([0, 1]), user_i, item_i, friend_avg, item_p)
        # User 0's only friend is user 1 whose participant embedding is [1, 0].
        assert np.allclose(scores, item_p @ user_p[1])

    def test_mixture_matches_manual_formula(self, setup):
        social, user_i, item_i, user_p, item_p = setup
        alpha = 0.6
        predictor = RoleWeightedPredictor(social, alpha=alpha)
        friend_avg = social @ user_p
        scores = predictor.score_candidates(1, np.array([0, 1]), user_i, item_i, friend_avg, item_p)
        expected = (1 - alpha) * item_i @ user_i[1] + alpha * item_p @ friend_avg[1]
        assert np.allclose(scores, expected)

    def test_isolated_user_friend_term_is_zero(self, setup):
        social, user_i, item_i, user_p, item_p = setup
        predictor = RoleWeightedPredictor(social, alpha=1.0)
        friend_avg = social @ user_p
        scores = predictor.score_candidates(2, np.array([0, 1]), user_i, item_i, friend_avg, item_p)
        assert np.allclose(scores, 0.0)

    def test_differentiable_scores_match_numpy_path(self, setup):
        social, user_i, item_i, user_p, item_p = setup
        predictor = RoleWeightedPredictor(social, alpha=0.3)
        friend_avg_tensor = predictor.friend_average(Tensor(user_p))
        users = np.array([0, 1, 2])
        items = np.array([1, 0, 1])
        tensor_scores = predictor.score_pairs(
            users, items, Tensor(user_i), Tensor(item_i), friend_avg_tensor, Tensor(item_p)
        )
        numpy_scores = [
            predictor.score_candidates(u, np.array([i]), user_i, item_i, social @ user_p, item_p)[0]
            for u, i in zip(users, items)
        ]
        assert np.allclose(tensor_scores.data, numpy_scores)

    def test_invalid_alpha_rejected(self, setup):
        social = setup[0]
        with pytest.raises(ValueError):
            RoleWeightedPredictor(social, alpha=1.5)
