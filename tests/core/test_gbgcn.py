"""The full GBGCN model."""

import numpy as np
import pytest

from repro.core import ABLATION_VARIANTS, GBGCN, GBGCNConfig, build_ablation_model
from repro.data import TrainingNegativeSampler
from repro.optim import Adam
from repro.training import GroupBuyingBatchIterator


@pytest.fixture(scope="module")
def model(small_split, small_graph):
    train = small_split.train
    return GBGCN(
        train.num_users,
        train.num_items,
        small_graph,
        config=GBGCNConfig(embedding_dim=8, num_layers=2),
        rng=np.random.default_rng(0),
    )


@pytest.fixture(scope="module")
def batch(small_split):
    train = small_split.train
    sampler = TrainingNegativeSampler(train, seed=0)
    iterator = GroupBuyingBatchIterator(train, sampler, batch_size=64, seed=0)
    return next(iter(iterator))


class TestConfig:
    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            GBGCNConfig(embedding_dim=0)
        with pytest.raises(ValueError):
            GBGCNConfig(num_layers=0)
        with pytest.raises(ValueError):
            GBGCNConfig(alpha=2.0)
        with pytest.raises(ValueError):
            GBGCNConfig(beta=-1.0)


class TestForward:
    def test_propagate_dimensions(self, model, small_split):
        embeddings = model.propagate()
        assert embeddings.user_initiator.shape == (small_split.train.num_users, model.final_dim)
        assert embeddings.item_participant.shape == (small_split.train.num_items, model.final_dim)

    def test_final_dim_formula(self, model):
        assert model.final_dim == 2 * (2 + 1) * 8

    def test_batch_loss_is_finite_scalar(self, model, batch):
        loss = model.batch_loss(batch)
        assert loss.data.shape == ()
        assert np.isfinite(loss.data)

    def test_training_step_reduces_loss(self, small_split, small_graph, batch):
        train = small_split.train
        model = GBGCN(train.num_users, train.num_items, small_graph,
                      config=GBGCNConfig(embedding_dim=8), rng=np.random.default_rng(1))
        optimizer = Adam(model.parameters(), lr=0.01)
        initial = float(model.batch_loss(batch).data)
        for _ in range(15):
            optimizer.zero_grad()
            loss = model.batch_loss(batch)
            loss.backward()
            optimizer.step()
        final = float(model.batch_loss(batch).data)
        assert final < initial

    def test_gradients_reach_raw_embeddings_and_fc(self, model, batch):
        model.zero_grad()
        model.batch_loss(batch).backward()
        assert model.user_embedding.weight.grad is not None
        assert model.item_embedding.weight.grad is not None
        assert model.cross_view.transform_ui_up.weight.grad is not None


class TestEvaluation:
    def test_rank_scores_shape(self, model, small_split):
        user = next(iter(small_split.test))
        scores = model.rank_scores(user, np.arange(10))
        assert scores.shape == (10,)
        assert np.isfinite(scores).all()

    def test_cache_is_used_and_invalidated(self, model):
        model.prepare_for_evaluation()
        assert model._eval_cache is not None
        model.invalidate_cache()
        assert model._eval_cache is None

    def test_final_embeddings_keys(self, model):
        embeddings = model.final_embeddings()
        assert set(embeddings) == {
            "user_initiator", "item_initiator", "user_participant", "item_participant",
        }


class TestAblation:
    def test_all_variants_build(self, small_split, small_graph):
        train = small_split.train
        for variant in ABLATION_VARIANTS:
            model = build_ablation_model(
                variant, train.num_users, train.num_items, small_graph,
                config=GBGCNConfig(embedding_dim=4), rng=np.random.default_rng(2),
            )
            assert isinstance(model, GBGCN)

    def test_variant_names(self, small_split, small_graph):
        train = small_split.train
        model = build_ablation_model(
            "Without User Roles", train.num_users, train.num_items, small_graph,
            config=GBGCNConfig(embedding_dim=4),
        )
        assert "w/o user roles" in model.name

    def test_unknown_variant_rejected(self, small_split, small_graph):
        with pytest.raises(ValueError):
            build_ablation_model("bogus", 10, 10, small_graph)

    def test_pooled_variant_has_equal_view_embeddings(self, small_split, small_graph):
        train = small_split.train
        model = build_ablation_model(
            "Without Item and User Roles", train.num_users, train.num_items, small_graph,
            config=GBGCNConfig(embedding_dim=4), rng=np.random.default_rng(3),
        )
        out = model.in_view_embeddings()
        # Raw embeddings (layer 0 block) are shared; the propagated blocks are pooled.
        assert np.allclose(out.user_initiator.data, out.user_participant.data)
        assert np.allclose(out.item_initiator.data, out.item_participant.data)
