"""Temp-orphan sweeping: live writers are never reaped (regression suite).

The atomic publish protocol writes ``.{artifact}.tmp-{pid}-{attempt}``
entries and sweeps crash debris on the next save.  The original sweep
reaped on **age alone**, which is wrong with multiple writers: a paused
or slow live writer (or one whose temp file carries another host's clock)
looks "stale" and gets its in-flight save deleted from under it.  The
fixed sweep requires *both* a dead owner PID and the age window
(:data:`repro.persist.TMP_SWEEP_MAX_AGE_SECONDS`).

``test_live_owner_vetoes_reaping`` is the regression: it fails on the
age-only implementation.  The ``procs``-marked test drives two real
writer processes at one path and checks nobody's work is swept.
"""

import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

import repro.persist.artifact as artifact_module
from repro.models import ModelSettings, build_model
from repro.persist import LAYOUT_DIR, load_model, save_model

pytestmark = pytest.mark.persist

SETTINGS = ModelSettings(embedding_dim=8)
TWO_HOURS_AGO = -2 * 3600.0


def _backdate(path: Path, offset_seconds: float = TWO_HOURS_AGO) -> None:
    stamp = time.time() + offset_seconds
    os.utime(path, (stamp, stamp))


class TestSweepRules:
    def test_live_owner_vetoes_reaping(self, small_split, tmp_path):
        """REGRESSION — fails on the age-only sweep.

        A temp file owned by a *live* process (here: this test process)
        must survive a concurrent save even when its mtime says it is
        hours old.
        """
        target = tmp_path / "m.npz"
        in_flight = tmp_path / f".m.npz.tmp-{os.getpid()}-0"
        in_flight.write_bytes(b"half-written save by a live, slow writer")
        _backdate(in_flight)

        save_model(build_model("MF", small_split.train, SETTINGS), target)

        assert in_flight.exists(), (
            "the sweep reaped a temp file whose writer is still alive; "
            "age alone must never justify reaping"
        )

    def test_dead_owner_old_orphan_is_reaped(self, small_split, tmp_path):
        probe = subprocess.Popen([sys.executable, "-c", "pass"])
        probe.wait()
        target = tmp_path / "m.npz"
        orphan = tmp_path / f".m.npz.tmp-{probe.pid}-0"
        orphan.write_bytes(b"debris from a crashed writer")
        _backdate(orphan)

        save_model(build_model("MF", small_split.train, SETTINGS), target)

        assert not orphan.exists(), "dead-owner debris past the age window must be swept"

    def test_dead_owner_fresh_orphan_survives_the_age_window(self, small_split, tmp_path):
        """Fresh debris is kept (PID recycling + post-crash inspection)."""
        probe = subprocess.Popen([sys.executable, "-c", "pass"])
        probe.wait()
        target = tmp_path / "m.npz"
        orphan = tmp_path / f".m.npz.tmp-{probe.pid}-0"
        orphan.write_bytes(b"debris from a writer that crashed seconds ago")

        save_model(build_model("MF", small_split.train, SETTINGS), target)
        assert orphan.exists()

        _backdate(orphan)
        save_model(build_model("MF", small_split.train, SETTINGS), target)
        assert not orphan.exists()

    def test_dir_layout_orphan_directories_are_swept(self, small_split, tmp_path):
        probe = subprocess.Popen([sys.executable, "-c", "pass"])
        probe.wait()
        target = tmp_path / "m.npyd"
        orphan = tmp_path / f".m.npyd.tmp-{probe.pid}-0"
        orphan.mkdir()
        (orphan / "state").mkdir()
        (orphan / "state" / "w.npy").write_bytes(b"partial member")
        _backdate(orphan)

        save_model(build_model("MF", small_split.train, SETTINGS), target, layout=LAYOUT_DIR)
        assert not orphan.exists()

    def test_foreign_temp_names_are_left_alone(self, small_split, tmp_path):
        """A temp entry with no parseable owner PID is never touched."""
        target = tmp_path / "m.npz"
        foreign = tmp_path / ".m.npz.tmp-from-another-tool"
        foreign.write_bytes(b"someone else's protocol")
        _backdate(foreign)

        save_model(build_model("MF", small_split.train, SETTINGS), target)
        assert foreign.exists()

    def test_age_window_is_configurable(self, small_split, tmp_path, monkeypatch):
        probe = subprocess.Popen([sys.executable, "-c", "pass"])
        probe.wait()
        target = tmp_path / "m.npz"
        orphan = tmp_path / f".m.npz.tmp-{probe.pid}-0"
        orphan.write_bytes(b"debris")
        _backdate(orphan, offset_seconds=-30.0)

        monkeypatch.setattr(artifact_module, "TMP_SWEEP_MAX_AGE_SECONDS", 5.0)
        save_model(build_model("MF", small_split.train, SETTINGS), target)
        assert not orphan.exists()


_WRITER_SCRIPT = """
import sys
import numpy as np
from repro.data import BeibeiLikeConfig, generate_dataset, leave_one_out_split
from repro.models import ModelSettings, build_model
from repro.persist import ArtifactError, save_model

target, seed, layout = sys.argv[1], int(sys.argv[2]), sys.argv[3]
# Must match the small_split fixture (tests/conftest.py): the parent
# loads the contended artifact against that dataset's schema.
split = leave_one_out_split(generate_dataset(BeibeiLikeConfig.small(seed=99)), seed=5)
succeeded = 0
for attempt in range(6):
    model = build_model("MF", split.train, ModelSettings(embedding_dim=8),
                        rng=np.random.default_rng(seed * 100 + attempt))
    try:
        save_model(model, target, layout=layout)
        succeeded += 1
    except ArtifactError:
        pass  # lost a publish race to the other writer; by design
print(succeeded)
sys.exit(0 if succeeded else 1)
"""


@pytest.mark.procs
@pytest.mark.parametrize("layout", ["npz", "dir"])
def test_two_processes_saving_one_path_never_reap_each_other(small_split, tmp_path, layout):
    """Two real writer processes race one artifact path, repeatedly.

    Afterwards: the artifact is valid and loadable (last writer won), and
    no temp debris is left behind — neither writer swept the other's
    in-flight save.
    """
    suffix = ".npz" if layout == "npz" else ".npyd"
    target = tmp_path / f"contended{suffix}"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    writers = [
        subprocess.Popen(
            [sys.executable, "-c", _WRITER_SCRIPT, str(target), str(seed), layout],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        for seed in (1, 2)
    ]
    for writer in writers:
        stdout, stderr = writer.communicate(timeout=300)
        assert writer.returncode == 0, f"writer failed:\n{stderr}"
        assert int(stdout.strip()) >= 1

    loaded = load_model(target, small_split.train)
    assert loaded.score_all_items(np.arange(4)).shape == (4, small_split.train.num_items)
    litter = [entry.name for entry in tmp_path.iterdir() if ".tmp-" in entry.name]
    assert litter == [], f"temp debris left behind: {litter}"
