"""Seeded property tests for the ``state_dict`` contract.

Invariants every registry model must hold for artifacts to be trustworthy:

* determinism — two builds with the same seed produce the same keys (in
  the same order) and the same array shapes/dtypes;
* layout — every state array is C-contiguous (what the npz writer and the
  batched scorers assume);
* isolation — ``state_dict`` snapshots and ``load_state_dict`` copies, so
  no parameter aliases the caller's arrays or another parameter.
"""

import numpy as np
import pytest

from repro.models import ALL_MODEL_NAMES, ModelSettings, build_model
from repro.models.base import EXTRA_STATE_PREFIX

pytestmark = pytest.mark.persist

SETTINGS = ModelSettings(embedding_dim=8, seed=42)

ALL_NAMES = ALL_MODEL_NAMES + ["GBGCN-pretrain"]


@pytest.mark.parametrize("name", ALL_NAMES)
def test_keys_stable_across_builds_with_same_seed(name, tiny_dataset):
    first = build_model(name, tiny_dataset, SETTINGS)
    second = build_model(name, tiny_dataset, SETTINGS)
    first_state = first.state_dict()
    second_state = second.state_dict()
    assert list(first_state) == list(second_state)
    for key in first_state:
        assert first_state[key].shape == second_state[key].shape, key
        assert first_state[key].dtype == second_state[key].dtype, key
        # Same seed → identical initialization, parameter for parameter.
        assert np.array_equal(first_state[key], second_state[key]), key


@pytest.mark.parametrize("name", ALL_NAMES)
def test_state_arrays_are_c_contiguous(name, tiny_dataset):
    model = build_model(name, tiny_dataset, SETTINGS)
    for key, value in model.state_dict().items():
        assert value.flags["C_CONTIGUOUS"], key


@pytest.mark.parametrize("name", ALL_NAMES)
def test_state_dict_is_a_snapshot(name, tiny_dataset):
    """Mutating the returned dict must not touch the live model."""
    model = build_model(name, tiny_dataset, SETTINGS)
    state = model.state_dict()
    for value in state.values():
        value.fill(123.0)
    fresh = model.state_dict()
    for key, value in fresh.items():
        assert not np.array_equal(value, np.full_like(value, 123.0)) or value.size == 0, key


@pytest.mark.parametrize("name", ALL_NAMES)
def test_no_aliasing_after_load_state_dict(name, tiny_dataset):
    source = build_model(name, tiny_dataset, SETTINGS)
    target = build_model(name, tiny_dataset, ModelSettings(embedding_dim=8, seed=7))
    state = source.state_dict()
    target.load_state_dict(state)

    # No parameter may share memory with the dict it was loaded from ...
    own = dict(target.named_parameters())
    for key, parameter in own.items():
        assert not np.shares_memory(parameter.data, state[key]), key
    # ... nor with any other parameter of the model.
    keys = list(own)
    for i, a in enumerate(keys):
        for b in keys[i + 1:]:
            assert not np.shares_memory(own[a].data, own[b].data), (a, b)

    # And the loaded values really are the source's values.
    for key, value in target.state_dict().items():
        assert np.array_equal(value, state[key]), key


@pytest.mark.parametrize("name", ["ItemPop", "ItemKNN"])
def test_extra_state_does_not_alias_after_load(name, tiny_dataset):
    """Mutating the loaded-from dict must not reach into the live model."""
    source = build_model(name, tiny_dataset, SETTINGS)
    target = build_model(name, tiny_dataset, SETTINGS)
    state = source.state_dict()
    target.load_state_dict(state)
    users = np.arange(tiny_dataset.num_users, dtype=np.int64)
    expected = target.score_all_items(users)
    for value in state.values():
        value.fill(0)
    assert np.array_equal(target.score_all_items(users), expected)


def test_itemknn_load_skips_similarity_refit(tiny_dataset, tmp_path):
    """An artifact load must restore the saved similarity, never refit it."""
    from repro.persist import load_model, save_model

    model = build_model("ItemKNN", tiny_dataset, SETTINGS)
    assert model._similarity is None  # fitting is lazy until first use
    path = tmp_path / "knn.npz"
    save_model(model, path)  # forces the fit so the artifact carries it

    loaded = load_model(path, tiny_dataset)
    assert loaded._similarity is not None  # supplied by the artifact ...
    fitted = model.similarity
    assert (loaded._similarity != fitted).nnz == 0  # ... and identical to a fit


def test_failed_param_load_leaves_model_untouched(tiny_dataset):
    """A shape-mismatched entry must not partially overwrite parameters."""
    model = build_model("MF", tiny_dataset, SETTINGS)
    before = model.state_dict()
    bad = build_model("MF", tiny_dataset, SETTINGS).state_dict()
    # Corrupt the alphabetically-last key so a naive in-order commit would
    # have already written the earlier parameters before noticing.
    last_key = sorted(k for k in bad if not k.startswith(EXTRA_STATE_PREFIX))[-1]
    bad = {k: (v * 7.0 if not k.startswith(EXTRA_STATE_PREFIX) else v) for k, v in bad.items()}
    bad[last_key] = np.zeros((1, 1))
    with pytest.raises(ValueError, match="shape mismatch"):
        model.load_state_dict(bad)
    after = model.state_dict()
    for key in before:
        assert np.array_equal(after[key], before[key]), key


def test_failed_extra_load_leaves_model_untouched(tiny_dataset, tmp_path):
    """load_state_into with a corrupted similarity must not mix matrices."""
    from repro.persist import ArtifactError, load_state_into, save_model

    source = build_model("ItemKNN", tiny_dataset, SETTINGS)
    path = tmp_path / "knn.npz"
    save_model(source, path)
    with np.load(path) as archive:
        arrays = {key: archive[key] for key in archive.files}
    key = "state/" + EXTRA_STATE_PREFIX + "similarity.indices"
    corrupted = arrays[key].copy()
    corrupted[0] = tiny_dataset.num_items + 5
    arrays[key] = corrupted
    np.savez(path, **arrays)

    target = build_model("ItemKNN", tiny_dataset, SETTINGS)
    users = np.arange(tiny_dataset.num_users, dtype=np.int64)
    expected = target.score_all_items(users)
    with pytest.raises(ArtifactError):
        load_state_into(target, path)
    assert np.array_equal(target.score_all_items(users), expected)


class _DualStateModel:
    """A model with BOTH parameters and extra state, to pin down the
    transactional ordering no current registry model exercises."""

    def __new__(cls, num_users, num_items):
        from repro.models.base import RecommenderModel
        from repro.nn import Parameter

        class Dual(RecommenderModel):
            def __init__(self):
                super().__init__(num_users, num_items)
                self.weight = Parameter(np.zeros((num_users, 2)))
                self.counts = np.zeros(num_items)

            def extra_state(self):
                return {"counts": self.counts}

            def load_extra_state(self, extra):
                counts = np.asarray(extra["counts"], dtype=np.float64)
                if counts.shape != (self.num_items,):
                    raise ValueError("bad counts shape")
                self.counts = counts

        return Dual()


def test_dual_state_load_is_all_or_nothing(tiny_dataset):
    model = _DualStateModel(tiny_dataset.num_users, tiny_dataset.num_items)
    good = model.state_dict()

    # Bad extra state: parameters must stay untouched.
    bad_extra = dict(good)
    bad_extra["weight"] = np.ones_like(good["weight"])
    bad_extra[EXTRA_STATE_PREFIX + "counts"] = np.zeros(tiny_dataset.num_items + 3)
    with pytest.raises(ValueError, match="counts"):
        model.load_state_dict(bad_extra)
    assert np.array_equal(model.weight.data, good["weight"])

    # Bad parameters: extra state must stay untouched.
    bad_params = dict(good)
    bad_params["weight"] = np.zeros((1, 1))
    bad_params[EXTRA_STATE_PREFIX + "counts"] = np.ones(tiny_dataset.num_items)
    with pytest.raises(ValueError, match="shape mismatch"):
        model.load_state_dict(bad_params)
    assert np.array_equal(model.counts, good[EXTRA_STATE_PREFIX + "counts"])


def test_extra_state_keys_are_prefixed(tiny_dataset):
    model = build_model("ItemKNN", tiny_dataset, SETTINGS)
    state = model.state_dict()
    extra_keys = [key for key in state if key.startswith(EXTRA_STATE_PREFIX)]
    assert extra_keys, "ItemKNN must serialize its similarity matrices as extra state"
    assert any("similarity" in key for key in extra_keys)


def test_extra_state_mismatch_raises(tiny_dataset):
    model = build_model("ItemKNN", tiny_dataset, SETTINGS)
    state = model.state_dict()
    state.pop(EXTRA_STATE_PREFIX + "similarity.data")
    with pytest.raises(KeyError, match="missing"):
        build_model("ItemKNN", tiny_dataset, SETTINGS).load_state_dict(state)


def test_strict_false_ignores_unknown_extra_state(tiny_dataset):
    model = build_model("MF", tiny_dataset, SETTINGS)
    state = model.state_dict()
    state[EXTRA_STATE_PREFIX + "bogus"] = np.ones(3)
    build_model("MF", tiny_dataset, SETTINGS).load_state_dict(state, strict=False)


def test_strict_false_skips_partial_extra_state(tiny_dataset):
    """A partial extra set is left unapplied, like missing parameters."""
    source = build_model("ItemKNN", tiny_dataset, SETTINGS)
    partial = {
        key: value
        for key, value in source.state_dict().items()
        if key == EXTRA_STATE_PREFIX + "similarity.data"
    }
    target = build_model("ItemKNN", tiny_dataset, SETTINGS)
    users = np.arange(tiny_dataset.num_users, dtype=np.int64)
    expected = target.score_all_items(users)
    target.load_state_dict(partial, strict=False)
    assert np.array_equal(target.score_all_items(users), expected)
