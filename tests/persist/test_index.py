"""Header-only artifact reads and directory scans (``repro.persist.index``)."""

import os

import numpy as np
import pytest

from repro.models import ModelSettings, build_model

pytestmark = pytest.mark.persist
from repro.persist import (
    ArtifactFormatError,
    artifact_content_token,
    copy_artifact,
    read_artifact_header,
    read_header,
    save_model,
    scan_artifact_directory,
)

SETTINGS = ModelSettings(embedding_dim=8)


@pytest.fixture()
def artifact_dir(small_split, tmp_path):
    directory = tmp_path / "catalog"
    for name in ("MF", "ItemPop"):
        save_model(build_model(name, small_split.train, SETTINGS), directory / f"{name.lower()}.npz")
    return directory


class TestReadArtifactHeader:
    def test_matches_full_header_read_plus_stat(self, artifact_dir):
        path = artifact_dir / "mf.npz"
        info = read_artifact_header(path)
        stat = os.stat(path)
        assert info.name == "mf"
        assert info.model_name == "MF"
        assert info.header.to_json() == read_header(path).to_json()
        assert info.size_bytes == stat.st_size
        assert info.mtime_ns == stat.st_mtime_ns

    def test_missing_file_raises_typed_error(self, tmp_path):
        with pytest.raises(ArtifactFormatError, match="vanished"):
            read_artifact_header(tmp_path / "nope.npz")

    def test_stat_differs_detects_replacement(self, small_split, artifact_dir):
        path = artifact_dir / "mf.npz"
        before = read_artifact_header(path)
        model = build_model("MF", small_split.train, SETTINGS)
        save_model(model, path)
        after = read_artifact_header(path)
        assert before.stat_differs(after)
        assert not after.stat_differs(after)


class TestContentToken:
    def test_token_is_stable_for_identical_bytes(self, artifact_dir, tmp_path):
        path = artifact_dir / "mf.npz"
        copy = tmp_path / "copy.npz"
        copy_artifact(path, copy)
        assert artifact_content_token(path) == artifact_content_token(copy)
        assert read_artifact_header(path).content_token == artifact_content_token(path)

    def test_token_changes_when_weights_change(self, small_split, artifact_dir):
        path = artifact_dir / "mf.npz"
        before = artifact_content_token(path)
        replacement = build_model("MF", small_split.train, SETTINGS, rng=np.random.default_rng(99))
        save_model(replacement, path)
        assert artifact_content_token(path) != before

    def test_differs_sees_pinned_mtime_replacement(self, small_split, artifact_dir):
        # The stat identity's blind spot: same size, same mtime_ns, new
        # weights.  `stat_differs` misses it; `differs` must not.
        path = artifact_dir / "mf.npz"
        before = read_artifact_header(path)
        stat = os.stat(path)
        replacement = build_model("MF", small_split.train, SETTINGS, rng=np.random.default_rng(99))
        save_model(replacement, path)
        os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns))
        after = read_artifact_header(path)
        assert after.size_bytes == before.size_bytes
        assert after.mtime_ns == before.mtime_ns
        assert not before.stat_differs(after)
        assert before.differs(after)

    def test_unreadable_file_raises_typed_error(self, tmp_path):
        with pytest.raises(ArtifactFormatError, match="vanished"):
            artifact_content_token(tmp_path / "gone.npz")
        (tmp_path / "junk.npz").write_bytes(b"zzz")
        with pytest.raises(ArtifactFormatError, match="not a readable"):
            artifact_content_token(tmp_path / "junk.npz")


class TestScanArtifactDirectory:
    def test_indexes_every_artifact(self, artifact_dir):
        scan = scan_artifact_directory(artifact_dir)
        assert sorted(scan.entries) == ["itempop", "mf"]
        assert scan.entries["itempop"].model_name == "ItemPop"
        assert scan.failures == {}

    def test_garbage_file_lands_in_failures(self, artifact_dir):
        (artifact_dir / "broken.npz").write_bytes(b"not an npz at all")
        scan = scan_artifact_directory(artifact_dir)
        assert sorted(scan.entries) == ["itempop", "mf"]
        assert list(scan.failures) == ["broken.npz"]
        assert "broken.npz" in scan.failures["broken.npz"]

    def test_strict_mode_raises_on_first_failure(self, artifact_dir):
        (artifact_dir / "broken.npz").write_bytes(b"not an npz at all")
        with pytest.raises(ArtifactFormatError):
            scan_artifact_directory(artifact_dir, strict=True)

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(ArtifactFormatError, match="does not exist"):
            scan_artifact_directory(tmp_path / "absent")

    def test_colliding_stems_are_a_hard_error(self, artifact_dir):
        # "mf.npz" and a valid copy "mf.backup" both have stem "mf": under a
        # pattern matching both, the catalog name would be ambiguous.
        source = artifact_dir / "mf.npz"
        (artifact_dir / "mf.backup").write_bytes(source.read_bytes())
        with pytest.raises(ArtifactFormatError, match="ambiguous"):
            scan_artifact_directory(artifact_dir, pattern="mf.*")

    def test_non_matching_files_are_ignored(self, artifact_dir):
        (artifact_dir / "README.txt").write_text("not an artifact")
        scan = scan_artifact_directory(artifact_dir)
        assert sorted(scan.entries) == ["itempop", "mf"]
        assert scan.failures == {}

    def test_file_deleted_between_listing_and_read_degrades_to_failure(
        self, artifact_dir, monkeypatch
    ):
        # TOCTOU: exactly the race a background rescan thread hits when a
        # publisher deletes/renames between the directory listing and the
        # header read.  Must land in `failures` with a diagnosable reason,
        # never propagate FileNotFoundError out of the scan.
        import repro.persist.index as index_module

        real_read = index_module.read_artifact_header

        def delete_then_read(path):
            if path.name == "mf.npz":
                os.unlink(path)
            return real_read(path)

        monkeypatch.setattr(index_module, "read_artifact_header", delete_then_read)
        scan = scan_artifact_directory(artifact_dir)
        assert sorted(scan.entries) == ["itempop"]
        assert "vanished" in scan.failures["mf.npz"]


class TestCopyArtifact:
    def test_byte_identical_replication(self, artifact_dir, tmp_path):
        destination = tmp_path / "published" / "mf.npz"
        copy_artifact(artifact_dir / "mf.npz", destination)
        assert destination.read_bytes() == (artifact_dir / "mf.npz").read_bytes()
        assert read_artifact_header(destination).model_name == "MF"
        # No temp files leak next to the destination.
        assert [p.name for p in destination.parent.iterdir()] == ["mf.npz"]

    def test_copy_onto_itself_is_a_noop(self, artifact_dir):
        path = artifact_dir / "mf.npz"
        before = path.read_bytes()
        copy_artifact(path, path)
        assert path.read_bytes() == before

    def test_missing_source_raises_typed_error(self, tmp_path):
        with pytest.raises(ArtifactFormatError, match="does not exist"):
            copy_artifact(tmp_path / "absent.npz", tmp_path / "out.npz")
