"""The v2 ``layout="dir"`` artifact: mmap parity, migration, mixed scans.

The npz suite (``test_artifact_roundtrip.py``) proves save → load → score
bitwise parity for the v1 archive layout; this suite proves the same
guarantee for the v2 directory layout — *through the mmap path that the
multi-process serving tier depends on* — plus the bridges between the two:

* every servable model saved with ``layout="dir"`` loads (memory-mapped)
  and scores bit-identically to the in-memory model;
* mmap-loaded parameters are read-only views over the on-disk files, not
  private copies (the whole point of the layout: N worker processes share
  one page-cache copy);
* ``migrate_artifact`` converts either direction without changing a bit
  of the state;
* ``scan_artifact_directory`` indexes mixed npz/dir fleets, and the
  content token notices a republished directory artifact even when the
  stat identity is pinned.
"""

import numpy as np
import pytest

from repro.models import ModelSettings, build_model
from repro.models.registry import SERVABLE_MODEL_NAMES
from repro.persist import (
    DIR_FORMAT_VERSION,
    DIR_HEADER_FILENAME,
    LAYOUT_DIR,
    LAYOUT_NPZ,
    NPZ_FORMAT_VERSION,
    ArtifactError,
    ArtifactLayoutError,
    artifact_layout,
    copy_artifact,
    load_model,
    migrate_artifact,
    read_header,
    read_state_dict,
    save_model,
)
from repro.persist.index import (
    artifact_content_token,
    artifact_stat,
    read_artifact_header,
    scan_artifact_directory,
)

pytestmark = pytest.mark.persist

SETTINGS = ModelSettings(embedding_dim=8)


def scoring_users(dataset) -> np.ndarray:
    return np.arange(min(24, dataset.num_users), dtype=np.int64)


class TestDirLayoutParity:
    @pytest.mark.parametrize("name", SERVABLE_MODEL_NAMES)
    def test_mmap_load_scores_bitwise_identically(self, name, small_split, tmp_path):
        train = small_split.train
        model = build_model(name, train, SETTINGS)
        model.eval()
        users = scoring_users(train)
        expected = model.score_all_items(users)

        path = tmp_path / "model.npyd"
        save_model(model, path, layout=LAYOUT_DIR)
        loaded = load_model(path, train)  # mmap is the default for dirs

        assert type(loaded) is type(model)
        got = loaded.score_all_items(users)
        assert got.dtype == expected.dtype
        assert got.tobytes() == expected.tobytes()

    @pytest.mark.parametrize("name", SERVABLE_MODEL_NAMES)
    def test_state_dict_matches_npz_bit_for_bit(self, name, small_split, tmp_path):
        train = small_split.train
        model = build_model(name, train, SETTINGS)
        save_model(model, tmp_path / "m.npz", layout=LAYOUT_NPZ)
        save_model(model, tmp_path / "m.npyd", layout=LAYOUT_DIR)
        _, npz_state = read_state_dict(tmp_path / "m.npz")
        _, dir_state = read_state_dict(tmp_path / "m.npyd")
        assert sorted(npz_state) == sorted(dir_state)
        for key, value in npz_state.items():
            assert dir_state[key].dtype == value.dtype
            assert dir_state[key].tobytes() == value.tobytes()

    def test_header_versions_by_layout(self, small_split, tmp_path):
        model = build_model("MF", small_split.train, SETTINGS)
        save_model(model, tmp_path / "m.npz")
        save_model(model, tmp_path / "m.npyd", layout=LAYOUT_DIR)
        assert read_header(tmp_path / "m.npz").format_version == NPZ_FORMAT_VERSION
        assert read_header(tmp_path / "m.npyd").format_version == DIR_FORMAT_VERSION
        assert artifact_layout(tmp_path / "m.npz") == LAYOUT_NPZ
        assert artifact_layout(tmp_path / "m.npyd") == LAYOUT_DIR

    def test_unknown_layout_rejected_at_save(self, small_split, tmp_path):
        model = build_model("MF", small_split.train, SETTINGS)
        with pytest.raises(ArtifactLayoutError, match="zip"):
            save_model(model, tmp_path / "m.x", layout="zip")


class TestMmapSemantics:
    def test_mmap_parameters_are_readonly_views_of_the_files(self, small_split, tmp_path):
        path = tmp_path / "m.npyd"
        save_model(build_model("MF", small_split.train, SETTINGS), path, layout=LAYOUT_DIR)
        loaded = load_model(path, small_split.train)
        state = loaded.state_dict()
        assert state, "model exposes no state"
        for key, value in loaded.named_parameters():
            weight = value.data
            assert not weight.flags.writeable, f"{key} is writable; expected an mmap view"
            assert weight.base is not None, f"{key} owns its buffer; expected an mmap view"

    def test_mmap_false_loads_private_writable_copies(self, small_split, tmp_path):
        path = tmp_path / "m.npyd"
        save_model(build_model("MF", small_split.train, SETTINGS), path, layout=LAYOUT_DIR)
        loaded = load_model(path, small_split.train, mmap=False)
        for _, value in loaded.named_parameters():
            assert value.data.flags.writeable

    def test_mmap_true_on_npz_points_at_migration(self, small_split, tmp_path):
        path = tmp_path / "m.npz"
        save_model(build_model("MF", small_split.train, SETTINGS), path)
        with pytest.raises(ArtifactLayoutError, match="migrate_artifact"):
            load_model(path, small_split.train, mmap=True)


class TestMigration:
    @pytest.mark.parametrize("name", SERVABLE_MODEL_NAMES)
    def test_npz_to_dir_and_back_is_bitwise_lossless(self, name, small_split, tmp_path):
        train = small_split.train
        model = build_model(name, train, SETTINGS)
        model.eval()
        users = scoring_users(train)
        expected = model.score_all_items(users)

        original = tmp_path / "m.npz"
        save_model(model, original)
        as_dir = migrate_artifact(original, to_layout=LAYOUT_DIR)
        assert as_dir == tmp_path / "m.npyd"
        assert read_header(as_dir).format_version == DIR_FORMAT_VERSION
        assert load_model(as_dir, train).score_all_items(users).tobytes() == expected.tobytes()

        back = migrate_artifact(as_dir, to_layout=LAYOUT_NPZ, destination=tmp_path / "back.npz")
        _, original_state = read_state_dict(original)
        _, back_state = read_state_dict(back)
        assert sorted(original_state) == sorted(back_state)
        for key, value in original_state.items():
            assert back_state[key].tobytes() == value.tobytes()

    def test_migrate_onto_same_layout_is_rejected(self, small_split, tmp_path):
        path = tmp_path / "m.npz"
        save_model(build_model("MF", small_split.train, SETTINGS), path)
        with pytest.raises(ArtifactLayoutError):
            migrate_artifact(path, to_layout=LAYOUT_NPZ)


class TestMixedFleet:
    def test_scan_indexes_both_layouts(self, small_split, tmp_path):
        train = small_split.train
        save_model(build_model("MF", train, SETTINGS), tmp_path / "mf.npz")
        save_model(build_model("ItemPop", train, SETTINGS), tmp_path / "pop.npyd", layout=LAYOUT_DIR)
        (tmp_path / "README.txt").write_text("not an artifact")
        entries = scan_artifact_directory(tmp_path).entries
        assert sorted(entries) == ["mf", "pop"]
        assert entries["mf"].header.model_name == "MF"
        assert entries["pop"].header.model_name == "ItemPop"

    def test_same_stem_in_both_layouts_is_ambiguous(self, small_split, tmp_path):
        model = build_model("MF", small_split.train, SETTINGS)
        save_model(model, tmp_path / "mf.npz")
        save_model(model, tmp_path / "mf.npyd", layout=LAYOUT_DIR)
        with pytest.raises(ArtifactError, match="ambiguous"):
            scan_artifact_directory(tmp_path)

    def test_dir_content_token_sees_republish_with_pinned_stat(self, small_split, tmp_path):
        """The hot-swap detector for dirs: same header.json mtime, new bits."""
        train = small_split.train
        path = tmp_path / "m.npyd"
        save_model(build_model("MF", train, SETTINGS), path, layout=LAYOUT_DIR)
        before_stat = artifact_stat(path)
        before_token = artifact_content_token(path)

        import os

        replacement = build_model("MF", train, SETTINGS, rng=np.random.default_rng(7))
        save_model(replacement, path, layout=LAYOUT_DIR)
        os.utime(path / DIR_HEADER_FILENAME, ns=(before_stat.st_atime_ns, before_stat.st_mtime_ns))

        pinned = artifact_stat(path)
        assert pinned.st_mtime_ns == before_stat.st_mtime_ns
        assert artifact_content_token(path) != before_token
        assert read_artifact_header(path).content_token != before_token

    def test_copy_artifact_copies_directories_atomically(self, small_split, tmp_path):
        train = small_split.train
        model = build_model("MF", train, SETTINGS)
        model.eval()
        users = scoring_users(train)
        expected = model.score_all_items(users)
        source = tmp_path / "src.npyd"
        save_model(model, source, layout=LAYOUT_DIR)
        destination = tmp_path / "fleet" / "dst.npyd"
        copy_artifact(source, destination)
        got = load_model(destination, train).score_all_items(users)
        assert got.tobytes() == expected.tobytes()
