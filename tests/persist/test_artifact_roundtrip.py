"""Registry-wide conformance: save → load → score with bitwise parity.

One parametrized suite over every name in ``ALL_MODEL_NAMES`` (plus the
pre-training model) proving the artifact layer's core guarantee: a model
loaded from disk scores every (user, item) pair with *exactly* the bits of
the model that was saved — embeddings, sparse similarity matrices,
popularity counts and all.  A second suite proves the checkpoint-resume
path: train, checkpoint mid-run, reload in a "fresh process" and get the
identical model back.
"""

import numpy as np
import pytest

from repro.models import ALL_MODEL_NAMES, ModelSettings, build_model
from repro.optim import Adam
from repro.persist import (
    NPZ_FORMAT_VERSION,
    load_model,
    load_state_into,
    read_header,
    read_state_dict,
    save_model,
)
from repro.training import ModelCheckpoint, Trainer, build_batch_iterator

pytestmark = pytest.mark.persist

SETTINGS = ModelSettings(embedding_dim=8)


def scoring_users(dataset) -> np.ndarray:
    return np.arange(min(24, dataset.num_users), dtype=np.int64)


class TestSaveLoadScoreParity:
    @pytest.mark.parametrize("name", ALL_MODEL_NAMES + ["GBGCN-pretrain"])
    def test_score_all_items_bitwise_parity(self, name, small_split, tmp_path):
        train = small_split.train
        model = build_model(name, train, SETTINGS)
        model.eval()
        users = scoring_users(train)
        expected = model.score_all_items(users)

        path = tmp_path / "model.npz"
        save_model(model, path)
        loaded = load_model(path, train)

        assert type(loaded) is type(model)
        got = loaded.score_all_items(users)
        assert got.dtype == expected.dtype
        assert got.tobytes() == expected.tobytes()

    @pytest.mark.parametrize("name", ALL_MODEL_NAMES)
    def test_header_is_self_describing(self, name, small_split, tmp_path):
        train = small_split.train
        model = build_model(name, train, SETTINGS)
        path = tmp_path / "model.npz"
        save_model(model, path)
        header = read_header(path)
        # npz artifacts still carry the v1 stamp (the layout is unchanged,
        # so v1 readers keep reading them); only ``layout="dir"`` is v2.
        assert header.format_version == NPZ_FORMAT_VERSION
        assert header.model_name == name
        assert header.settings == SETTINGS.to_dict()
        assert header.schema["num_users"] == train.num_users
        assert header.schema["num_items"] == train.num_items
        assert sorted(header.state_keys) == sorted(model.state_dict())

    def test_directly_built_gbgcn_roundtrips_via_config(self, small_split, tmp_path):
        """A GBGCN constructed by hand (no registry) rebuilds from its config."""
        from repro.core import GBGCN, GBGCNConfig
        from repro.graph import build_hetero_graph

        train = small_split.train
        config = GBGCNConfig(embedding_dim=8, num_layers=1, alpha=0.4, beta=0.1)
        model = GBGCN(
            train.num_users,
            train.num_items,
            build_hetero_graph(train),
            config=config,
            rng=np.random.default_rng(3),
        )
        model.eval()
        users = scoring_users(train)
        expected = model.score_all_items(users)

        path = tmp_path / "gbgcn.npz"
        save_model(model, path, dataset=train)
        loaded = load_model(path, train)
        assert loaded.config == config
        assert loaded.score_all_items(users).tobytes() == expected.tobytes()

    def test_recorded_gbgcn_config_wins_over_settings(self, small_split, tmp_path):
        """A hand-built GBGCN saved alongside generic settings must rebuild
        from its true config, not from the settings-derived one."""
        from repro.core import GBGCN, GBGCNConfig
        from repro.graph import build_hetero_graph

        train = small_split.train
        config = GBGCNConfig(embedding_dim=8, num_layers=1, alpha=0.4, beta=0.1)
        model = GBGCN(
            train.num_users,
            train.num_items,
            build_hetero_graph(train),
            config=config,
            rng=np.random.default_rng(3),
        )
        model.eval()
        users = scoring_users(train)
        expected = model.score_all_items(users)

        path = tmp_path / "gbgcn.npz"
        # Explicit settings whose derived config (alpha=0.6, 2 layers, ...)
        # disagrees with the model's actual config.
        save_model(model, path, dataset=train, settings=SETTINGS, model_name="GBGCN")
        loaded = load_model(path, train)
        assert loaded.config == config
        assert loaded.score_all_items(users).tobytes() == expected.tobytes()

    def test_loaded_gbgcn_can_be_resaved_and_reloaded(self, small_split, tmp_path):
        """The config rebuild path rebinds identity, so load→save→load works."""
        from repro.core import GBGCN, GBGCNConfig
        from repro.graph import build_hetero_graph

        train = small_split.train
        model = GBGCN(
            train.num_users,
            train.num_items,
            build_hetero_graph(train),
            config=GBGCNConfig(embedding_dim=8),
            rng=np.random.default_rng(3),
        )
        model.eval()
        users = scoring_users(train)
        expected = model.score_all_items(users)

        first = tmp_path / "first.npz"
        save_model(model, first, dataset=train)
        loaded = load_model(first, train)
        second = tmp_path / "second.npz"
        save_model(loaded, second)  # no dataset arg: identity must be bound
        again = load_model(second, train)
        assert read_header(second).schema == read_header(first).schema
        assert again.score_all_items(users).tobytes() == expected.tobytes()

    def test_load_state_into_prebuilt_model(self, small_split, tmp_path):
        train = small_split.train
        model = build_model("MF", train, SETTINGS)
        path = tmp_path / "mf.npz"
        save_model(model, path)

        other = build_model("MF", train, ModelSettings(embedding_dim=8, seed=7))
        users = scoring_users(train)
        assert not np.array_equal(other.score_all_items(users), model.score_all_items(users))
        load_state_into(other, path, dataset=train)
        assert np.array_equal(other.score_all_items(users), model.score_all_items(users))


class TestCheckpointResumeParity:
    @pytest.mark.parametrize("name", ["MF", "GBGCN", "SIGR", "NGCF"])
    def test_two_epoch_checkpoint_reloads_identically(self, name, small_split, tmp_path):
        train = small_split.train
        model = build_model(name, train, SETTINGS)
        iterator = build_batch_iterator(model, train, batch_size=256, seed=0)
        checkpoint = ModelCheckpoint(tmp_path / "ckpt.npz", save_best_only=False)
        trainer = Trainer(
            model, Adam(model.parameters(), lr=0.01), iterator, evaluator=None, callbacks=[checkpoint]
        )
        trainer.fit(2)
        assert checkpoint.num_saves == 2

        model.eval()
        users = scoring_users(train)
        expected = model.score_all_items(users)

        resumed = load_model(tmp_path / "ckpt.npz", train)
        assert resumed.score_all_items(users).tobytes() == expected.tobytes()

    def test_restore_best_from_checkpoint_in_fresh_process(self, small_split, small_evaluator, tmp_path):
        train = small_split.train
        model = build_model("MF", train, SETTINGS)
        iterator = build_batch_iterator(model, train, batch_size=256, seed=0)
        checkpoint = ModelCheckpoint(tmp_path / "best.npz", save_best_only=True)
        trainer = Trainer(
            model,
            Adam(model.parameters(), lr=0.01),
            iterator,
            evaluator=small_evaluator,
            selection_metric="Recall@10",
            callbacks=[checkpoint],
        )
        trainer.fit(2)
        assert checkpoint.num_saves >= 1
        users = scoring_users(train)
        best_scores = model.score_all_items(users)

        # Simulate a fresh process: a trainer with no in-memory best state
        # restores the best weights from the checkpoint's artifact when the
        # path is given explicitly.
        fresh_model = build_model("MF", train, ModelSettings(embedding_dim=8, seed=11))
        fresh_trainer = Trainer(fresh_model, Adam(fresh_model.parameters(), lr=0.01), iterator)
        assert not np.array_equal(fresh_model.score_all_items(users), best_scores)
        fresh_trainer.restore_best(checkpoint_path=checkpoint.path)
        assert np.array_equal(fresh_model.score_all_items(users), best_scores)

    def test_end_of_fit_restore_never_loads_stale_artifact(self, small_split, tmp_path):
        """fit() without validation must keep its trained weights even when a
        best-only checkpoint from an earlier run sits on the callback."""
        train = small_split.train
        stale_model = build_model("MF", train, ModelSettings(embedding_dim=8, seed=3))
        checkpoint = ModelCheckpoint(tmp_path / "stale.npz", save_best_only=True)
        save_model(stale_model, checkpoint.path)
        checkpoint.num_saves = 1

        model = build_model("MF", train, SETTINGS)
        iterator = build_batch_iterator(model, train, batch_size=256, seed=0)
        trainer = Trainer(
            model, Adam(model.parameters(), lr=0.01), iterator, evaluator=None, callbacks=[checkpoint]
        )
        trainer.fit(2)
        users = scoring_users(train)
        stale_model.eval()
        assert not np.array_equal(model.score_all_items(users), stale_model.score_all_items(users))

    def test_explicit_checkpoint_path_wins_over_in_memory_state(
        self, small_split, small_evaluator, tmp_path
    ):
        train = small_split.train
        other = build_model("MF", train, ModelSettings(embedding_dim=8, seed=9))
        other_path = tmp_path / "other.npz"
        save_model(other, other_path)
        users = scoring_users(train)
        other.eval()
        other_scores = other.score_all_items(users)

        model = build_model("MF", train, SETTINGS)
        iterator = build_batch_iterator(model, train, batch_size=256, seed=0)
        trainer = Trainer(
            model, Adam(model.parameters(), lr=0.01), iterator, evaluator=small_evaluator
        )
        trainer.fit(2)  # populates the in-memory best state
        trainer.restore_best(checkpoint_path=other_path, dataset=train)
        assert np.array_equal(model.score_all_items(users), other_scores)

    def test_restore_best_from_explicit_path(self, small_split, tmp_path):
        train = small_split.train
        model = build_model("MF", train, SETTINGS)
        path = tmp_path / "mf.npz"
        save_model(model, path)
        users = scoring_users(train)
        expected = model.score_all_items(users)

        other = build_model("MF", train, ModelSettings(embedding_dim=8, seed=5))
        trainer = Trainer(other, Adam(other.parameters(), lr=0.01), batch_iterator=[])
        trainer.restore_best(checkpoint_path=path)
        assert np.array_equal(other.score_all_items(users), expected)


class TestServingFromArtifact:
    def test_embedding_store_cold_start(self, small_split, tmp_path):
        from repro.serving import EmbeddingStore, TopKRecommender

        train = small_split.train
        model = build_model("GBGCN", train, SETTINGS)
        warm = EmbeddingStore(model)
        warm.refresh()
        users = scoring_users(train)
        expected = warm.score_all_items(users)

        path = tmp_path / "gbgcn.npz"
        save_model(model, path)
        cold = EmbeddingStore.from_artifact(path, train)
        assert cold.is_fresh and cold.version == 1
        assert cold.score_all_items(users).tobytes() == expected.tobytes()

        warm_top = TopKRecommender(warm, k=5, dataset=small_split.full).recommend(users)
        cold_top = TopKRecommender(cold, k=5, dataset=small_split.full).recommend(users)
        assert np.array_equal(warm_top.items, cold_top.items)

    def test_state_dict_readable_without_dataset(self, small_split, tmp_path):
        train = small_split.train
        model = build_model("MF", train, SETTINGS)
        path = tmp_path / "mf.npz"
        save_model(model, path)
        header, state = read_state_dict(path)
        assert header.model_name == "MF"
        assert set(state) == set(model.state_dict())
        for key, value in model.state_dict().items():
            assert np.array_equal(state[key], value)
