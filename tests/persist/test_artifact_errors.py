"""Negative paths: every broken-artifact scenario fails loudly and typed.

Corruption, truncated headers, schema mismatches and future format
versions must each raise the matching :class:`ArtifactError` subclass with
an actionable message — never return a half-loaded model.
"""

import json

import numpy as np
import pytest

from repro.models import ModelSettings, build_model
from repro.persist import (
    ArtifactError,
    ArtifactFormatError,
    ArtifactVersionError,
    SchemaMismatchError,
    load_model,
    read_header,
    read_state_dict,
    save_model,
)
from repro.persist.artifact import FORMAT_VERSION, _HEADER_KEY, _STATE_PREFIX

pytestmark = pytest.mark.persist

SETTINGS = ModelSettings(embedding_dim=8)


@pytest.fixture()
def artifact(small_split, tmp_path):
    model = build_model("MF", small_split.train, SETTINGS)
    path = tmp_path / "mf.npz"
    save_model(model, path)
    return path


def rewrite_header(path, mutate):
    """Rewrite an artifact with its JSON header transformed by ``mutate``."""
    with np.load(path) as archive:
        arrays = {key: archive[key] for key in archive.files}
    header_text = bytes(arrays[_HEADER_KEY]).decode("utf-8")
    arrays[_HEADER_KEY] = np.frombuffer(mutate(header_text).encode("utf-8"), dtype=np.uint8)
    np.savez(path, **arrays)


class TestCorruption:
    def test_garbage_bytes_raise_format_error(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"\x00\x01definitely not a zip archive")
        with pytest.raises(ArtifactFormatError, match="not a readable npz"):
            read_header(path)

    def test_raw_npy_file_raises_format_error(self, tmp_path):
        path = tmp_path / "weights.npz"  # npy content behind an npz name
        with path.open("wb") as handle:
            np.save(handle, np.ones(3))
        with pytest.raises(ArtifactFormatError, match="npy"):
            read_header(path)

    def test_missing_file_raises_format_error(self, tmp_path):
        with pytest.raises(ArtifactFormatError, match="does not exist"):
            read_header(tmp_path / "nope.npz")

    def test_foreign_npz_raises_format_error(self, small_split, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, weights=np.ones(3))
        with pytest.raises(ArtifactFormatError, match="not written by repro.persist"):
            load_model(path, small_split.train)

    def test_foreign_npz_with_string_header_raises_format_error(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, __header__=np.array("hello world"))
        with pytest.raises(ArtifactFormatError, match="unreadable"):
            read_header(path)

    def test_truncated_json_header_raises_format_error(self, artifact):
        rewrite_header(artifact, lambda text: text[: len(text) // 2])
        with pytest.raises(ArtifactFormatError, match="not valid JSON"):
            read_header(artifact)

    def test_non_dict_json_header_raises_format_error(self, artifact):
        rewrite_header(artifact, lambda text: "[1, 2, 3]")
        with pytest.raises(ArtifactFormatError, match="JSON object"):
            read_header(artifact)

    def test_header_wrong_format_name_raises(self, artifact):
        def mutate(text):
            payload = json.loads(text)
            payload["format"] = "somebody-elses-format"
            return json.dumps(payload)

        rewrite_header(artifact, mutate)
        with pytest.raises(ArtifactFormatError, match="somebody-elses-format"):
            read_header(artifact)

    def test_bit_flipped_csr_indices_fail_loudly(self, small_split, tmp_path):
        """Out-of-bounds index arrays in extra state must not load silently."""
        model = build_model("ItemKNN", small_split.train, SETTINGS)
        path = tmp_path / "knn.npz"
        save_model(model, path)
        with np.load(path) as archive:
            arrays = {key: archive[key] for key in archive.files}
        key = _STATE_PREFIX + "__extra__/similarity.indices"
        corrupted = arrays[key].copy()
        corrupted[0] = small_split.train.num_items + 100  # column out of range
        arrays[key] = corrupted
        np.savez(path, **arrays)
        with pytest.raises(ArtifactFormatError, match="similarity"):
            load_model(path, small_split.train)

    def test_float_typed_csr_indices_fail_loudly(self, small_split, tmp_path):
        """Float index arrays would be silently truncated by scipy."""
        model = build_model("ItemKNN", small_split.train, SETTINGS)
        path = tmp_path / "knn.npz"
        save_model(model, path)
        with np.load(path) as archive:
            arrays = {key: archive[key] for key in archive.files}
        key = _STATE_PREFIX + "__extra__/similarity.indices"
        arrays[key] = arrays[key].astype(np.float64) + 0.7
        np.savez(path, **arrays)
        with pytest.raises(ArtifactFormatError, match="integer-typed"):
            load_model(path, small_split.train)

    def test_missing_state_arrays_raise_format_error(self, artifact):
        with np.load(artifact) as archive:
            arrays = {key: archive[key] for key in archive.files}
        dropped = next(key for key in arrays if key.startswith(_STATE_PREFIX))
        del arrays[dropped]
        np.savez(artifact, **arrays)
        with pytest.raises(ArtifactFormatError, match="missing state arrays"):
            read_state_dict(artifact)


class TestVersioning:
    def test_future_format_version_raises_version_error(self, artifact, small_split):
        def mutate(text):
            payload = json.loads(text)
            payload["format_version"] = FORMAT_VERSION + 41
            return json.dumps(payload)

        rewrite_header(artifact, mutate)
        with pytest.raises(ArtifactVersionError, match="upgrade the library"):
            load_model(artifact, small_split.train)

    @pytest.mark.parametrize(
        "field,value", [("state_keys", 42), ("schema", [1, 2]), ("settings", "x")]
    )
    def test_malformed_header_fields_raise_format_error(self, artifact, field, value):
        """Wrong-typed state_keys/schema must fail typed, not crash later."""

        def mutate(text):
            payload = json.loads(text)
            payload[field] = value
            return json.dumps(payload)

        rewrite_header(artifact, mutate)
        with pytest.raises(ArtifactFormatError, match=field):
            read_header(artifact)

    def test_non_integer_version_raises_format_error(self, artifact):
        def mutate(text):
            payload = json.loads(text)
            payload["format_version"] = "one"
            return json.dumps(payload)

        rewrite_header(artifact, mutate)
        with pytest.raises(ArtifactFormatError, match="format_version"):
            read_header(artifact)


class TestSchemaMismatch:
    def test_wrong_dataset_raises_schema_error(self, artifact, tiny_dataset):
        with pytest.raises(SchemaMismatchError, match="num_users"):
            load_model(artifact, tiny_dataset)

    def test_same_shape_different_content_raises(self, small_split, tmp_path):
        """Same user/item counts but different behaviors → digest mismatch."""
        train = small_split.train
        model = build_model("MF", train, SETTINGS)
        path = tmp_path / "mf.npz"
        save_model(model, path)
        shuffled = train.with_behaviors(list(reversed(train.behaviors)))
        with pytest.raises(SchemaMismatchError, match="digest"):
            load_model(path, shuffled)

    def test_error_message_tells_operator_what_to_do(self, artifact, tiny_dataset):
        with pytest.raises(SchemaMismatchError, match="original training dataset"):
            load_model(artifact, tiny_dataset)

    def test_load_state_into_with_dataset_requires_fingerprint(self, small_split, tmp_path):
        """Asking for verification against a fingerprint-less artifact fails."""
        from repro.models.mf import MatrixFactorization
        from repro.persist import load_state_into

        train = small_split.train
        model = MatrixFactorization(train.num_users, train.num_items, 8, rng=np.random.default_rng(0))
        path = tmp_path / "bare.npz"
        save_model(model, path)  # no dataset: schema=None
        with pytest.raises(SchemaMismatchError, match="no dataset-schema fingerprint"):
            load_state_into(model, path, dataset=train)
        load_state_into(model, path)  # without a dataset it stays unchecked

        # A registry-built model carries its dataset, so the check runs by
        # default and the documented opt-out is the only way through.
        registry_model = build_model("MF", train, SETTINGS)
        load_state_into(registry_model, path, verify_schema=False)
        with pytest.raises(SchemaMismatchError, match="verify_schema=False"):
            load_state_into(registry_model, path)

    def test_artifact_mode_honors_umask(self, small_split, tmp_path):
        """Artifacts must be as readable as any plainly-opened file."""
        import os
        import stat

        model = build_model("MF", small_split.train, SETTINGS)
        path = tmp_path / "mf.npz"
        save_model(model, path)
        reference = tmp_path / "plain.txt"
        reference.write_bytes(b"x")
        assert stat.S_IMODE(os.stat(path).st_mode) == stat.S_IMODE(os.stat(reference).st_mode)

    def test_stale_tmp_from_hard_crash_is_reclaimed(self, small_split, tmp_path):
        import os
        import subprocess
        import sys
        import time

        model = build_model("MF", small_split.train, SETTINGS)
        path = tmp_path / "mf.npz"
        # Debris from a writer that is confirmed dead (a real, exited PID)
        # and older than the sweep window: the only reapable combination.
        probe = subprocess.Popen([sys.executable, "-c", "pass"])
        probe.wait()
        stale = tmp_path / f".mf.npz.tmp-{probe.pid}-0"
        stale.write_bytes(b"partial write from a process killed yesterday")
        old = time.time() - 86400
        os.utime(stale, (old, old))
        fresh = tmp_path / f".mf.npz.tmp-{os.getpid()}-0"
        fresh.write_bytes(b"another writer, mid-save right now")

        save_model(model, path)
        assert not stale.exists()  # old dead-owner orphan reclaimed ...
        assert fresh.exists()  # ... but a live writer is left alone
        assert path.exists()

    def test_artifact_without_fingerprint_refuses_load_model(self, artifact, small_split):
        """load_model must not serve a model it cannot verify against the dataset."""

        def mutate(text):
            payload = json.loads(text)
            payload["schema"] = None
            return json.dumps(payload)

        rewrite_header(artifact, mutate)
        with pytest.raises(SchemaMismatchError, match="load_state_into"):
            load_model(artifact, small_split.train)


class TestErrorTaxonomy:
    def test_all_errors_are_artifact_errors(self):
        assert issubclass(ArtifactFormatError, ArtifactError)
        assert issubclass(ArtifactVersionError, ArtifactError)
        assert issubclass(SchemaMismatchError, ArtifactError)

    def test_single_catch_covers_every_failure(self, tmp_path, small_split):
        path = tmp_path / "bad.npz"
        path.write_bytes(b"junk")
        with pytest.raises(ArtifactError):
            load_model(path, small_split.train)

    def test_wrong_model_artifact_rejected_by_load_state_into(self, small_split, tmp_path):
        """MF and SocialMF share parameter keys/shapes; the header must catch it."""
        from repro.persist import ModelMismatchError, load_state_into

        train = small_split.train
        source = build_model("SocialMF", train, SETTINGS)
        path = tmp_path / "socialmf.npz"
        save_model(source, path)
        target = build_model("MF", train, SETTINGS)
        assert set(source.state_dict()) == set(target.state_dict())
        with pytest.raises(ModelMismatchError, match="SocialMF"):
            load_state_into(target, path)

    def test_unrebuildable_artifact_points_at_load_state_into(self, small_split, tmp_path):
        """A bare model saved without settings loads only via load_state_into."""
        from repro.models.mf import MatrixFactorization

        train = small_split.train
        model = MatrixFactorization(train.num_users, train.num_items, 8, rng=np.random.default_rng(0))
        path = tmp_path / "bare.npz"
        save_model(model, path, dataset=train)
        with pytest.raises(ArtifactFormatError, match="load_state_into"):
            load_model(path, train)
