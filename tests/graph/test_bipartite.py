"""BipartiteGraph: adjacency, normalization, neighborhoods."""

import numpy as np
import pytest

from repro.graph import BipartiteGraph


@pytest.fixture
def graph():
    pairs = np.array([[0, 0], [0, 1], [1, 1], [2, 0], [2, 2], [2, 2]])  # one duplicate
    return BipartiteGraph(pairs, num_users=4, num_items=3)


class TestConstruction:
    def test_deduplicates_pairs(self, graph):
        assert graph.num_edges == 5

    def test_out_of_range_user_raises(self):
        with pytest.raises(ValueError):
            BipartiteGraph(np.array([[5, 0]]), num_users=3, num_items=3)

    def test_out_of_range_item_raises(self):
        with pytest.raises(ValueError):
            BipartiteGraph(np.array([[0, 9]]), num_users=3, num_items=3)

    def test_empty_graph(self):
        graph = BipartiteGraph(np.zeros((0, 2)), num_users=3, num_items=2)
        assert graph.num_edges == 0
        assert graph.adjacency().shape == (3, 2)


class TestAdjacency:
    def test_binary_entries(self, graph):
        dense = graph.adjacency().toarray()
        assert set(np.unique(dense)) <= {0.0, 1.0}
        assert dense[0, 0] == 1 and dense[0, 1] == 1 and dense[3].sum() == 0

    def test_user_to_item_rows_sum_to_one(self, graph):
        rows = np.asarray(graph.user_to_item_propagation().sum(axis=1)).flatten()
        assert np.allclose(rows[:3], 1.0)
        assert rows[3] == 0.0

    def test_item_to_user_rows_sum_to_one(self, graph):
        rows = np.asarray(graph.item_to_user_propagation().sum(axis=1)).flatten()
        assert np.allclose(rows, 1.0)

    def test_user_to_item_mean_aggregation(self, graph):
        # User 0 interacted with items 0 and 1 -> each weighted 0.5.
        row = graph.user_to_item_propagation()[0].toarray().flatten()
        assert np.allclose(row, [0.5, 0.5, 0.0])

    def test_symmetric_normalized_shape_and_symmetry(self, graph):
        sym = graph.symmetric_normalized()
        assert sym.shape == (7, 7)
        assert np.allclose(sym.toarray(), sym.toarray().T)


class TestNeighborhoods:
    def test_items_of_user(self, graph):
        assert set(graph.items_of_user(2)) == {0, 2}

    def test_users_of_item(self, graph):
        assert set(graph.users_of_item(1)) == {0, 1}

    def test_degrees(self, graph):
        assert graph.user_degree().tolist() == [2, 1, 2, 0]
        assert graph.item_degree().tolist() == [2, 2, 1]

    def test_repr(self, graph):
        assert "BipartiteGraph" in repr(graph)
