"""HeteroGroupBuyingGraph construction from a dataset."""

import numpy as np
import pytest

from repro.graph import BipartiteGraph, FriendshipGraph, HeteroGroupBuyingGraph, SharingGraph, build_hetero_graph


class TestBuildHeteroGraph:
    def test_edge_counts_match_dataset(self, tiny_dataset, tiny_graph):
        # Initiator view: unique (initiator, item) pairs.
        expected_initiator_pairs = {(b.initiator, b.item) for b in tiny_dataset.behaviors}
        assert tiny_graph.initiator_view.num_edges == len(expected_initiator_pairs)
        # Participant view: unique (participant, item) pairs.
        expected_participant_pairs = {
            (p, b.item) for b in tiny_dataset.behaviors for p in b.participants
        }
        assert tiny_graph.participant_view.num_edges == len(expected_participant_pairs)

    def test_sharing_edges_are_initiator_to_participant(self, tiny_dataset, tiny_graph):
        dense = tiny_graph.sharing.matrix().toarray()
        for behavior in tiny_dataset.behaviors:
            for participant in behavior.participants:
                assert dense[behavior.initiator, participant] == 1.0

    def test_friendship_matches_social_edges(self, tiny_dataset, tiny_graph):
        assert tiny_graph.friendship.num_edges == tiny_dataset.num_social_edges

    def test_summary_keys(self, tiny_graph):
        summary = tiny_graph.summary()
        assert set(summary) == {
            "initiator_view_edges",
            "participant_view_edges",
            "sharing_edges",
            "friendship_edges",
        }

    def test_dimensions(self, tiny_dataset, tiny_graph):
        assert tiny_graph.num_users == tiny_dataset.num_users
        assert tiny_graph.num_items == tiny_dataset.num_items

    def test_repr(self, tiny_graph):
        assert "HeteroGroupBuyingGraph" in repr(tiny_graph)


class TestValidation:
    def test_mismatched_user_universe_raises(self):
        initiator = BipartiteGraph(np.array([[0, 0]]), num_users=3, num_items=2)
        participant = BipartiteGraph(np.array([[0, 0]]), num_users=4, num_items=2)
        sharing = SharingGraph([], num_users=3)
        friendship = FriendshipGraph([], num_users=3)
        with pytest.raises(ValueError):
            HeteroGroupBuyingGraph(initiator, participant, sharing, friendship)

    def test_mismatched_item_universe_raises(self):
        initiator = BipartiteGraph(np.array([[0, 0]]), num_users=3, num_items=2)
        participant = BipartiteGraph(np.array([[0, 0]]), num_users=3, num_items=5)
        with pytest.raises(ValueError):
            HeteroGroupBuyingGraph(
                initiator, participant, SharingGraph([], 3), FriendshipGraph([], 3)
            )

    def test_mismatched_sharing_users_raises(self):
        view = BipartiteGraph(np.array([[0, 0]]), num_users=3, num_items=2)
        with pytest.raises(ValueError):
            HeteroGroupBuyingGraph(view, view, SharingGraph([], 5), FriendshipGraph([], 3))
