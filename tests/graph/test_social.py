"""FriendshipGraph and SharingGraph."""

import numpy as np
import pytest

from repro.graph import FriendshipGraph, SharingGraph


class TestFriendshipGraph:
    def test_symmetric_matrix(self):
        graph = FriendshipGraph([(0, 1), (1, 2)], num_users=4)
        dense = graph.matrix().toarray()
        assert np.allclose(dense, dense.T)
        assert dense[0, 1] == 1 and dense[1, 0] == 1

    def test_deduplicates_and_drops_self_loops(self):
        graph = FriendshipGraph([(0, 1), (1, 0), (2, 2)], num_users=3)
        assert graph.num_edges == 1

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            FriendshipGraph([(0, 9)], num_users=3)

    def test_normalized_rows(self):
        graph = FriendshipGraph([(0, 1), (0, 2)], num_users=4)
        normalized = graph.normalized().toarray()
        assert np.allclose(normalized[0], [0.0, 0.5, 0.5, 0.0])
        assert np.allclose(normalized[3], 0.0)

    def test_friends_of_and_degrees(self):
        graph = FriendshipGraph([(0, 1), (0, 2), (1, 2)], num_users=4)
        assert set(graph.friends_of(0)) == {1, 2}
        assert graph.degrees().tolist() == [2, 2, 2, 0]

    def test_empty_graph(self):
        graph = FriendshipGraph([], num_users=3)
        assert graph.matrix().nnz == 0


class TestSharingGraph:
    def test_directed_edges(self):
        graph = SharingGraph([(0, 1), (0, 2), (2, 0)], num_users=3)
        dense = graph.matrix().toarray()
        assert dense[0, 1] == 1 and dense[1, 0] == 0
        assert dense[2, 0] == 1

    def test_outgoing_propagation_rows(self):
        graph = SharingGraph([(0, 1), (0, 2)], num_users=3)
        out = graph.outgoing_propagation().toarray()
        assert np.allclose(out[0], [0.0, 0.5, 0.5])

    def test_incoming_propagation_rows(self):
        graph = SharingGraph([(0, 2), (1, 2)], num_users=3)
        incoming = graph.incoming_propagation().toarray()
        assert np.allclose(incoming[2], [0.5, 0.5, 0.0])

    def test_shared_to_and_from(self):
        graph = SharingGraph([(0, 1), (0, 2), (3, 1)], num_users=4)
        assert set(graph.shared_to(0)) == {1, 2}
        assert set(graph.shared_from(1)) == {0, 3}

    def test_duplicate_edges_collapse(self):
        graph = SharingGraph([(0, 1), (0, 1)], num_users=2)
        assert graph.num_edges == 1
        assert graph.matrix().toarray()[0, 1] == 1.0

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            SharingGraph([(0, 7)], num_users=3)
