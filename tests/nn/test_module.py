"""Module/Parameter system: discovery, state_dict, train/eval modes."""

import numpy as np
import pytest

from repro.nn import Embedding, Linear, MLP, Module, Parameter


class Composite(Module):
    def __init__(self):
        super().__init__()
        self.linear = Linear(4, 3)
        self.embedding = Embedding(5, 4)
        self.extra = Parameter(np.zeros(2))
        self.blocks = [Linear(2, 2), Linear(2, 2)]
        self.by_name = {"head": Linear(3, 1)}

    def forward(self, x):
        return self.linear(x)


class TestParameterDiscovery:
    def test_named_parameters_cover_all(self):
        model = Composite()
        names = dict(model.named_parameters())
        assert "linear.weight" in names
        assert "linear.bias" in names
        assert "embedding.weight" in names
        assert "extra" in names
        assert "blocks.0.weight" in names
        assert "blocks.1.bias" in names
        assert "by_name.head.weight" in names

    def test_parameters_count(self):
        model = Composite()
        expected = 4 * 3 + 3 + 5 * 4 + 2 + 2 * (2 * 2 + 2) + 3 + 1
        assert model.num_parameters() == expected

    def test_named_modules_includes_nested(self):
        model = Composite()
        names = [name for name, _ in model.named_modules()]
        assert "" in names
        assert "linear" in names
        assert "blocks.0" in names
        assert "by_name.head" in names


class TestTrainEval:
    def test_modes_propagate(self):
        model = Composite()
        assert model.training
        model.eval()
        assert not model.training
        assert not model.linear.training
        assert not model.blocks[1].training
        model.train()
        assert model.by_name["head"].training

    def test_zero_grad_clears_all(self):
        model = Composite()
        for parameter in model.parameters():
            parameter.grad = np.ones_like(parameter.data)
        model.zero_grad()
        assert all(parameter.grad is None for parameter in model.parameters())


class TestStateDict:
    def test_round_trip(self):
        model = Composite()
        state = model.state_dict()
        other = Composite()
        other.load_state_dict(state)
        for (_, a), (_, b) in zip(model.named_parameters(), other.named_parameters()):
            assert np.allclose(a.data, b.data)

    def test_state_dict_is_a_copy(self):
        model = Composite()
        state = model.state_dict()
        state["extra"][:] = 99.0
        assert not np.allclose(model.extra.data, 99.0)

    def test_strict_mismatch_raises(self):
        model = Composite()
        with pytest.raises(KeyError):
            model.load_state_dict({"nonexistent": np.zeros(1)})

    def test_non_strict_ignores_unknown_and_missing(self):
        model = Composite()
        model.load_state_dict({"extra": np.ones(2), "unknown": np.zeros(3)}, strict=False)
        assert np.allclose(model.extra.data, 1.0)

    def test_shape_mismatch_raises(self):
        model = Composite()
        with pytest.raises(ValueError):
            model.load_state_dict({"extra": np.zeros(5)}, strict=False)

    def test_forward_not_implemented_on_base(self):
        with pytest.raises(NotImplementedError):
            Module().forward()
