"""Loss functions: values, gradients, and degenerate cases."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.autograd import Tensor, check_gradients
from repro.nn import (
    bpr_loss,
    l2_regularization,
    log_loss,
    regression_pairwise_loss,
    social_regularization,
)


def make(shape, seed=0):
    return Tensor(np.random.default_rng(seed).normal(size=shape), requires_grad=True)


class TestBPRLoss:
    def test_perfect_ranking_gives_small_loss(self):
        loss = bpr_loss(Tensor([10.0, 10.0]), Tensor([-10.0, -10.0]))
        assert loss.data < 1e-4

    def test_reversed_ranking_gives_large_loss(self):
        loss = bpr_loss(Tensor([-10.0]), Tensor([10.0]))
        assert loss.data > 10.0

    def test_equal_scores_is_log2(self):
        loss = bpr_loss(Tensor([1.0]), Tensor([1.0]))
        assert np.isclose(loss.data, np.log(2.0))

    def test_gradients(self):
        positive, negative = make((6,), 1), make((6,), 2)
        check_gradients(lambda: bpr_loss(positive, negative), {"p": positive, "n": negative})


class TestLogLoss:
    def test_confident_correct_predictions(self):
        scores = Tensor([10.0, -10.0])
        labels = np.array([1.0, 0.0])
        assert log_loss(scores, labels).data < 1e-3

    def test_confident_wrong_predictions(self):
        scores = Tensor([-10.0, 10.0])
        labels = np.array([1.0, 0.0])
        assert log_loss(scores, labels).data > 5.0

    def test_gradients(self):
        scores = make((8,), 3)
        labels = np.random.default_rng(4).integers(0, 2, size=8).astype(float)
        check_gradients(lambda: log_loss(scores, labels), {"scores": scores})


class TestRegressionPairwiseLoss:
    def test_zero_when_margin_met_exactly(self):
        loss = regression_pairwise_loss(Tensor([2.0]), Tensor([1.0]), margin=1.0)
        assert np.isclose(loss.data, 0.0)

    def test_penalizes_small_margin(self):
        loss = regression_pairwise_loss(Tensor([1.0]), Tensor([1.0]), margin=1.0)
        assert np.isclose(loss.data, 1.0)

    def test_gradients(self):
        positive, negative = make((5,), 5), make((5,), 6)
        check_gradients(
            lambda: regression_pairwise_loss(positive, negative), {"p": positive, "n": negative}
        )


class TestL2Regularization:
    def test_value(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([[3.0]], requires_grad=True)
        assert np.isclose(l2_regularization([a, b], 0.5).data, 0.5 * (1 + 4 + 9))

    def test_zero_weight_short_circuits(self):
        assert l2_regularization([make((3,), 7)], 0.0).data == 0.0

    def test_gradients(self):
        a = make((4,), 8)
        check_gradients(lambda: l2_regularization([a], 0.1), {"a": a})


class TestSocialRegularization:
    def setup_method(self):
        # 3 users: 0-1 friends, 2 isolated.
        social = np.array([[0, 1, 0], [1, 0, 0], [0, 0, 0]], dtype=float)
        row_sums = social.sum(axis=1, keepdims=True)
        row_sums[row_sums == 0] = 1
        self.normalized = sp.csr_matrix(social / row_sums)

    def test_identical_friends_give_zero(self):
        users = Tensor(np.ones((3, 4)), requires_grad=True)
        assert np.isclose(social_regularization(users, self.normalized, 1.0).data, 0.0)

    def test_divergent_friends_penalized(self):
        users = Tensor(np.array([[1.0, 0.0], [0.0, 1.0], [5.0, 5.0]]), requires_grad=True)
        value = social_regularization(users, self.normalized, 1.0, user_indices=np.array([0, 1]))
        assert value.data > 0

    def test_zero_weight_short_circuits(self):
        users = make((3, 2), 9)
        assert social_regularization(users, self.normalized, 0.0).data == 0.0

    def test_gradients(self):
        users = make((3, 2), 10)
        check_gradients(
            lambda: social_regularization(users, self.normalized, 0.3), {"users": users}
        )
