"""LayerNorm and AttentionPooling layers."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients
from repro.nn import AttentionPooling, LayerNorm


class TestLayerNorm:
    def test_output_is_normalized(self):
        layer = LayerNorm(6)
        inputs = Tensor(np.random.default_rng(0).normal(3.0, 5.0, size=(4, 6)))
        outputs = layer(inputs).data
        assert np.allclose(outputs.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(outputs.std(axis=-1), 1.0, atol=1e-2)

    def test_scale_and_shift_are_learnable(self):
        layer = LayerNorm(3)
        layer.gamma.data = np.array([2.0, 2.0, 2.0])
        layer.beta.data = np.array([1.0, 1.0, 1.0])
        inputs = Tensor(np.array([[1.0, 2.0, 3.0]]))
        outputs = layer(inputs).data
        assert np.allclose(outputs.mean(axis=-1), 1.0, atol=1e-6)

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            LayerNorm(0)

    def test_gradients_flow(self):
        layer = LayerNorm(4)
        inputs = Tensor(np.random.default_rng(1).normal(size=(3, 4)), requires_grad=True)
        loss = (layer(inputs) ** 2).sum()
        loss.backward()
        assert inputs.grad is not None
        assert layer.gamma.grad is not None
        assert layer.beta.grad is not None

    def test_parameters_registered(self):
        layer = LayerNorm(5)
        assert layer.num_parameters() == 10


class TestAttentionPooling:
    def test_output_shape(self):
        layer = AttentionPooling(8, rng=np.random.default_rng(0))
        inputs = Tensor(np.random.default_rng(1).normal(size=(5, 8)))
        pooled = layer(inputs)
        assert pooled.shape == (8,)

    def test_weights_sum_to_one(self):
        layer = AttentionPooling(8, rng=np.random.default_rng(2))
        inputs = Tensor(np.random.default_rng(3).normal(size=(7, 8)))
        weights = layer.weights(inputs).data
        assert weights.shape == (7, 1)
        assert np.isclose(weights.sum(), 1.0)
        assert (weights >= 0).all()

    def test_single_element_set_returns_that_element(self):
        layer = AttentionPooling(4, rng=np.random.default_rng(4))
        vector = np.random.default_rng(5).normal(size=(1, 4))
        pooled = layer(Tensor(vector)).data
        assert np.allclose(pooled, vector[0])

    def test_pooled_vector_is_convex_combination(self):
        layer = AttentionPooling(3, rng=np.random.default_rng(6))
        inputs = np.random.default_rng(7).normal(size=(6, 3))
        pooled = layer(Tensor(inputs)).data
        assert (pooled <= inputs.max(axis=0) + 1e-9).all()
        assert (pooled >= inputs.min(axis=0) - 1e-9).all()

    def test_gradients_reach_projection_weights(self):
        layer = AttentionPooling(4, rng=np.random.default_rng(8))
        inputs = Tensor(np.random.default_rng(9).normal(size=(5, 4)))
        loss = (layer(inputs) ** 2).sum()
        loss.backward()
        assert layer.projection.weight.grad is not None
        assert layer.score.weight.grad is not None
