"""Linear, Embedding, MLP and Dropout layers."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients
from repro.nn import Dropout, Embedding, Linear, MLP
from repro.nn.layers import resolve_activation


class TestLinear:
    def test_output_shape(self):
        layer = Linear(4, 3, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((5, 4))))
        assert out.shape == (5, 3)

    def test_no_bias(self):
        layer = Linear(4, 3, bias=False)
        assert layer.bias is None
        assert layer(Tensor(np.zeros((2, 4)))).data.sum() == 0.0

    def test_gradients_flow_to_weight_and_bias(self):
        layer = Linear(3, 2, rng=np.random.default_rng(1))
        x = Tensor(np.random.default_rng(2).normal(size=(4, 3)))
        check_gradients(
            lambda: (layer(x) ** 2).sum(),
            {"weight": layer.weight, "bias": layer.bias},
        )

    def test_repr(self):
        assert "Linear" in repr(Linear(2, 2))


class TestEmbedding:
    def test_lookup_shape(self):
        table = Embedding(10, 6, rng=np.random.default_rng(3))
        out = table(np.array([1, 4, 4]))
        assert out.shape == (3, 6)

    def test_gradients(self):
        table = Embedding(8, 4, rng=np.random.default_rng(4))
        indices = np.array([0, 3, 3, 7])
        check_gradients(lambda: (table(indices) ** 2).sum(), {"weight": table.weight})

    def test_normalize_rows(self):
        table = Embedding(5, 3, rng=np.random.default_rng(5))
        table.normalize_()
        norms = np.linalg.norm(table.weight.data, axis=1)
        assert np.allclose(norms, 1.0)

    def test_normal_init_scheme(self):
        table = Embedding(100, 16, rng=np.random.default_rng(6), scheme="normal")
        assert abs(table.weight.data.std() - 0.01) < 0.005

    def test_unknown_scheme_raises(self):
        with pytest.raises(ValueError):
            Embedding(5, 3, scheme="bogus")


class TestMLP:
    def test_output_shape(self):
        mlp = MLP([8, 4, 1], rng=np.random.default_rng(7))
        out = mlp(Tensor(np.ones((10, 8))))
        assert out.shape == (10, 1)

    def test_needs_at_least_two_sizes(self):
        with pytest.raises(ValueError):
            MLP([4])

    def test_gradients_through_all_layers(self):
        mlp = MLP([3, 4, 2], activation="tanh", rng=np.random.default_rng(8))
        x = Tensor(np.random.default_rng(9).normal(size=(5, 3)))
        parameters = {name: p for name, p in mlp.named_parameters()}
        check_gradients(lambda: (mlp(x) ** 2).sum(), parameters)

    def test_output_activation(self):
        mlp = MLP([2, 2], output_activation="sigmoid", rng=np.random.default_rng(10))
        out = mlp(Tensor(np.random.default_rng(11).normal(size=(6, 2))))
        assert np.all(out.data > 0) and np.all(out.data < 1)

    def test_dropout_only_between_layers_in_training(self):
        mlp = MLP([4, 4, 4], dropout_rate=0.5, rng=np.random.default_rng(12))
        mlp.eval()
        x = Tensor(np.ones((3, 4)))
        first = mlp(x).data
        second = mlp(x).data
        assert np.allclose(first, second)


class TestDropoutLayer:
    def test_respects_eval_mode(self):
        layer = Dropout(0.9, rng=np.random.default_rng(13))
        layer.eval()
        x = Tensor(np.ones((4, 4)))
        assert np.allclose(layer(x).data, 1.0)

    def test_training_mode_zeroes_entries(self):
        layer = Dropout(0.5, rng=np.random.default_rng(14))
        out = layer(Tensor(np.ones((100, 10))))
        assert (out.data == 0).any()


class TestResolveActivation:
    def test_accepts_callable(self):
        func = lambda t: t
        assert resolve_activation(func) is func

    def test_none_is_identity(self):
        x = Tensor([1.0, -2.0])
        assert np.allclose(resolve_activation(None)(x).data, x.data)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            resolve_activation("swish")
