"""Initialization schemes."""

import numpy as np
import pytest

from repro.nn import init


class TestXavier:
    def test_uniform_bounds(self):
        values = init.xavier_uniform((50, 30), rng=np.random.default_rng(0))
        limit = np.sqrt(6.0 / 80)
        assert values.shape == (50, 30)
        assert values.max() <= limit and values.min() >= -limit

    def test_normal_std(self):
        values = init.xavier_normal((200, 100), rng=np.random.default_rng(1))
        expected = np.sqrt(2.0 / 300)
        assert abs(values.std() - expected) / expected < 0.1

    def test_one_dimensional_shape(self):
        values = init.xavier_uniform((16,), rng=np.random.default_rng(2))
        assert values.shape == (16,)

    def test_empty_shape_raises(self):
        with pytest.raises(ValueError):
            init.xavier_uniform(())

    def test_gain_scales_limit(self):
        rng_a, rng_b = np.random.default_rng(3), np.random.default_rng(3)
        base = init.xavier_uniform((10, 10), rng=rng_a, gain=1.0)
        doubled = init.xavier_uniform((10, 10), rng=rng_b, gain=2.0)
        assert np.allclose(doubled, 2 * base)


class TestOtherSchemes:
    def test_normal(self):
        values = init.normal((1000,), std=0.05, rng=np.random.default_rng(4))
        assert abs(values.std() - 0.05) < 0.01

    def test_uniform_range(self):
        values = init.uniform((100,), low=-1.0, high=2.0, rng=np.random.default_rng(5))
        assert values.min() >= -1.0 and values.max() < 2.0

    def test_zeros(self):
        assert not init.zeros((3, 3)).any()
