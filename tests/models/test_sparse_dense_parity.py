"""Registry-wide sparse-vs-dense gradient parity (bitwise, not allclose).

The dense engine (``use_dense_grads``) is the oracle: for every registry
model plus GBGCN-pretrain, a training step under the row-sparse engine must
produce the exact same loss and — after densification — the exact same
gradient array for every parameter (``np.array_equal``).  Repeated-index
batches, empty batches and ``clip_grad_norm`` interaction included.
"""

import numpy as np
import pytest

from repro.autograd import RowSparseGrad, grad_to_dense, use_dense_grads, use_sparse_grads
from repro.models import ALL_MODEL_NAMES, ModelSettings, build_model
from repro.optim import clip_grad_norm
from repro.training.batches import GroupBuyingBatch, InteractionBatch
from repro.training.factory import build_batch_iterator

PARITY_MODELS = ALL_MODEL_NAMES + ["GBGCN-pretrain"]
NON_TRAINABLE = {"ItemPop", "ItemKNN"}


def training_step(name, train_dataset, sparse, batch_transform=None, grad_clip=None):
    """One loss/backward (optionally clipped) under the chosen grad engine."""
    settings = ModelSettings(embedding_dim=8, num_layers=2)
    model = build_model(name, train_dataset, settings)
    iterator = build_batch_iterator(model, train_dataset, batch_size=64, seed=3)
    batch = next(iter(iterator))
    if batch_transform is not None:
        batch = batch_transform(batch)
    engine = use_sparse_grads() if sparse else use_dense_grads()
    with engine:
        loss = model.batch_loss(batch)
        loss.backward()
        if grad_clip is not None:
            clip_grad_norm(model.parameters(), grad_clip)
    grads = {
        param_name: grad_to_dense(parameter.grad)
        for param_name, parameter in model.named_parameters()
        if parameter.grad is not None
    }
    sparse_count = sum(
        isinstance(parameter.grad, RowSparseGrad) for parameter in model.parameters()
    )
    return float(loss.data), grads, sparse_count


def assert_parity(name, train_dataset, batch_transform=None, grad_clip=None):
    sparse_loss, sparse_grads, _ = training_step(
        name, train_dataset, sparse=True, batch_transform=batch_transform, grad_clip=grad_clip
    )
    dense_loss, dense_grads, dense_sparse_count = training_step(
        name, train_dataset, sparse=False, batch_transform=batch_transform, grad_clip=grad_clip
    )
    assert dense_sparse_count == 0  # the oracle path never emits sparse grads
    assert sparse_loss == dense_loss
    assert set(sparse_grads) == set(dense_grads)
    for param_name in dense_grads:
        assert np.array_equal(sparse_grads[param_name], dense_grads[param_name]), (
            f"{name}: gradient mismatch for parameter '{param_name}'"
        )
    return sparse_grads


@pytest.mark.parametrize("name", PARITY_MODELS)
def test_gradients_bitwise_equal(name, small_split):
    train = small_split.train
    if name in NON_TRAINABLE:
        model = build_model(name, train, ModelSettings(embedding_dim=8))
        assert model.parameters() == []
        return
    grads = assert_parity(name, train)
    assert grads  # every trainable model must actually produce gradients


def test_embedding_models_emit_sparse_grads(small_split):
    _, _, sparse_count = training_step("MF", small_split.train, sparse=True)
    assert sparse_count > 0  # guard: the sparse engine is actually engaged


class TestEdgeCaseBatches:
    def _repeat_interactions(self, batch: InteractionBatch) -> InteractionBatch:
        return InteractionBatch(
            users=np.concatenate([batch.users, batch.users[:7], batch.users[:7]]),
            positive_items=np.concatenate(
                [batch.positive_items, batch.positive_items[:7], batch.positive_items[:7]]
            ),
            negative_items=np.concatenate(
                [batch.negative_items, batch.negative_items[:7], batch.negative_items[:7]]
            ),
        )

    def _repeat_group_buying(self, batch: GroupBuyingBatch) -> GroupBuyingBatch:
        rows = len(batch)
        return GroupBuyingBatch(
            initiators=np.concatenate([batch.initiators, batch.initiators]),
            items=np.concatenate([batch.items, batch.items]),
            negative_items=np.concatenate([batch.negative_items, batch.negative_items]),
            success=np.concatenate([batch.success, batch.success]),
            participants=np.concatenate([batch.participants, batch.participants]),
            participant_segment=np.concatenate(
                [batch.participant_segment, batch.participant_segment + rows]
            ),
            failed_friends=np.concatenate([batch.failed_friends, batch.failed_friends]),
            failed_friend_segment=np.concatenate(
                [batch.failed_friend_segment, batch.failed_friend_segment + rows]
            ),
        )

    def _empty_interactions(self, batch: InteractionBatch) -> InteractionBatch:
        empty = np.empty(0, dtype=np.int64)
        return InteractionBatch(users=empty, positive_items=empty, negative_items=empty)

    def _empty_group_buying(self, batch: GroupBuyingBatch) -> GroupBuyingBatch:
        empty = np.empty(0, dtype=np.int64)
        return GroupBuyingBatch(
            initiators=empty,
            items=empty,
            negative_items=empty,
            success=np.empty(0, dtype=bool),
            participants=empty,
            participant_segment=empty,
            failed_friends=empty,
            failed_friend_segment=empty,
        )

    def test_repeated_index_batch_mf(self, small_split):
        assert_parity("MF", small_split.train, batch_transform=self._repeat_interactions)

    def test_repeated_index_batch_gbgcn(self, small_split):
        assert_parity("GBGCN", small_split.train, batch_transform=self._repeat_group_buying)

    def test_empty_batch_mf(self, small_split):
        assert_parity("MF", small_split.train, batch_transform=self._empty_interactions)

    def test_empty_batch_gbgcn(self, small_split):
        assert_parity("GBGCN", small_split.train, batch_transform=self._empty_group_buying)

    @pytest.mark.parametrize("name", ["MF", "LightGCN", "GBGCN", "GBGCN-pretrain"])
    def test_clip_grad_norm_interaction(self, name, small_split):
        # A tiny max_norm guarantees clipping actually rescales.
        assert_parity(name, small_split.train, grad_clip=1e-3)

    def test_clip_preserves_sparse_representation(self, small_split):
        _, _, count_before = training_step("MF", small_split.train, sparse=True, grad_clip=1e-3)
        assert count_before > 0
