"""Every Table III baseline: construction, loss, learning signal, scoring."""

import numpy as np
import pytest

from repro.data import to_fixed_groups, to_user_item_interactions, TrainingNegativeSampler
from repro.graph import BipartiteGraph, FriendshipGraph
from repro.models import (
    AGREE,
    DataMode,
    GBMF,
    MatrixFactorization,
    NCF,
    NGCF,
    SIGR,
    SocialMF,
    DiffNet,
)
from repro.optim import Adam
from repro.training import (
    FixedGroupBatchIterator,
    GroupBuyingBatchIterator,
    InteractionBatchIterator,
)


@pytest.fixture(scope="module")
def train(small_split):
    return small_split.train


@pytest.fixture(scope="module")
def friendship(train):
    return FriendshipGraph([e.as_tuple() for e in train.social_edges], train.num_users)


@pytest.fixture(scope="module")
def interaction_graph(train):
    conversion = to_user_item_interactions(train, mode="both")
    return BipartiteGraph(conversion.pairs, train.num_users, train.num_items)


@pytest.fixture(scope="module")
def groups(train):
    return to_fixed_groups(train)


@pytest.fixture(scope="module")
def interaction_batch(train):
    conversion = to_user_item_interactions(train, mode="both")
    sampler = TrainingNegativeSampler(train, seed=0)
    return next(iter(InteractionBatchIterator(conversion, sampler, batch_size=128, seed=0)))


@pytest.fixture(scope="module")
def group_batch(groups):
    return next(iter(FixedGroupBatchIterator(groups, batch_size=128, seed=0)))


@pytest.fixture(scope="module")
def group_buying_batch(train):
    sampler = TrainingNegativeSampler(train, seed=0)
    return next(iter(GroupBuyingBatchIterator(train, sampler, batch_size=128, seed=0)))


def assert_learns(model, batch, steps=12, lr=0.05):
    """The batch loss must decrease after a few optimizer steps."""
    optimizer = Adam(model.parameters(), lr=lr)
    initial = float(model.batch_loss(batch).data)
    for _ in range(steps):
        optimizer.zero_grad()
        loss = model.batch_loss(batch)
        loss.backward()
        optimizer.step()
    model.invalidate_cache()
    assert float(model.batch_loss(batch).data) < initial


class TestMatrixFactorization:
    def test_data_mode_per_conversion(self, train):
        assert MatrixFactorization(train.num_users, train.num_items, 8, interaction_mode="oi").data_mode == DataMode.INTERACTIONS_OI
        assert MatrixFactorization(train.num_users, train.num_items, 8).data_mode == DataMode.INTERACTIONS_BOTH

    def test_invalid_mode(self, train):
        with pytest.raises(ValueError):
            MatrixFactorization(train.num_users, train.num_items, 8, interaction_mode="bad")

    def test_learns(self, train, interaction_batch):
        model = MatrixFactorization(train.num_users, train.num_items, 8, rng=np.random.default_rng(0))
        assert_learns(model, interaction_batch)

    def test_rank_scores_match_dot_product(self, train):
        model = MatrixFactorization(train.num_users, train.num_items, 8, rng=np.random.default_rng(1))
        items = np.array([0, 3, 5])
        scores = model.rank_scores(2, items)
        expected = model.item_embedding.weight.data[items] @ model.user_embedding.weight.data[2]
        assert np.allclose(scores, expected)

    def test_names(self, train):
        assert MatrixFactorization(train.num_users, train.num_items, 8, interaction_mode="oi").name == "MF(oi)"
        assert MatrixFactorization(train.num_users, train.num_items, 8).name == "MF"


class TestNCF:
    def test_learns(self, train, interaction_batch):
        model = NCF(train.num_users, train.num_items, 8, rng=np.random.default_rng(2))
        assert_learns(model, interaction_batch)

    def test_rank_scores_finite(self, train):
        model = NCF(train.num_users, train.num_items, 8, rng=np.random.default_rng(3))
        scores = model.rank_scores(1, np.arange(train.num_items))
        assert scores.shape == (train.num_items,)
        assert np.isfinite(scores).all()

    def test_has_separate_branch_embeddings(self, train):
        model = NCF(train.num_users, train.num_items, 8, rng=np.random.default_rng(4))
        assert not np.allclose(model.gmf_user_embedding.weight.data, model.mlp_user_embedding.weight.data)


class TestNGCF:
    def test_graph_shape_validation(self, train, interaction_graph):
        with pytest.raises(ValueError):
            NGCF(train.num_users + 1, train.num_items, interaction_graph, 8)

    def test_learns(self, train, interaction_graph, interaction_batch):
        model = NGCF(train.num_users, train.num_items, interaction_graph, 8, rng=np.random.default_rng(5))
        assert_learns(model, interaction_batch, steps=8)

    def test_eval_cache_lifecycle(self, train, interaction_graph):
        model = NGCF(train.num_users, train.num_items, interaction_graph, 8, rng=np.random.default_rng(6))
        model.prepare_for_evaluation()
        assert model._eval_cache is not None
        model.invalidate_cache()
        assert model._eval_cache is None

    def test_propagated_dimension(self, train, interaction_graph):
        model = NGCF(train.num_users, train.num_items, interaction_graph, 8, num_layers=2, rng=np.random.default_rng(7))
        out = model.propagate()
        assert out.shape == (train.num_users + train.num_items, 8 * 3)


class TestSocialMF:
    def test_learns(self, train, friendship, interaction_batch):
        model = SocialMF(train.num_users, train.num_items, friendship, 8, rng=np.random.default_rng(8))
        assert_learns(model, interaction_batch)

    def test_friendship_validation(self, train):
        with pytest.raises(ValueError):
            SocialMF(train.num_users, train.num_items, FriendshipGraph([], train.num_users + 1), 8)


class TestDiffNet:
    def test_learns(self, train, friendship, interaction_graph, interaction_batch):
        model = DiffNet(train.num_users, train.num_items, friendship, interaction_graph, 8,
                        rng=np.random.default_rng(9))
        assert_learns(model, interaction_batch, steps=8)

    def test_diffusion_uses_social_network(self, train, friendship, interaction_graph):
        model = DiffNet(train.num_users, train.num_items, friendship, interaction_graph, 8,
                        rng=np.random.default_rng(10))
        diffused = model.diffuse_users().data
        assert not np.allclose(diffused, model.user_embedding.weight.data)


class TestAGREE:
    def test_learns(self, train, groups, group_batch):
        model = AGREE(train.num_users, train.num_items, groups, 8, rng=np.random.default_rng(11))
        assert_learns(model, group_batch, steps=8)

    def test_rank_scores_for_known_and_unknown_user(self, train, groups):
        model = AGREE(train.num_users, train.num_items, groups, 8, rng=np.random.default_rng(12))
        known_user = next(iter(groups.group_of_user))
        unknown_user = train.num_users - 1 if train.num_users - 1 not in groups.group_of_user else 0
        for user in (known_user, unknown_user):
            scores = model.rank_scores(user, np.arange(6))
            assert scores.shape == (6,)
            assert np.isfinite(scores).all()


class TestSIGR:
    def test_learns(self, train, groups, friendship, interaction_graph, group_batch):
        model = SIGR(train.num_users, train.num_items, groups, friendship, interaction_graph, 8,
                     rng=np.random.default_rng(13))
        assert_learns(model, group_batch, steps=8)

    def test_group_representations_shape(self, train, groups, friendship, interaction_graph):
        model = SIGR(train.num_users, train.num_items, groups, friendship, interaction_graph, 8,
                     rng=np.random.default_rng(14))
        assert model.group_representations().shape == (groups.num_groups, 8)


class TestGBMF:
    def test_learns(self, train, friendship, group_buying_batch):
        model = GBMF(train.num_users, train.num_items, friendship, 8, alpha=0.5,
                     rng=np.random.default_rng(15))
        assert_learns(model, group_buying_batch)

    def test_alpha_validation(self, train, friendship):
        with pytest.raises(ValueError):
            GBMF(train.num_users, train.num_items, friendship, 8, alpha=1.5)

    def test_alpha_zero_matches_plain_mf_scoring(self, train, friendship):
        model = GBMF(train.num_users, train.num_items, friendship, 8, alpha=0.0,
                     rng=np.random.default_rng(16))
        items = np.arange(5)
        expected = model.item_embedding.weight.data[items] @ model.user_embedding.weight.data[3]
        assert np.allclose(model.rank_scores(3, items), expected)

    def test_alpha_one_uses_only_friends(self, train, friendship):
        model = GBMF(train.num_users, train.num_items, friendship, 8, alpha=1.0,
                     rng=np.random.default_rng(17))
        model.prepare_for_evaluation()
        items = np.arange(5)
        expected = model.item_embedding.weight.data[items] @ model._eval_cache[3]
        assert np.allclose(model.rank_scores(3, items), expected)
