"""Model registry."""

import pytest

from repro.core import GBGCN, GBGCNPretrainModel
from repro.models import MODEL_NAMES, ModelSettings, build_model, DataMode


class TestRegistry:
    def test_all_table3_models_build(self, small_split):
        settings = ModelSettings(embedding_dim=4)
        for name in MODEL_NAMES:
            model = build_model(name, small_split.train, settings)
            assert model.num_users == small_split.train.num_users

    def test_unknown_name_rejected(self, small_split):
        with pytest.raises(ValueError):
            build_model("Nonexistent", small_split.train)

    def test_gbgcn_and_pretrain_types(self, small_split):
        settings = ModelSettings(embedding_dim=4)
        assert isinstance(build_model("GBGCN", small_split.train, settings), GBGCN)
        assert isinstance(build_model("GBGCN-pretrain", small_split.train, settings), GBGCNPretrainModel)

    def test_data_modes(self, small_split):
        settings = ModelSettings(embedding_dim=4)
        assert build_model("MF(oi)", small_split.train, settings).data_mode == DataMode.INTERACTIONS_OI
        assert build_model("MF", small_split.train, settings).data_mode == DataMode.INTERACTIONS_BOTH
        assert build_model("AGREE", small_split.train, settings).data_mode == DataMode.FIXED_GROUPS
        assert build_model("GBMF", small_split.train, settings).data_mode == DataMode.GROUP_BUYING

    def test_settings_gbgcn_config(self):
        settings = ModelSettings(embedding_dim=16, alpha=0.3, beta=0.2)
        config = settings.gbgcn_config()
        assert config.embedding_dim == 16
        assert config.alpha == 0.3
        assert config.beta == 0.2

    def test_model_names_order_matches_table3(self):
        assert MODEL_NAMES[0] == "MF(oi)"
        assert MODEL_NAMES[-1] == "GBGCN"
        assert len(MODEL_NAMES) == 10
