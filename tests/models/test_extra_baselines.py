"""Extra reference baselines beyond Table III: LightGCN, ItemPop, ItemKNN."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.data import TrainingNegativeSampler, to_user_item_interactions
from repro.graph import BipartiteGraph
from repro.models import (
    ALL_MODEL_NAMES,
    EXTRA_MODEL_NAMES,
    ItemKNN,
    ItemPopularity,
    LightGCN,
    MODEL_NAMES,
    build_model,
    cosine_item_similarity,
)
from repro.optim import Adam
from repro.training import InteractionBatchIterator


@pytest.fixture(scope="module")
def train(small_split):
    return small_split.train


@pytest.fixture(scope="module")
def interactions(train):
    return to_user_item_interactions(train, mode="both")


@pytest.fixture(scope="module")
def interaction_graph(train, interactions):
    return BipartiteGraph(interactions.pairs, train.num_users, train.num_items)


@pytest.fixture(scope="module")
def interaction_batch(train, interactions):
    sampler = TrainingNegativeSampler(train, seed=0)
    return next(iter(InteractionBatchIterator(interactions, sampler, batch_size=128, seed=0)))


class TestLightGCN:
    def test_graph_shape_validation(self, train, interaction_graph):
        with pytest.raises(ValueError):
            LightGCN(train.num_users + 1, train.num_items, interaction_graph, 8)

    def test_layer_validation(self, train, interaction_graph):
        with pytest.raises(ValueError):
            LightGCN(train.num_users, train.num_items, interaction_graph, 8, num_layers=0)

    def test_propagated_shape_is_embedding_dim(self, train, interaction_graph):
        model = LightGCN(train.num_users, train.num_items, interaction_graph, 8,
                         rng=np.random.default_rng(0))
        out = model.propagate()
        assert out.shape == (train.num_users + train.num_items, 8)

    def test_learns(self, train, interaction_graph, interaction_batch):
        model = LightGCN(train.num_users, train.num_items, interaction_graph, 8,
                         rng=np.random.default_rng(1))
        optimizer = Adam(model.parameters(), lr=0.05)
        initial = float(model.batch_loss(interaction_batch).data)
        for _ in range(10):
            optimizer.zero_grad()
            loss = model.batch_loss(interaction_batch)
            loss.backward()
            optimizer.step()
        model.invalidate_cache()
        assert float(model.batch_loss(interaction_batch).data) < initial

    def test_eval_cache_lifecycle(self, train, interaction_graph):
        model = LightGCN(train.num_users, train.num_items, interaction_graph, 8,
                         rng=np.random.default_rng(2))
        model.prepare_for_evaluation()
        assert model._eval_cache is not None
        model.invalidate_cache()
        assert model._eval_cache is None

    def test_rank_scores_finite(self, train, interaction_graph):
        model = LightGCN(train.num_users, train.num_items, interaction_graph, 8,
                         rng=np.random.default_rng(3))
        scores = model.rank_scores(0, np.arange(train.num_items))
        assert scores.shape == (train.num_items,)
        assert np.isfinite(scores).all()


class TestItemPopularity:
    def test_scores_follow_interaction_counts(self, train, interactions):
        model = ItemPopularity(train.num_users, train.num_items, interactions)
        counts = np.zeros(train.num_items)
        np.add.at(counts, interactions.pairs[:, 1], 1.0)
        most_popular = int(np.argmax(counts))
        least_popular = int(np.argmin(counts))
        scores = model.rank_scores(0, np.array([most_popular, least_popular]))
        assert scores[0] >= scores[1]

    def test_same_ranking_for_every_user(self, train, interactions):
        model = ItemPopularity(train.num_users, train.num_items, interactions)
        items = np.arange(train.num_items)
        assert np.allclose(model.rank_scores(0, items), model.rank_scores(5, items))

    def test_no_parameters_and_zero_loss(self, train, interactions, interaction_batch):
        model = ItemPopularity(train.num_users, train.num_items, interactions)
        assert model.num_parameters() == 0
        assert float(model.batch_loss(interaction_batch).data) == 0.0

    def test_negative_smoothing_rejected(self, train, interactions):
        with pytest.raises(ValueError):
            ItemPopularity(train.num_users, train.num_items, interactions, smoothing=-1.0)


class TestCosineItemSimilarity:
    def test_identical_columns_have_similarity_one(self):
        matrix = sp.csr_matrix(np.array([[1, 1, 0], [1, 1, 0], [0, 0, 1]], dtype=float))
        similarity = cosine_item_similarity(matrix, top_k=None).toarray()
        assert similarity[0, 1] == pytest.approx(1.0)
        assert similarity[0, 2] == pytest.approx(0.0)

    def test_diagonal_is_zero(self):
        matrix = sp.csr_matrix(np.array([[1, 1], [1, 0]], dtype=float))
        similarity = cosine_item_similarity(matrix, top_k=None).toarray()
        assert np.allclose(np.diag(similarity), 0.0)

    def test_top_k_truncation(self):
        rng = np.random.default_rng(0)
        matrix = sp.csr_matrix((rng.random((30, 12)) < 0.3).astype(float))
        similarity = cosine_item_similarity(matrix, top_k=3)
        per_row_nnz = np.diff(similarity.indptr)
        assert per_row_nnz.max() <= 3

    def test_shrinkage_reduces_similarity(self):
        matrix = sp.csr_matrix(np.array([[1, 1, 0], [1, 1, 0], [0, 0, 1]], dtype=float))
        plain = cosine_item_similarity(matrix, top_k=None, shrinkage=0.0).toarray()
        shrunk = cosine_item_similarity(matrix, top_k=None, shrinkage=5.0).toarray()
        assert shrunk[0, 1] < plain[0, 1]


class TestItemKNN:
    def test_invalid_top_k(self, train, interactions):
        with pytest.raises(ValueError):
            ItemKNN(train.num_users, train.num_items, interactions, top_k=0)

    def test_rank_scores_shape_and_finiteness(self, train, interactions):
        model = ItemKNN(train.num_users, train.num_items, interactions, top_k=10)
        scores = model.rank_scores(0, np.arange(train.num_items))
        assert scores.shape == (train.num_items,)
        assert np.isfinite(scores).all()

    def test_user_without_history_gets_zero_scores(self):
        from repro.data.converters import InteractionConversion

        # User 2 never interacted with anything.
        pairs = np.array([[0, 0], [0, 1], [1, 1]])
        conversion = InteractionConversion(pairs=pairs, num_users=3, num_items=3, mode="both")
        model = ItemKNN(3, 3, conversion, top_k=3)
        assert np.allclose(model.rank_scores(2, np.arange(3)), 0.0)

    def test_prefers_items_similar_to_history(self):
        # Users 0-3 co-purchase items 0 and 1; user 4 purchased only item 0.
        # ItemKNN must prefer item 1 (similar to the history) over item 2.
        pairs = np.array([[0, 0], [0, 1], [1, 0], [1, 1], [2, 0], [2, 1], [3, 2], [4, 0]])
        from repro.data.converters import InteractionConversion

        conversion = InteractionConversion(pairs=pairs, num_users=5, num_items=3, mode="both")
        model = ItemKNN(5, 3, conversion, top_k=3)
        scores = model.rank_scores(4, np.array([1, 2]))
        assert scores[0] > scores[1]


class TestRegistryExtras:
    def test_extra_names_disjoint_from_table3(self):
        assert not set(EXTRA_MODEL_NAMES) & set(MODEL_NAMES)
        assert set(ALL_MODEL_NAMES) == set(MODEL_NAMES) | set(EXTRA_MODEL_NAMES)

    @pytest.mark.parametrize("name", ["ItemPop", "ItemKNN", "LightGCN"])
    def test_build_and_score(self, name, train):
        model = build_model(name, train)
        scores = model.rank_scores(0, np.arange(min(10, train.num_items)))
        assert np.isfinite(scores).all()
