"""Data-sparsity study."""

import pytest

from repro.analysis import SparsityPoint, SparsityStudy, run_sparsity_study
from repro.models import ModelSettings
from repro.training import TrainingSettings


def make_study():
    study = SparsityStudy(metric="Recall@10")
    study.points = [
        SparsityPoint("MF", 0.25, 100, {"Recall@10": 0.10}),
        SparsityPoint("MF", 1.00, 400, {"Recall@10": 0.20}),
        SparsityPoint("GBGCN", 0.25, 100, {"Recall@10": 0.18}),
        SparsityPoint("GBGCN", 1.00, 400, {"Recall@10": 0.22}),
    ]
    return study


class TestSparsityStudy:
    def test_series_is_sorted_by_fraction(self):
        study = make_study()
        fractions = [point.fraction for point in study.series("MF")]
        assert fractions == sorted(fractions)

    def test_model_names(self):
        assert make_study().model_names() == ["GBGCN", "MF"]

    def test_degradation(self):
        study = make_study()
        assert study.degradation("MF") == pytest.approx(0.5)
        assert study.degradation("GBGCN") == pytest.approx((0.22 - 0.18) / 0.22)

    def test_degradation_needs_two_points(self):
        study = SparsityStudy(metric="Recall@10")
        study.points = [SparsityPoint("MF", 1.0, 10, {"Recall@10": 0.2})]
        with pytest.raises(ValueError):
            study.degradation("MF")

    def test_format_contains_models_and_fractions(self):
        text = make_study().format()
        assert "MF" in text and "GBGCN" in text
        assert "25%" in text and "100%" in text


class TestRunSparsityStudy:
    def test_invalid_fraction_rejected(self, small_split, small_evaluator):
        with pytest.raises(ValueError):
            run_sparsity_study(
                small_split,
                small_evaluator,
                model_names=("MF",),
                fractions=(0.0, 1.0),
                training=TrainingSettings(num_epochs=1),
            )

    def test_small_end_to_end_run(self, small_split, small_evaluator):
        study = run_sparsity_study(
            small_split,
            small_evaluator,
            model_names=("MF",),
            fractions=(0.5, 1.0),
            model_settings=ModelSettings(embedding_dim=8),
            training=TrainingSettings(num_epochs=2, batch_size=512),
        )
        assert len(study.points) == 2
        assert {point.fraction for point in study.points} == {0.5, 1.0}
        dense = study.series("MF")[-1]
        sparse = study.series("MF")[0]
        assert sparse.num_train_behaviors < dense.num_train_behaviors
        assert all(0.0 <= point["Recall@10"] <= 1.0 for point in study.points)
