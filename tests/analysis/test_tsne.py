"""t-SNE implementation."""

import numpy as np
import pytest

from repro.analysis import TSNE, TSNEConfig, tsne_embed


class TestTSNE:
    def test_output_shape(self):
        data = np.random.default_rng(0).normal(size=(40, 8))
        out = tsne_embed(data, TSNEConfig(num_iterations=50, perplexity=10))
        assert out.shape == (40, 2)
        assert np.isfinite(out).all()

    def test_separates_two_well_separated_blobs(self):
        rng = np.random.default_rng(1)
        blob_a = rng.normal(0.0, 0.1, size=(30, 5))
        blob_b = rng.normal(8.0, 0.1, size=(30, 5))
        out = tsne_embed(np.vstack([blob_a, blob_b]), TSNEConfig(num_iterations=250, perplexity=10, seed=2))
        centroid_a, centroid_b = out[:30].mean(axis=0), out[30:].mean(axis=0)
        spread = out[:30].std() + out[30:].std()
        assert np.linalg.norm(centroid_a - centroid_b) > spread

    def test_deterministic_for_seed(self):
        data = np.random.default_rng(3).normal(size=(20, 4))
        config = TSNEConfig(num_iterations=30, seed=7)
        assert np.allclose(TSNE(config).fit_transform(data), TSNE(config).fit_transform(data))

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            tsne_embed(np.zeros((3, 4)))

    def test_requires_2d_input(self):
        with pytest.raises(ValueError):
            tsne_embed(np.zeros(10))

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            TSNEConfig(perplexity=0.5)
        with pytest.raises(ValueError):
            TSNEConfig(num_iterations=0)
