"""Social-influence analysis of the group-buying log."""

import numpy as np
import pytest

from repro.analysis import analyze_social_influence, initiator_influence
from repro.data import GroupBuyingBehavior, GroupBuyingDataset, SocialEdge


class TestInitiatorInfluence:
    def test_per_initiator_counts(self, tiny_dataset):
        records = {record.user: record for record in initiator_influence(tiny_dataset)}
        # User 0 launches twice in the tiny fixture, both successful.
        assert records[0].num_launched == 2
        assert records[0].num_successful == 2
        assert records[0].success_rate == pytest.approx(1.0)
        # User 2 launches once and fails.
        assert records[2].num_launched == 1
        assert records[2].num_successful == 0
        assert records[2].success_rate == pytest.approx(0.0)

    def test_friend_counts_match_social_network(self, tiny_dataset):
        records = {record.user: record for record in initiator_influence(tiny_dataset)}
        friends = tiny_dataset.friend_lists()
        for user, record in records.items():
            assert record.num_friends == friends[user].size

    def test_mean_participants(self, tiny_dataset):
        records = {record.user: record for record in initiator_influence(tiny_dataset)}
        # User 0's launches have 2 and 1 participants.
        assert records[0].mean_participants == pytest.approx(1.5)

    def test_only_initiators_listed(self, tiny_dataset):
        users = {record.user for record in initiator_influence(tiny_dataset)}
        assert users == {b.initiator for b in tiny_dataset.behaviors}


class TestAnalyzeSocialInfluence:
    def test_report_fields_are_finite(self, small_dataset):
        report = analyze_social_influence(small_dataset)
        assert np.isfinite(report.degree_success_correlation)
        assert 0.0 <= report.invitation_conversion_rate <= 1.0
        assert report.num_initiators > 0

    def test_successful_groups_have_more_participants(self, small_dataset):
        report = analyze_social_influence(small_dataset)
        assert report.mean_participants_successful > report.mean_participants_failed

    def test_synthetic_data_shows_positive_degree_effect(self, small_dataset):
        # The generator gives initiators with more friends more potential
        # participants, so degree and clinch rate should correlate positively.
        report = analyze_social_influence(small_dataset, min_launched=2)
        assert report.degree_success_correlation > -0.1

    def test_min_launched_filter(self, small_dataset):
        all_initiators = analyze_social_influence(small_dataset, min_launched=1).num_initiators
        frequent_only = analyze_social_influence(small_dataset, min_launched=3).num_initiators
        assert frequent_only <= all_initiators

    def test_empty_filter_raises(self, tiny_dataset):
        with pytest.raises(ValueError):
            analyze_social_influence(tiny_dataset, min_launched=100)

    def test_degenerate_dataset_gets_zero_correlation(self):
        behaviors = [GroupBuyingBehavior(0, 0, participants=(1,), threshold=1)]
        dataset = GroupBuyingDataset(3, 2, behaviors, [SocialEdge(0, 1)])
        report = analyze_social_influence(dataset)
        assert report.degree_success_correlation == 0.0
        assert report.degree_success_p_value == 1.0

    def test_format_is_printable(self, small_dataset):
        text = analyze_social_influence(small_dataset).format()
        assert "conversion" in text
        assert "correlation" in text.lower()
