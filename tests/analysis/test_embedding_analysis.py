"""Cosine-similarity distributions and the Figure 5/6 helpers."""

import numpy as np
import pytest

from repro.analysis import cross_view_similarity, gbgcn_view_similarities, tsne_projection
from repro.analysis.tsne import TSNEConfig
from repro.core import GBGCN, GBGCNConfig


@pytest.fixture(scope="module")
def trained_gbgcn(small_split, small_graph):
    train = small_split.train
    return GBGCN(train.num_users, train.num_items, small_graph,
                 config=GBGCNConfig(embedding_dim=4), rng=np.random.default_rng(0))


class TestSimilarityDistribution:
    def test_identical_matrices_similarity_one(self):
        matrix = np.random.default_rng(1).normal(size=(20, 6))
        distribution = cross_view_similarity(matrix, matrix)
        assert np.allclose(distribution.similarities, 1.0)
        assert np.isclose(distribution.mean, 1.0)

    def test_opposite_matrices_similarity_minus_one(self):
        matrix = np.random.default_rng(2).normal(size=(10, 4))
        assert np.isclose(cross_view_similarity(matrix, -matrix).mean, -1.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            cross_view_similarity(np.zeros((3, 2)), np.zeros((4, 2)))

    def test_pdf_integrates_to_roughly_one(self):
        values = np.random.default_rng(3).uniform(-0.5, 0.5, size=500)
        distribution = cross_view_similarity(
            np.stack([np.cos(values), np.sin(values)], axis=1), np.tile([1.0, 0.0], (500, 1))
        )
        pdf = distribution.pdf(grid_points=300)
        integral = np.trapezoid(pdf["density"], pdf["x"])
        assert 0.8 < integral < 1.2

    def test_pdf_handles_constant_similarities(self):
        matrix = np.ones((10, 3))
        pdf = cross_view_similarity(matrix, matrix).pdf()
        assert np.isfinite(pdf["density"]).all()


class TestGBGCNAnalyses:
    def test_view_similarities_keys_and_ranges(self, trained_gbgcn):
        distributions = gbgcn_view_similarities(trained_gbgcn)
        assert set(distributions) == {"user_in_view", "item_in_view", "user_cross_view", "item_cross_view"}
        for distribution in distributions.values():
            assert np.all(distribution.similarities <= 1.0 + 1e-9)
            assert np.all(distribution.similarities >= -1.0 - 1e-9)

    def test_tsne_projection_shapes(self, trained_gbgcn):
        projections = tsne_projection(
            trained_gbgcn, num_users=15, num_items=15,
            config=TSNEConfig(num_iterations=30, perplexity=5),
        )
        assert projections["user_initiator"].shape == (15, 2)
        assert projections["item_participant"].shape == (15, 2)
        assert projections["user_sample"].shape == (15,)
