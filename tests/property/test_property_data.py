"""Property-based tests of the data layer (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.data import (
    BeibeiLikeConfig,
    GroupBuyingBehavior,
    compute_statistics,
    generate_dataset,
    leave_one_out_split,
    to_user_item_interactions,
)


@settings(max_examples=30, deadline=None)
@given(
    initiator=st.integers(0, 50),
    item=st.integers(0, 50),
    participants=st.lists(st.integers(0, 50), max_size=8),
    threshold=st.integers(1, 5),
)
def test_behavior_invariants(initiator, item, participants, threshold):
    participants = [p for p in participants if p != initiator]
    behavior = GroupBuyingBehavior(initiator, item, tuple(participants), threshold)
    # Participants are unique, sorted, and never include the initiator.
    assert list(behavior.participants) == sorted(set(participants))
    assert behavior.initiator not in behavior.participants
    assert behavior.is_successful == (len(behavior.participants) >= threshold)
    assert behavior.group_size == len(behavior.participants) + 1


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_generated_dataset_invariants(seed):
    dataset = generate_dataset(BeibeiLikeConfig(num_users=60, num_items=25, num_behaviors=150, seed=seed))
    stats = compute_statistics(dataset)
    assert stats.num_successful + stats.num_failed == stats.num_behaviors
    # Every participant must be a friend of the initiator.
    friends = dataset.friend_lists()
    for behavior in dataset.behaviors:
        assert all(p in friends[behavior.initiator] for p in behavior.participants)


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_split_preserves_behavior_count(seed):
    dataset = generate_dataset(BeibeiLikeConfig(num_users=60, num_items=25, num_behaviors=200, seed=seed))
    split = leave_one_out_split(dataset, seed=seed)
    assert split.train.num_behaviors + len(split.test) + len(split.validation) == dataset.num_behaviors
    assert set(split.test) == set(split.validation)


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_conversion_modes_are_nested(seed):
    dataset = generate_dataset(BeibeiLikeConfig(num_users=60, num_items=25, num_behaviors=150, seed=seed))
    oi_pairs = set(map(tuple, to_user_item_interactions(dataset, "oi").pairs.tolist()))
    both_pairs = set(map(tuple, to_user_item_interactions(dataset, "both").pairs.tolist()))
    assert oi_pairs <= both_pairs
