"""Property-based tests of dataset transforms, serialization and calibration."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.data import (
    BeibeiLikeConfig,
    compute_statistics,
    filter_min_interactions,
    generate_dataset,
    load_beibei_format,
    remap_ids,
    save_beibei_format,
    subsample_behaviors,
)
from repro.data.synthetic import calibrate_join_bias, success_probability


def _small_dataset(seed):
    return generate_dataset(BeibeiLikeConfig(num_users=60, num_items=25, num_behaviors=150, seed=seed))


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(0, 10_000), min_count=st.integers(0, 4))
def test_filtering_is_monotone_and_idempotent(seed, min_count):
    dataset = _small_dataset(seed)
    filtered = filter_min_interactions(dataset, min_count, min_count)
    # Filtering never adds behaviors and applying it twice changes nothing.
    assert filtered.num_behaviors <= dataset.num_behaviors
    twice = filter_min_interactions(filtered, min_count, min_count)
    assert twice.behaviors == filtered.behaviors


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_remap_preserves_interaction_structure(seed):
    dataset = _small_dataset(seed)
    remapped, mapping = remap_ids(dataset)
    assert remapped.num_users == len(mapping.user_map)
    assert remapped.num_items == len(mapping.item_map)
    # The multiset of (|participants|, success) signatures is unchanged.
    original = sorted((len(b.participants), b.is_successful) for b in dataset.behaviors)
    new = sorted((len(b.participants), b.is_successful) for b in remapped.behaviors)
    assert original == new


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(0, 10_000), fraction=st.floats(0.2, 1.0))
def test_subsample_size_bounds(seed, fraction):
    dataset = _small_dataset(seed)
    subsampled = subsample_behaviors(dataset, fraction, seed=seed)
    assert 1 <= subsampled.num_behaviors <= dataset.num_behaviors
    # All kept behaviors existed in the original log.
    original = set(dataset.behaviors)
    assert all(behavior in original for behavior in subsampled.behaviors)


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_beibei_format_roundtrip(seed, tmp_path_factory):
    dataset = _small_dataset(seed)
    directory = tmp_path_factory.mktemp(f"beibei-{seed}")
    save_beibei_format(dataset, directory)
    loaded = load_beibei_format(directory, num_users=dataset.num_users, num_items=dataset.num_items)
    assert compute_statistics(loaded).as_dict() == compute_statistics(dataset).as_dict()


@settings(max_examples=20, deadline=None)
@given(
    logits=st.lists(st.floats(-4, 4), min_size=1, max_size=8),
    threshold=st.integers(1, 8),
    bias=st.floats(-3, 3),
)
def test_success_probability_is_a_probability_and_monotone_in_bias(logits, threshold, bias):
    logits = np.asarray(logits)
    probability = success_probability(logits, threshold, bias)
    assert 0.0 <= probability <= 1.0
    assert success_probability(logits, threshold, bias + 1.0) >= probability - 1e-12


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 1000), target=st.floats(0.2, 0.9))
def test_calibration_hits_reachable_targets(seed, target):
    rng = np.random.default_rng(seed)
    logit_sets = [rng.normal(size=int(rng.integers(2, 8))) for _ in range(200)]
    thresholds = [1 for _ in logit_sets]  # threshold 1 keeps every target reachable
    bias = calibrate_join_bias(logit_sets, thresholds, target)
    expected = np.mean([success_probability(l, t, bias) for l, t in zip(logit_sets, thresholds)])
    assert abs(expected - target) < 0.02
