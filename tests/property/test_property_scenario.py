"""Property-based tests of the scenario engine (hypothesis).

Population invariants (role mix, Zipf tail, social-graph canonical form,
sub-scale slices always valid) and traffic invariants (sorted arrivals,
burst multipliers, ID ranges) across randomized configurations —
including the boundary scales the PR 6 ``validate_user_ids`` bugs showed
are where off-by-one errors live.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import (
    ScenarioConfig,
    fit_zipf_exponent,
    generate_population,
)
from repro.serving import BASELINE_PHASE, FlashBurst, TrafficConfig, TrafficModel

pytestmark = pytest.mark.scenario


# ----------------------------------------------------------------------
# Population invariants
# ----------------------------------------------------------------------
def population_configs():
    """Randomized small configs, biased toward structural edge cases.

    The cross-field constraints (num_communities <= num_users,
    mean_friends < num_users) are resolved *before* the single
    ScenarioConfig construction — its __post_init__ validates eagerly,
    so clamping in a .map after st.builds(ScenarioConfig, ...) would be
    too late.
    """

    def build(num_users, num_items, num_behaviors, num_communities,
              friend_fraction, community_mix, initiator_fraction,
              block_size, seed):
        return ScenarioConfig(
            num_users=num_users,
            num_items=num_items,
            num_behaviors=num_behaviors,
            num_communities=min(num_communities, num_users),
            # mean_friends drawn as a fraction of the population so any
            # (num_users, mean_friends) pair is structurally valid.
            mean_friends=min(friend_fraction * num_users / 2.0, num_users - 1),
            community_mix=community_mix,
            initiator_fraction=initiator_fraction,
            block_size=block_size,
            seed=seed,
        )

    return st.builds(
        build,
        num_users=st.integers(2, 300),
        num_items=st.integers(1, 80),
        num_behaviors=st.integers(1, 500),
        num_communities=st.integers(1, 8),
        friend_fraction=st.floats(0.0, 1.9),
        community_mix=st.sampled_from([0.0, 0.5, 1.0]),
        initiator_fraction=st.sampled_from([0.0, 0.3, 1.0]),
        block_size=st.integers(1, 128),
        seed=st.integers(0, 10_000),
    )


@settings(max_examples=25, deadline=None)
@given(config=population_configs())
def test_population_invariants(config):
    population = generate_population(config)

    # Social graph: canonical (low < high), in-range, no duplicates.
    edges = population.edges
    if edges.size:
        assert (edges[:, 0] < edges[:, 1]).all()
        assert edges.min() >= 0 and edges.max() < config.num_users
        keys = edges[:, 0] * config.num_users + edges[:, 1]
        assert np.unique(keys).size == keys.size

    # Roles: every launch comes from an initiator-role user; at least one
    # initiator always exists (even at initiator_fraction=0).
    assert population.roles.sum() >= 1
    assert population.roles[population.initiators].all()

    # Behaviors: counts, ranges and CSR structure.
    assert population.num_behaviors == config.num_behaviors
    assert population.initiators.min() >= 0
    assert population.initiators.max() < config.num_users
    assert population.items.min() >= 0 and population.items.max() < config.num_items
    assert (population.thresholds >= config.min_threshold).all()
    assert (population.thresholds <= config.max_threshold).all()
    assert (np.diff(population.participants_indptr) >= 0).all()
    assert population.participants_indptr[0] == 0
    assert population.participants_indptr[-1] == population.participants_flat.size
    if population.participants_flat.size:
        assert population.participants_flat.min() >= 0
        assert population.participants_flat.max() < config.num_users
    assert population.participant_counts().max(initial=0) <= config.max_invited


@settings(max_examples=15, deadline=None)
@given(
    config=population_configs(),
    users_fraction=st.floats(0.01, 1.0),
    items_fraction=st.floats(0.01, 1.0),
)
def test_every_subscale_slice_is_a_valid_dataset(config, users_fraction, items_fraction):
    population = generate_population(config)
    users = max(1, int(config.num_users * users_fraction))
    items = max(1, int(config.num_items * items_fraction))
    dataset = population.to_dataset(num_users=users, num_items=items)
    # GroupBuyingDataset validates IDs on construction; re-assert the
    # boundary explicitly (the PR 6 class of bug: <= where < belongs).
    assert dataset.num_users == users and dataset.num_items == items
    for behavior in dataset.behaviors:
        assert 0 <= behavior.initiator < users
        assert 0 <= behavior.item < items
        assert all(0 <= p < users for p in behavior.participants)
    for edge in dataset.social_edges:
        assert 0 <= edge.user_a < users and 0 <= edge.user_b < users


@settings(max_examples=8, deadline=None)
@given(
    initiator_fraction=st.floats(0.05, 0.95),
    seed=st.integers(0, 10_000),
)
def test_role_mix_within_tolerance(initiator_fraction, seed):
    config = ScenarioConfig(
        num_users=2000,
        num_items=50,
        num_behaviors=100,
        num_communities=10,
        initiator_fraction=initiator_fraction,
        block_size=512,
        seed=seed,
    )
    population = generate_population(config)
    # Binomial(2000, f): 4 sigma < 0.045 everywhere in the tested range.
    assert population.roles.mean() == pytest.approx(initiator_fraction, abs=0.05)


@settings(max_examples=5, deadline=None)
@given(
    exponent=st.floats(0.7, 1.4),
    seed=st.integers(0, 10_000),
)
def test_zipf_tail_exponent_fit(exponent, seed):
    config = ScenarioConfig(
        num_users=1000,
        num_items=800,
        num_behaviors=40_000,
        num_communities=10,
        item_exponent=exponent,
        block_size=20_000,
        seed=seed,
    )
    population = generate_population(config)
    fitted = fit_zipf_exponent(population.item_frequencies())
    assert fitted == pytest.approx(exponent, abs=0.3)


# ----------------------------------------------------------------------
# Traffic invariants
# ----------------------------------------------------------------------
def traffic_configs():
    def build(base_rate, amplitude, burst_start, multiplier, rise, hold, decay, seed):
        duration = 8.0
        burst = FlashBurst(
            start_seconds=min(burst_start, duration - (rise + hold + decay)),
            multiplier=multiplier,
            rise_seconds=rise,
            hold_seconds=hold,
            decay_seconds=decay,
            name="b0",
        )
        return TrafficConfig(
            duration_seconds=duration,
            base_rate_per_second=base_rate,
            diurnal_amplitude=amplitude,
            diurnal_period_seconds=duration,
            bursts=(burst,),
            seed=seed,
        )

    return st.builds(
        build,
        base_rate=st.floats(30.0, 120.0),
        amplitude=st.floats(0.0, 0.5),
        burst_start=st.floats(0.0, 6.0),
        multiplier=st.floats(2.0, 8.0),
        rise=st.floats(0.1, 1.0),
        hold=st.floats(0.5, 2.0),
        decay=st.floats(0.1, 1.0),
        seed=st.integers(0, 10_000),
    )


@settings(max_examples=20, deadline=None)
@given(
    config=traffic_configs(),
    num_users=st.integers(1, 400),
    num_items=st.integers(1, 100),
)
def test_traffic_invariants(config, num_users, num_items):
    stream = TrafficModel(config).generate(num_users=num_users, num_items=num_items)

    # Arrival timestamps sorted, inside [0, duration).
    assert (np.diff(stream.timestamps) >= 0.0).all()
    assert stream.timestamps[0] >= 0.0
    assert stream.timestamps[-1] < config.duration_seconds

    # All IDs in range — generated down to single-user/single-item edges.
    assert stream.users.min() >= 0 and stream.users.max() < num_users
    assert stream.items.min() >= 0 and stream.items.max() < num_items

    # Phase labels partition the stream and match the burst window.
    counts = stream.phase_counts()
    assert sum(counts.values()) == len(stream)
    burst = config.bursts[0]
    in_burst = stream.phase_index == 1
    if in_burst.any():
        assert stream.timestamps[in_burst].min() >= burst.start_seconds
        assert stream.timestamps[in_burst].max() < burst.end_seconds

    # Determinism: a regenerated stream is byte-identical.
    assert TrafficModel(config).generate(num_users, num_items).digest() == stream.digest()


@settings(max_examples=10, deadline=None)
@given(
    multiplier=st.floats(3.0, 8.0),
    seed=st.integers(0, 10_000),
)
def test_burst_window_contains_multiplier(multiplier, seed):
    config = TrafficConfig(
        duration_seconds=10.0,
        base_rate_per_second=100.0,
        diurnal_amplitude=0.0,
        bursts=(
            FlashBurst(
                start_seconds=3.0,
                multiplier=multiplier,
                rise_seconds=0.5,
                hold_seconds=3.0,
                decay_seconds=0.5,
                name="plateau",
            ),
        ),
        seed=seed,
    )
    stream = TrafficModel(config).generate(num_users=100, num_items=20)
    # On the plateau (rise/decay excluded) the realized rate must reflect
    # the configured multiplier: Poisson noise at >= 300 expected arrivals
    # per second stays well within +/-35%.
    plateau = (stream.timestamps >= 3.5) & (stream.timestamps < 6.5)
    plateau_rate = float(plateau.sum()) / 3.0
    assert plateau_rate == pytest.approx(100.0 * multiplier, rel=0.35)
