"""Property-based tests of the ranking metrics (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.eval import MetricAccumulator, ndcg_at_k, rank_of_positive, recall_at_k


@settings(max_examples=50, deadline=None)
@given(rank=st.integers(0, 100), k=st.integers(1, 50))
def test_metrics_bounded(rank, k):
    assert 0.0 <= recall_at_k(rank, k) <= 1.0
    assert 0.0 <= ndcg_at_k(rank, k) <= 1.0
    assert ndcg_at_k(rank, k) <= recall_at_k(rank, k)


@settings(max_examples=50, deadline=None)
@given(rank=st.integers(0, 100), k=st.integers(1, 49))
def test_metrics_monotone_in_k(rank, k):
    assert recall_at_k(rank, k) <= recall_at_k(rank, k + 1)
    assert ndcg_at_k(rank, k) <= ndcg_at_k(rank, k + 1)


@settings(max_examples=30, deadline=None)
@given(
    scores=st.lists(st.floats(-5, 5, allow_nan=False), min_size=2, max_size=50),
    bonus=st.floats(0.001, 10.0),
)
def test_raising_positive_score_never_hurts_rank(scores, bonus):
    scores = np.asarray(scores)
    original = rank_of_positive(scores)
    boosted = scores.copy()
    boosted[0] += bonus
    assert rank_of_positive(boosted) <= original


@settings(max_examples=30, deadline=None)
@given(ranks=st.lists(st.integers(0, 30), min_size=1, max_size=40))
def test_accumulator_metrics_are_means(ranks):
    accumulator = MetricAccumulator(cutoffs=(5,))
    accumulator.extend(ranks)
    results = accumulator.results()
    assert np.isclose(results["Recall@5"], np.mean([recall_at_k(r, 5) for r in ranks]))
    assert np.isclose(results["NDCG@5"], np.mean([ndcg_at_k(r, 5) for r in ranks]))
