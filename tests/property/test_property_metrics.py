"""Property-based tests of the ranking metrics (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.eval import MetricAccumulator, ndcg_at_k, rank_of_positive, recall_at_k


@settings(max_examples=50, deadline=None)
@given(rank=st.integers(0, 100), k=st.integers(1, 50))
def test_metrics_bounded(rank, k):
    assert 0.0 <= recall_at_k(rank, k) <= 1.0
    assert 0.0 <= ndcg_at_k(rank, k) <= 1.0
    assert ndcg_at_k(rank, k) <= recall_at_k(rank, k)


@settings(max_examples=50, deadline=None)
@given(rank=st.integers(0, 100), k=st.integers(1, 49))
def test_metrics_monotone_in_k(rank, k):
    assert recall_at_k(rank, k) <= recall_at_k(rank, k + 1)
    assert ndcg_at_k(rank, k) <= ndcg_at_k(rank, k + 1)


@settings(max_examples=30, deadline=None)
@given(
    scores=st.lists(st.floats(-5, 5, allow_nan=False), min_size=2, max_size=50),
    bonus=st.floats(0.001, 10.0),
)
def test_raising_positive_score_never_hurts_rank(scores, bonus):
    scores = np.asarray(scores)
    original = rank_of_positive(scores)
    boosted = scores.copy()
    boosted[0] += bonus
    assert rank_of_positive(boosted) <= original


@settings(max_examples=30, deadline=None)
@given(ranks=st.lists(st.integers(0, 30), min_size=1, max_size=40))
def test_accumulator_metrics_are_means(ranks):
    accumulator = MetricAccumulator(cutoffs=(5,))
    accumulator.extend(ranks)
    results = accumulator.results()
    assert np.isclose(results["Recall@5"], np.mean([recall_at_k(r, 5) for r in ranks]))
    assert np.isclose(results["NDCG@5"], np.mean([ndcg_at_k(r, 5) for r in ranks]))


# ----------------------------------------------------------------------
# LatencyHistogram.percentile: the estimate is conservative and bounded.
# ----------------------------------------------------------------------
from repro.serving import LatencyHistogram

#: Adjacent bucket bounds differ by this factor (20 buckets per decade), so
#: a percentile estimate can overshoot the true value by at most one bucket.
_BUCKET_RATIO = 10.0 ** (1.0 / 20.0)

_IN_BOUNDS = st.floats(min_value=1e-6, max_value=64.0, allow_nan=False, allow_infinity=False)


def _true_percentile(samples, q):
    """The exact value the histogram's rank rule targets: the ``rank``-th
    smallest sample with ``rank = max(1, round(q / 100 * n))``."""
    ordered = sorted(samples)
    rank = max(1, int(round(q / 100.0 * len(ordered))))
    return ordered[rank - 1]


@settings(max_examples=60, deadline=None)
@given(samples=st.lists(_IN_BOUNDS, min_size=1, max_size=200), q=st.floats(0.0, 100.0))
def test_histogram_percentile_never_undershoots(samples, q):
    histogram = LatencyHistogram()
    for value in samples:
        histogram.record(value)
    assert histogram.percentile(q) >= _true_percentile(samples, q)


@settings(max_examples=60, deadline=None)
@given(samples=st.lists(_IN_BOUNDS, min_size=1, max_size=200), q=st.floats(0.0, 100.0))
def test_histogram_percentile_overshoots_at_most_one_bucket(samples, q):
    # Holds for in-bounds samples (1 µs … 64 s): the estimate is the upper
    # bound of the bucket containing the target rank, at most one bucket
    # ratio above the true value (with a hair of float slack).
    histogram = LatencyHistogram()
    for value in samples:
        histogram.record(value)
    assert histogram.percentile(q) <= _true_percentile(samples, q) * _BUCKET_RATIO * (1 + 1e-12)


@settings(max_examples=60, deadline=None)
@given(samples=st.lists(_IN_BOUNDS, min_size=1, max_size=100))
def test_histogram_percentile_edges_are_exact(samples):
    histogram = LatencyHistogram()
    for value in samples:
        histogram.record(value)
    # q=100 targets the maximum and the clamp makes it exact; q=0 targets
    # the minimum's bucket and never reports below the observed minimum.
    assert histogram.percentile(100.0) == max(samples)
    assert histogram.percentile(0.0) >= min(samples)
    assert histogram.percentile(0.0) <= min(samples) * _BUCKET_RATIO * (1 + 1e-12)


@settings(max_examples=40, deadline=None)
@given(
    samples=st.lists(_IN_BOUNDS, min_size=1, max_size=50),
    overflow=st.lists(st.floats(min_value=64.001, max_value=1e4, allow_nan=False), min_size=1, max_size=10),
)
def test_histogram_overflow_bucket_reports_observed_max(samples, overflow):
    # Samples beyond the last bound (64 s) share one overflow bucket whose
    # "upper bound" is the exact observed maximum — tail latency is never
    # truncated to 64 s.
    histogram = LatencyHistogram()
    for value in samples + overflow:
        histogram.record(value)
    assert histogram.percentile(100.0) == max(overflow)
    assert histogram.percentile(99.9) <= max(overflow)


def test_histogram_percentile_empty_and_invalid_q():
    histogram = LatencyHistogram()
    assert histogram.percentile(50.0) == 0.0
    histogram.record(0.5)
    import pytest

    with pytest.raises(ValueError, match=r"\[0, 100\]"):
        histogram.percentile(101.0)
    with pytest.raises(ValueError, match=r"\[0, 100\]"):
        histogram.percentile(-0.5)
