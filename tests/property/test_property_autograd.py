"""Property-based tests of the autograd engine (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.autograd import Tensor, check_gradients, log_sigmoid, sigmoid, softmax

SHAPES = st.tuples(st.integers(1, 4), st.integers(1, 4))
FINITE = hnp.arrays(
    dtype=np.float64,
    shape=SHAPES,
    elements=st.floats(-3.0, 3.0, allow_nan=False, allow_infinity=False),
)


@settings(max_examples=25, deadline=None)
@given(FINITE, FINITE)
def test_addition_commutes(a, b):
    if a.shape != b.shape:
        return
    left = (Tensor(a) + Tensor(b)).data
    right = (Tensor(b) + Tensor(a)).data
    assert np.allclose(left, right)


@settings(max_examples=25, deadline=None)
@given(FINITE)
def test_sigmoid_bounded_and_monotone(values):
    out = sigmoid(Tensor(values)).data
    assert np.all(out > 0) and np.all(out < 1)
    flat = np.sort(values.flatten())
    assert np.all(np.diff(sigmoid(Tensor(flat)).data) >= -1e-12)


@settings(max_examples=25, deadline=None)
@given(FINITE)
def test_log_sigmoid_is_log_of_sigmoid(values):
    assert np.allclose(log_sigmoid(Tensor(values)).data, np.log(sigmoid(Tensor(values)).data), atol=1e-10)


@settings(max_examples=25, deadline=None)
@given(FINITE)
def test_softmax_rows_normalized(values):
    out = softmax(Tensor(values), axis=-1).data
    assert np.allclose(out.sum(axis=-1), 1.0)
    assert np.all(out >= 0)


@settings(max_examples=15, deadline=None)
@given(FINITE)
def test_elementwise_chain_gradients_match_finite_differences(values):
    tensor = Tensor(values, requires_grad=True)
    check_gradients(lambda: (sigmoid(tensor) * tensor + tensor ** 2).sum(), {"t": tensor})


@settings(max_examples=15, deadline=None)
@given(
    hnp.arrays(dtype=np.float64, shape=st.tuples(st.integers(1, 3), st.integers(1, 3)),
               elements=st.floats(-2.0, 2.0, allow_nan=False)),
    st.integers(1, 3),
)
def test_matmul_gradients_match_finite_differences(matrix, inner):
    left = Tensor(matrix, requires_grad=True)
    right = Tensor(np.random.default_rng(0).normal(size=(matrix.shape[1], inner)), requires_grad=True)
    check_gradients(lambda: (left @ right).sum(), {"left": left, "right": right})
