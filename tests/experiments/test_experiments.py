"""Integration tests: every table/figure driver runs at tiny scale."""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentConfig,
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    PAPER_TABLE5,
    prepare_workload,
    run_figure5,
    run_figure6,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
)
from repro.experiments.figure6 import view_separation_score
from repro.experiments.runner import EXPERIMENTS


@pytest.fixture(scope="module")
def workload():
    return prepare_workload(ExperimentConfig.tiny())


class TestConfigPresets:
    def test_presets_exist(self):
        assert ExperimentConfig.tiny().num_eval_negatives == 50
        assert ExperimentConfig.quick().dataset.num_users == 400
        assert ExperimentConfig.paper().dataset.num_users == 190_080

    def test_from_environment_defaults_to_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXPERIMENT_SCALE", raising=False)
        assert ExperimentConfig.from_environment().dataset.num_users == 400
        monkeypatch.setenv("REPRO_EXPERIMENT_SCALE", "tiny")
        assert ExperimentConfig.from_environment().dataset.num_users == 80

    def test_scaled_epochs(self):
        assert ExperimentConfig.tiny().scaled_epochs(7).training.num_epochs == 7


class TestTable2:
    def test_runs_and_formats(self, workload):
        result = run_table2(workload=workload)
        table = result.format()
        assert "#Users" in table and "Paper (Beibei)" in table
        assert result.statistics.num_behaviors == workload.split.full.num_behaviors

    def test_paper_reference_consistency(self):
        assert PAPER_TABLE2["#Successful"] + PAPER_TABLE2["#Failed"] == PAPER_TABLE2["#Group-buying Behaviors"]


class TestTable3:
    def test_subset_run(self, workload):
        result = run_table3(workload=workload, model_names=["MF", "GBMF", "GBGCN"])
        assert set(result.metrics) == {"MF", "GBMF", "GBGCN"}
        for metrics in result.metrics.values():
            assert 0.0 <= metrics["Recall@10"] <= 1.0
        assert "Improvement" in result.format()
        assert result.best_baseline("Recall@10") in {"MF", "GBMF"}
        assert isinstance(result.improvements()["NDCG@10"], float)
        p_value = result.significance_p_value("NDCG@10")
        assert p_value is None or 0.0 <= p_value <= 1.0

    def test_paper_reference_shape(self):
        # In the paper GBGCN wins every metric and GBMF is the best baseline.
        for metric, value in PAPER_TABLE3["GBGCN"].items():
            assert value >= max(PAPER_TABLE3[m][metric] for m in PAPER_TABLE3 if m != "GBGCN")
        assert PAPER_TABLE3["GBMF"]["Recall@10"] > PAPER_TABLE3["MF"]["Recall@10"]


class TestTable4:
    def test_subset_run(self, workload):
        result = run_table4(workload=workload, model_names=["MF", "GBGCN"])
        assert result.timings["GBGCN"].train_seconds_per_epoch > 0
        assert "Train (s/epoch)" in result.format()

    def test_paper_reference_shape(self):
        assert PAPER_TABLE4["GBGCN"]["train"] > PAPER_TABLE4["MF"]["train"]


class TestTable5:
    def test_subset_run(self, workload):
        result = run_table5(workload=workload, variants=["GBGCN", "Without User Roles"])
        assert set(result.metrics) == {"GBGCN", "Without User Roles"}
        assert isinstance(result.relative_change("Without User Roles", "Recall@10"), float)
        assert "Improve." in result.format()

    def test_paper_reference_shape(self):
        for variant, metrics in PAPER_TABLE5.items():
            if variant == "GBGCN":
                continue
            assert metrics["NDCG@10"] <= PAPER_TABLE5["GBGCN"]["NDCG@10"]


class TestFigures:
    def test_figure5_runs(self, workload):
        result = run_figure5(workload=workload)
        assert set(result.distributions) == {
            "user_in_view", "item_in_view", "user_cross_view", "item_cross_view",
        }
        assert "Mean cosine similarity" in result.format()

    def test_figure6_separation_score(self):
        near = np.random.default_rng(0).normal(0, 0.5, size=(30, 2))
        far = near + np.array([10.0, 0.0])
        assert view_separation_score(near, far) > 1.0
        assert view_separation_score(near, near) < 0.1

    def test_registry_contains_all_experiments(self):
        assert set(EXPERIMENTS) == {"table2", "table3", "table4", "table5", "figure4", "figure5", "figure6", "sparsity"}
