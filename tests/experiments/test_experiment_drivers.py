"""Experiment drivers and the command-line runner (tiny scale only)."""

import pytest

from repro.experiments import (
    EXPERIMENTS,
    ExperimentConfig,
    SparsityResult,
    prepare_workload,
    run_sparsity,
    run_table2,
)
from repro.experiments.runner import main


@pytest.fixture(scope="module")
def tiny_workload():
    return prepare_workload(ExperimentConfig.tiny())


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {"table2", "table3", "table4", "table5", "figure4", "figure5", "figure6", "sparsity"}
        assert expected <= set(EXPERIMENTS)

    def test_every_entry_is_callable(self):
        assert all(callable(runner) for runner in EXPERIMENTS.values())


class TestTable2Driver:
    def test_statistics_match_workload_dataset(self, tiny_workload):
        result = run_table2(workload=tiny_workload)
        text = result.format()
        assert str(tiny_workload.split.full.num_users) in text
        assert "Users" in text or "users" in text


class TestSparsityDriver:
    def test_run_on_tiny_workload(self, tiny_workload):
        result = run_sparsity(
            workload=tiny_workload, model_names=("MF",), fractions=(0.5, 1.0)
        )
        assert isinstance(result, SparsityResult)
        text = result.format()
        assert "MF" in text
        assert "%" in text
        assert result.study.degradation("MF") >= 0.0


class TestRunnerCLI:
    def test_table2_via_cli(self, capsys):
        exit_code = main(["table2", "--scale", "tiny"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "table2" in output

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["not-an-experiment"])
