"""Utilities: RNG management, timers, table rendering, logging."""

import logging
import time

import numpy as np
import pytest

from repro.utils import (
    SeedSequenceFactory,
    Stopwatch,
    Timer,
    configure_logging,
    format_float,
    format_table,
    get_logger,
    make_rng,
    spawn_rngs,
)


class TestRNG:
    def test_make_rng_deterministic(self):
        assert make_rng(5).integers(1000) == make_rng(5).integers(1000)

    def test_spawn_rngs_independent(self):
        rngs = spawn_rngs(1, ["a", "b"])
        assert set(rngs) == {"a", "b"}
        assert rngs["a"].integers(10**9) != rngs["b"].integers(10**9)

    def test_factory_streams_are_reproducible(self):
        first = SeedSequenceFactory(3)
        second = SeedSequenceFactory(3)
        assert first.next_rng().integers(10**9) == second.next_rng().integers(10**9)

    def test_factory_streams_differ(self):
        factory = SeedSequenceFactory(3)
        assert factory.next_rng().integers(10**9) != factory.next_rng().integers(10**9)

    def test_factory_named(self):
        named = SeedSequenceFactory(0).named(["x", "y"])
        assert set(named) == {"x", "y"}


class TestTimers:
    def test_stopwatch_accumulates(self):
        watch = Stopwatch()
        with watch:
            time.sleep(0.01)
        assert watch.elapsed > 0.005

    def test_stopwatch_stop_without_start(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_timer_records_means(self):
        timer = Timer()
        for _ in range(3):
            with timer.time("phase"):
                time.sleep(0.002)
        record = timer.records["phase"]
        assert record.calls == 3
        assert timer.mean("phase") > 0
        assert timer.mean("missing") == 0.0
        assert timer.summary()[0].name == "phase"


class TestTables:
    def test_format_float(self):
        assert format_float(0.123456) == "0.1235"
        assert format_float(1.0, digits=2) == "1.00"

    def test_format_table_alignment_and_values(self):
        table = format_table(["name", "value"], [("a", 0.5), ("long-name", 2)])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "0.5000" in table and "long-name" in table
        assert all(len(line) == len(lines[0]) for line in lines[2:])


class TestLogging:
    def test_get_logger_namespacing(self):
        assert get_logger("training").name == "repro.training"
        assert get_logger("repro.core").name == "repro.core"
        assert get_logger().name == "repro"

    def test_configure_logging_idempotent(self):
        configure_logging(level=logging.INFO)
        handler_count = len(logging.getLogger("repro").handlers)
        configure_logging(level=logging.DEBUG)
        assert len(logging.getLogger("repro").handlers) == handler_count
        assert logging.getLogger("repro").level == logging.DEBUG
