"""Every documented entry point under ``examples/`` must actually run.

README and the docs walk through these scripts; an API change that breaks
one would otherwise only surface when a reader hits it.  Each script is
executed in a subprocess (its own interpreter, like a reader would run it)
with ``REPRO_EXAMPLE_SCALE=tiny``, the knob every example honors to shrink
its dataset and epoch budget to smoke-test size.

The test discovers scripts by globbing, so a future example is covered the
day it lands — or fails loudly here if it forgets the tiny knob.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_discovered():
    assert len(EXAMPLE_SCRIPTS) >= 8, EXAMPLE_SCRIPTS


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS, ids=lambda path: path.stem)
def test_example_runs_clean_at_tiny_scale(script):
    env = dict(os.environ)
    env["REPRO_EXAMPLE_SCALE"] = "tiny"
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, str(script)],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, (
        f"{script.name} exited with {completed.returncode}\n"
        f"--- stdout ---\n{completed.stdout[-4000:]}\n"
        f"--- stderr ---\n{completed.stderr[-4000:]}"
    )
    assert completed.stdout.strip(), f"{script.name} printed nothing"


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS, ids=lambda path: path.stem)
def test_example_honors_the_tiny_knob(script):
    """Every example must read REPRO_EXAMPLE_SCALE so the smoke run stays fast."""
    assert "REPRO_EXAMPLE_SCALE" in script.read_text(), (
        f"{script.name} ignores REPRO_EXAMPLE_SCALE; add the tiny-scale knob "
        f"(see examples/serving_catalog.py) so the smoke test stays fast"
    )
