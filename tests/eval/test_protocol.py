"""Leave-one-out evaluation protocol with oracle and adversarial scorers."""

import numpy as np
import pytest

from repro.eval import LeaveOneOutEvaluator
from repro.models.base import DataMode, RecommenderModel


class OracleModel(RecommenderModel):
    """Always ranks the held-out item first (it is candidate index 0)."""

    data_mode = DataMode.GROUP_BUYING

    def __init__(self, split):
        super().__init__(split.full.num_users, split.full.num_items)
        self._test = split.test

    def rank_scores(self, user, item_ids):
        positive = self._test[user].item
        return (np.asarray(item_ids) == positive).astype(float)


class WorstModel(RecommenderModel):
    """Always ranks the held-out item last."""

    data_mode = DataMode.GROUP_BUYING

    def __init__(self, split):
        super().__init__(split.full.num_users, split.full.num_items)
        self._test = split.test

    def rank_scores(self, user, item_ids):
        positive = self._test[user].item
        return -(np.asarray(item_ids) == positive).astype(float)


class TestLeaveOneOutEvaluator:
    def test_oracle_model_scores_one(self, small_split):
        evaluator = LeaveOneOutEvaluator(small_split, num_negatives=20, seed=0)
        result = evaluator.evaluate_test(OracleModel(small_split))
        assert result["Recall@3"] == 1.0
        assert result["NDCG@20"] == 1.0
        assert result.num_users == len(small_split.test)

    def test_worst_model_scores_zero(self, small_split):
        evaluator = LeaveOneOutEvaluator(small_split, num_negatives=20, seed=0)
        result = evaluator.evaluate_test(WorstModel(small_split))
        # Some users have fewer than 20 valid negatives at this tiny scale,
        # so assert on a cutoff every candidate list comfortably exceeds.
        assert result["Recall@10"] == 0.0
        assert result["NDCG@10"] == 0.0

    def test_validation_evaluates_validation_holdout(self, small_split):
        evaluator = LeaveOneOutEvaluator(small_split, num_negatives=20, seed=0)

        class ValidationOracle(OracleModel):
            def __init__(self, split):
                super().__init__(split)
                self._test = split.validation

        assert evaluator.evaluate_validation(ValidationOracle(small_split))["Recall@3"] == 1.0

    def test_ranks_exposed_for_significance(self, small_split):
        evaluator = LeaveOneOutEvaluator(small_split, num_negatives=20, seed=0)
        result = evaluator.evaluate_test(OracleModel(small_split))
        assert result.ranks.shape == (len(small_split.test),)
        assert (result.ranks == 0).all()
