"""Regression tests: the batched full-ranking path must match the per-user
reference oracle exactly, and ``score_batch`` must match ``rank_scores``.

The batched evaluator replaces per-user Python loops with block matrix
products; these tests pin the contract that the refactor changes *speed
only* — metrics, ranks and scores are identical on seeded synthetic data
for GBGCN and the baselines.
"""

import numpy as np
import pytest

from repro.eval import FullRankingEvaluator
from repro.models import build_model

#: GBGCN plus at least two baselines (per the regression-test requirement);
#: the extra rows cover every distinct score_batch implementation shape.
PARITY_MODELS = [
    "GBGCN",
    "MF",
    "LightGCN",
    "GBMF",
    "SIGR",
    "NCF",
    "ItemPop",
    "ItemKNN",
]


@pytest.fixture(scope="module")
def models(small_split):
    return {
        name: build_model(name, small_split.train, rng=np.random.default_rng(17))
        for name in PARITY_MODELS
    }


class TestFullRankingParity:
    @pytest.mark.parametrize("name", PARITY_MODELS)
    def test_test_holdout_identical(self, small_split, models, name):
        model = models[name]
        evaluator = FullRankingEvaluator(small_split, batch_size=32)
        batched = evaluator.evaluate_test(model)
        reference = evaluator.evaluate_test_loop(model)
        assert np.array_equal(batched.ranks, reference.ranks)
        assert batched.metrics == reference.metrics
        assert batched.num_users == reference.num_users

    @pytest.mark.parametrize("name", ["GBGCN", "MF", "LightGCN"])
    def test_validation_holdout_identical(self, small_split, models, name):
        model = models[name]
        evaluator = FullRankingEvaluator(small_split, batch_size=7)
        batched = evaluator.evaluate_validation(model)
        reference = evaluator.evaluate_validation_loop(model)
        assert np.array_equal(batched.ranks, reference.ranks)
        assert batched.metrics == reference.metrics

    @pytest.mark.parametrize("name", ["GBGCN", "MF"])
    def test_without_observed_exclusion(self, small_split, models, name):
        model = models[name]
        evaluator = FullRankingEvaluator(small_split, exclude_observed=False, batch_size=16)
        batched = evaluator.evaluate_test(model)
        reference = evaluator.evaluate_test_loop(model)
        assert np.array_equal(batched.ranks, reference.ranks)
        assert batched.metrics == reference.metrics

    def test_block_size_does_not_matter(self, small_split, models):
        model = models["GBGCN"]
        ranks_per_size = [
            FullRankingEvaluator(small_split, batch_size=size).evaluate_test(model).ranks
            for size in (1, 3, 1024)
        ]
        assert np.array_equal(ranks_per_size[0], ranks_per_size[1])
        assert np.array_equal(ranks_per_size[0], ranks_per_size[2])

    def test_batch_size_none_selects_reference_path(self, small_split, models):
        model = models["MF"]
        evaluator = FullRankingEvaluator(small_split, batch_size=None)
        result = evaluator.evaluate_test(model)
        reference = evaluator.evaluate_test_loop(model)
        assert np.array_equal(result.ranks, reference.ranks)

    def test_invalid_batch_size_rejected(self, small_split):
        with pytest.raises(ValueError):
            FullRankingEvaluator(small_split, batch_size=0)


class TestScoreBatchParity:
    @pytest.mark.parametrize("name", PARITY_MODELS)
    def test_rows_match_rank_scores(self, small_split, models, name):
        model = models[name]
        num_items = small_split.train.num_items
        users = np.asarray([0, 3, 11, 42 % small_split.train.num_users], dtype=np.int64)
        item_ids = np.arange(num_items, dtype=np.int64)
        model.prepare_for_evaluation()
        block = model.score_batch(users, item_ids)
        assert block.shape == (users.size, num_items)
        for row, user in enumerate(users):
            expected = np.asarray(model.rank_scores(int(user), item_ids), dtype=np.float64)
            np.testing.assert_allclose(block[row], expected, rtol=1e-10, atol=1e-12)

    def test_item_subset_block(self, small_split, models):
        model = models["GBGCN"]
        users = np.asarray([1, 2], dtype=np.int64)
        item_ids = np.asarray([5, 0, 9], dtype=np.int64)
        block = model.score_batch(users, item_ids)
        assert block.shape == (2, 3)
        full = model.score_all_items(users)
        np.testing.assert_allclose(block, full[:, item_ids], rtol=1e-10, atol=1e-12)

    def test_empty_user_block(self, small_split, models):
        model = models["MF"]
        block = model.score_batch(np.zeros(0, dtype=np.int64), np.arange(4))
        assert block.shape == (0, 4)

    def test_agree_uses_per_user_fallback(self, small_split):
        # AGREE has no cacheable user-independent embedding; the base-class
        # fallback must still produce a correct block.
        model = build_model("AGREE", small_split.train, rng=np.random.default_rng(3))
        users = np.asarray([0, 5], dtype=np.int64)
        item_ids = np.arange(min(8, small_split.train.num_items), dtype=np.int64)
        block = model.score_batch(users, item_ids)
        for row, user in enumerate(users):
            np.testing.assert_allclose(
                block[row], np.asarray(model.rank_scores(int(user), item_ids), dtype=np.float64)
            )
