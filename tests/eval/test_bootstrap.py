"""Bootstrap confidence intervals."""

import numpy as np
import pytest

from repro.eval import ConfidenceInterval, bootstrap_confidence_interval, bootstrap_metric_table


class TestBootstrapConfidenceInterval:
    def test_mean_matches_sample_mean(self):
        values = np.array([0.0, 1.0, 1.0, 0.0, 1.0])
        interval = bootstrap_confidence_interval(values, seed=0)
        assert interval.mean == pytest.approx(values.mean())

    def test_interval_contains_mean(self):
        rng = np.random.default_rng(0)
        values = rng.random(200)
        interval = bootstrap_confidence_interval(values, seed=1)
        assert interval.lower <= interval.mean <= interval.upper
        assert interval.contains(interval.mean)

    def test_degenerate_sample_has_zero_width(self):
        interval = bootstrap_confidence_interval(np.ones(50), seed=2)
        assert interval.width == pytest.approx(0.0)
        assert interval.lower == pytest.approx(1.0)

    def test_more_users_narrow_the_interval(self):
        rng = np.random.default_rng(3)
        small = bootstrap_confidence_interval(rng.random(30), seed=4)
        large = bootstrap_confidence_interval(rng.random(3000), seed=4)
        assert large.width < small.width

    def test_higher_level_widens_the_interval(self):
        rng = np.random.default_rng(5)
        values = rng.random(100)
        narrow = bootstrap_confidence_interval(values, level=0.80, seed=6)
        wide = bootstrap_confidence_interval(values, level=0.99, seed=6)
        assert wide.width >= narrow.width

    def test_deterministic_for_seed(self):
        values = np.random.default_rng(7).random(100)
        a = bootstrap_confidence_interval(values, seed=8)
        b = bootstrap_confidence_interval(values, seed=8)
        assert (a.lower, a.upper) == (b.lower, b.upper)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            bootstrap_confidence_interval([], seed=0)
        with pytest.raises(ValueError):
            bootstrap_confidence_interval([1.0], level=1.5)
        with pytest.raises(ValueError):
            bootstrap_confidence_interval([1.0], num_resamples=0)

    def test_string_representation(self):
        interval = ConfidenceInterval(mean=0.5, lower=0.4, upper=0.6, level=0.95)
        assert "0.5" in str(interval)
        assert "95%" in str(interval)


class TestBootstrapMetricTable:
    def test_one_interval_per_metric(self):
        rng = np.random.default_rng(9)
        table = bootstrap_metric_table(
            {"Recall@10": rng.random(50), "NDCG@10": rng.random(50)}, seed=10
        )
        assert set(table) == {"Recall@10", "NDCG@10"}
        assert all(isinstance(ci, ConfidenceInterval) for ci in table.values())
