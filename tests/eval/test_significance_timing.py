"""Significance tests and the timing harness."""

import numpy as np
import pytest

from repro.data import TrainingNegativeSampler
from repro.eval import (
    LeaveOneOutEvaluator,
    improvement,
    measure_time_efficiency,
    paired_t_test,
    wilcoxon_test,
)
from repro.models import MatrixFactorization
from repro.optim import Adam
from repro.training import build_batch_iterator


class TestSignificance:
    def test_clear_difference_is_significant(self):
        rng = np.random.default_rng(0)
        baseline = rng.normal(0.0, 0.1, size=200)
        better = baseline + 0.5
        assert paired_t_test(better, baseline).significant
        assert wilcoxon_test(better, baseline).significant

    def test_identical_samples_not_significant(self):
        sample = np.ones(50)
        assert not paired_t_test(sample, sample).significant
        assert not wilcoxon_test(sample, sample).significant

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            paired_t_test(np.ones(3), np.ones(4))

    def test_too_few_observations_raises(self):
        with pytest.raises(ValueError):
            wilcoxon_test(np.ones(1), np.zeros(1))

    def test_improvement_percentage(self):
        assert np.isclose(improvement(0.12, 0.10), 20.0)
        assert improvement(0.1, 0.0) == float("inf")
        assert improvement(0.0, 0.0) == 0.0


class TestTiming:
    def test_measures_positive_times(self, small_split, small_evaluator):
        model = MatrixFactorization(small_split.train.num_users, small_split.train.num_items, 4,
                                    rng=np.random.default_rng(1))
        iterator = build_batch_iterator(model, small_split.train, batch_size=256, seed=0)
        optimizer = Adam(model.parameters(), lr=0.01)
        result = measure_time_efficiency(model, optimizer, iterator, small_evaluator, num_epochs=1)
        assert result.train_seconds_per_epoch > 0
        assert result.test_seconds_per_epoch > 0
        assert result.model_name == "MF"

    def test_invalid_epoch_count(self, small_split, small_evaluator):
        model = MatrixFactorization(small_split.train.num_users, small_split.train.num_items, 4)
        iterator = build_batch_iterator(model, small_split.train, batch_size=256, seed=0)
        with pytest.raises(ValueError):
            measure_time_efficiency(model, Adam(model.parameters(), lr=0.01), iterator,
                                    small_evaluator, num_epochs=0)
