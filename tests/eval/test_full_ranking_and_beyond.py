"""Full-ranking protocol and beyond-accuracy metrics."""

import numpy as np
import pytest

from repro.eval import (
    FullRankingEvaluator,
    auc_from_rank,
    average_recommendation_popularity,
    catalog_coverage,
    top_k_items,
)
from repro.models import ItemPopularity, MatrixFactorization, build_model
from repro.data import to_user_item_interactions


@pytest.fixture(scope="module")
def mf_model(small_split):
    train = small_split.train
    return MatrixFactorization(train.num_users, train.num_items, 8, rng=np.random.default_rng(0))


class TestAucFromRank:
    def test_perfect_ranking(self):
        assert auc_from_rank(0, 1000) == pytest.approx(1.0)

    def test_worst_ranking(self):
        assert auc_from_rank(999, 1000) == pytest.approx(0.0)

    def test_middle(self):
        assert auc_from_rank(50, 101) == pytest.approx(0.5)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            auc_from_rank(0, 1)
        with pytest.raises(ValueError):
            auc_from_rank(10, 5)


class TestFullRankingEvaluator:
    def test_metrics_keys_and_ranges(self, small_split, mf_model):
        evaluator = FullRankingEvaluator(small_split, cutoffs=(5, 10))
        result = evaluator.evaluate_test(mf_model)
        assert set(result.metrics) == {"Recall@5", "Recall@10", "NDCG@5", "NDCG@10", "MRR"}
        assert all(0.0 <= value <= 1.0 for value in result.metrics.values())
        assert result.num_users == small_split.num_test_users

    def test_full_ranking_not_easier_than_sampled(self, small_split, small_evaluator, mf_model):
        sampled = small_evaluator.evaluate_test(mf_model)
        full = FullRankingEvaluator(small_split, cutoffs=(3, 5, 10, 20)).evaluate_test(mf_model)
        # Ranking against the whole catalog can only add competitors.
        assert full.metrics["Recall@10"] <= sampled.metrics["Recall@10"] + 1e-9

    def test_validation_holdout(self, small_split, mf_model):
        evaluator = FullRankingEvaluator(small_split)
        result = evaluator.evaluate_validation(mf_model)
        assert result.num_users == small_split.num_validation_users

    def test_exclude_observed_flag(self, small_split, mf_model):
        with_exclusion = FullRankingEvaluator(small_split, exclude_observed=True)
        without_exclusion = FullRankingEvaluator(small_split, exclude_observed=False)
        ranks_a = with_exclusion.evaluate_test(mf_model).ranks
        ranks_b = without_exclusion.evaluate_test(mf_model).ranks
        # Excluding observed items removes competitors, so ranks cannot worsen.
        assert (ranks_a <= ranks_b).all()


class TestTopKAndCoverage:
    def test_top_k_items_shape_and_order(self, small_split, mf_model):
        train = small_split.train
        items = top_k_items(mf_model, 0, 5, train.num_items)
        assert items.shape == (5,)
        scores = mf_model.rank_scores(0, items)
        assert (np.diff(scores) <= 1e-12).all()

    def test_top_k_respects_exclusions(self, small_split, mf_model):
        train = small_split.train
        full = top_k_items(mf_model, 0, 5, train.num_items)
        excluded = {int(full[0])}
        filtered = top_k_items(mf_model, 0, 5, train.num_items, exclude=excluded)
        assert full[0] not in filtered

    def test_invalid_k(self, small_split, mf_model):
        with pytest.raises(ValueError):
            top_k_items(mf_model, 0, 0, small_split.train.num_items)

    def test_popularity_model_has_minimal_coverage(self, small_split):
        train = small_split.train
        model = ItemPopularity(
            train.num_users, train.num_items, to_user_item_interactions(train, mode="both")
        )
        users = list(range(0, train.num_users, 5))
        coverage = catalog_coverage(model, users, train.num_items, k=10)
        # A non-personalized model recommends the same 10 items to everyone.
        assert coverage == pytest.approx(10 / train.num_items)

    def test_personalized_model_covers_more(self, small_split, mf_model):
        train = small_split.train
        users = list(range(0, train.num_users, 5))
        mf_coverage = catalog_coverage(mf_model, users, train.num_items, k=10)
        pop_model = ItemPopularity(
            train.num_users, train.num_items, to_user_item_interactions(train, mode="both")
        )
        pop_coverage = catalog_coverage(pop_model, users, train.num_items, k=10)
        assert mf_coverage >= pop_coverage

    def test_average_recommendation_popularity(self, small_split):
        train = small_split.train
        pop_model = ItemPopularity(
            train.num_users, train.num_items, to_user_item_interactions(train, mode="both")
        )
        users = list(range(0, train.num_users, 10))
        pop_bias = average_recommendation_popularity(pop_model, users, train, k=10)
        catalog_mean = np.mean(
            [1.0 + len(b.participants) for b in train.behaviors]
        ) * train.num_behaviors / train.num_items
        # The popularity model's recommendations are far above catalog average.
        assert pop_bias > catalog_mean
