"""Ranking metrics."""

import numpy as np
import pytest

from repro.eval import MetricAccumulator, ndcg_at_k, rank_of_positive, recall_at_k, reciprocal_rank


class TestRankOfPositive:
    def test_best_rank(self):
        assert rank_of_positive(np.array([5.0, 1.0, 2.0])) == 0

    def test_worst_rank(self):
        assert rank_of_positive(np.array([-1.0, 1.0, 2.0])) == 2

    def test_ties_are_pessimistic(self):
        assert rank_of_positive(np.array([1.0, 1.0, 1.0])) == 2

    def test_custom_positive_index(self):
        assert rank_of_positive(np.array([3.0, 9.0, 1.0]), positive_index=1) == 0


class TestMetricValues:
    def test_recall(self):
        assert recall_at_k(0, 1) == 1.0
        assert recall_at_k(4, 5) == 1.0
        assert recall_at_k(5, 5) == 0.0

    def test_ndcg_top_rank_is_one(self):
        assert ndcg_at_k(0, 10) == 1.0

    def test_ndcg_decreases_with_rank(self):
        values = [ndcg_at_k(rank, 10) for rank in range(10)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_ndcg_outside_cutoff_is_zero(self):
        assert ndcg_at_k(10, 10) == 0.0

    def test_ndcg_value(self):
        assert np.isclose(ndcg_at_k(3, 10), 1 / np.log2(5))

    def test_reciprocal_rank(self):
        assert reciprocal_rank(0) == 1.0
        assert reciprocal_rank(3) == 0.25

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            recall_at_k(0, 0)
        with pytest.raises(ValueError):
            ndcg_at_k(0, -1)


class TestMetricAccumulator:
    def test_averages_over_users(self):
        accumulator = MetricAccumulator(cutoffs=(1, 2))
        accumulator.extend([0, 1, 5])
        results = accumulator.results()
        assert np.isclose(results["Recall@1"], 1 / 3)
        assert np.isclose(results["Recall@2"], 2 / 3)
        assert accumulator.num_users == 3

    def test_empty_accumulator_returns_zeros(self):
        results = MetricAccumulator(cutoffs=(5,)).results()
        assert results["Recall@5"] == 0.0 and results["MRR"] == 0.0

    def test_per_user_metric(self):
        accumulator = MetricAccumulator(cutoffs=(3,))
        accumulator.extend([0, 4])
        assert np.allclose(accumulator.per_user_metric("Recall@3"), [1.0, 0.0])
        assert np.allclose(accumulator.per_user_metric("NDCG@3"), [1.0, 0.0])
        assert accumulator.per_user_metric("MRR").shape == (2,)

    def test_unknown_metric_raises(self):
        accumulator = MetricAccumulator()
        accumulator.add(0)
        with pytest.raises(ValueError):
            accumulator.per_user_metric("precision@5")

    def test_negative_rank_rejected(self):
        with pytest.raises(ValueError):
            MetricAccumulator().add(-1)
